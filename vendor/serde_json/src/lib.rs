//! Offline stand-in for `serde_json`.
//!
//! JSON text parsing and printing over the vendored `serde` crate's
//! [`Value`] tree: [`to_string`] / [`to_string_pretty`], [`from_str`],
//! [`to_value`], and a [`json!`] macro covering the literal forms this
//! workspace uses (objects, arrays, `null`, booleans, and arbitrary
//! serializable expressions).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde::Value;

/// Error alias: this crate reports through `serde`'s message error.
pub type Error = serde::Error;

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1, pretty);
                write_value(out, item, indent + 1, pretty);
            }
            newline_indent(out, indent, pretty);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1, pretty);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            newline_indent(out, indent, pretty);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

/// `Debug`-formats finite floats (it round-trips and always keeps a
/// decimal point, e.g. `1.0`); non-finite values have no JSON form and
/// degrade to `null` like real `serde_json`.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected byte `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to a quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("truncated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow as \uXXXX.
                    if self.eat_keyword("\\u") {
                        let lo = self.parse_hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::custom("lone high surrogate"));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::custom(format!("bad \\u escape {code:#x}")))?,
                );
            }
            other => {
                return Err(Error::custom(format!(
                    "unknown escape `\\{}`",
                    other as char
                )))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Object and array forms
/// nest; any other expression is rendered via its `Serialize` impl.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(entries ; $($body)*);
        $crate::Value::Map(entries)
    }};
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_items!(items ; $($body)*);
        $crate::Value::Seq(items)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: accumulates object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($entries:ident ; ) => {};
    // Single-token values (nested {...} / [...] groups, idents, literals)
    // followed by more entries: re-dispatch through json!.
    ($entries:ident ; $key:literal : $val:tt , $($rest:tt)*) => {
        $entries.push((::std::string::String::from($key), $crate::json!($val)));
        $crate::json_object_entries!($entries ; $($rest)*);
    };
    ($entries:ident ; $key:literal : $val:tt) => {
        $entries.push((::std::string::String::from($key), $crate::json!($val)));
    };
    // Multi-token expression values.
    ($entries:ident ; $key:literal : $val:expr , $($rest:tt)*) => {
        $entries.push((::std::string::String::from($key), $crate::to_value(&$val)));
        $crate::json_object_entries!($entries ; $($rest)*);
    };
    ($entries:ident ; $key:literal : $val:expr) => {
        $entries.push((::std::string::String::from($key), $crate::to_value(&$val)));
    };
}

/// Implementation detail of [`json!`]: accumulates array items.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($items:ident ; ) => {};
    ($items:ident ; $val:tt , $($rest:tt)*) => {
        $items.push($crate::json!($val));
        $crate::json_array_items!($items ; $($rest)*);
    };
    ($items:ident ; $val:tt) => {
        $items.push($crate::json!($val));
    };
    ($items:ident ; $val:expr , $($rest:tt)*) => {
        $items.push($crate::to_value(&$val));
        $crate::json_array_items!($items ; $($rest)*);
    };
    ($items:ident ; $val:expr) => {
        $items.push($crate::to_value(&$val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a": [1, -2, 3.5, "x\n", null, true], "b": {"c": false}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], Value::U64(1));
        assert_eq!(v["a"][1], Value::I64(-2));
        assert_eq!(v["a"][2], Value::F64(3.5));
        assert_eq!(v["a"][3], Value::Str("x\n".into()));
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], Value::Bool(false));
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{}extra").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn json_macro_forms() {
        let rows = vec![json!({"n": 1}), json!({"n": 2})];
        let doc = json!({
            "flat": 7,
            "call": 3 + 4,
            "nested": { "deep": [1, 2, 3], "none": null },
            "rows": rows,
            "flag": true,
        });
        assert_eq!(doc["flat"], doc["call"]);
        assert_eq!(doc["nested"]["deep"][2], Value::U64(3));
        assert!(doc["nested"]["none"].is_null());
        assert_eq!(doc["rows"][1]["n"], Value::U64(2));
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!({}), Value::Map(vec![]));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }
}
