//! Offline stand-in for the parts of `rand` 0.9 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal deterministic implementation of the API surface it
//! consumes: [`Rng::random`], [`Rng::random_bool`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Statistical quality is adequate for
//! synthetic-world generation; nothing here is cryptographic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard (uniform) distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a range; panics if the range is empty.
    /// The output type is an independent parameter (as in real rand
    /// 0.9) so integer literals unify with the call site.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard distribution via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly; panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..200 {
            let v = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(1u32..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = Lcg(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
