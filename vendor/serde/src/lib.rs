//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a simplified serialization framework under the `serde` name. Instead
//! of real serde's visitor-based zero-copy data model, everything routes
//! through one concrete tree type, [`Value`]:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] rebuilds `Self` from a borrowed [`Value`];
//! - `#[derive(serde::Serialize, serde::Deserialize)]` (re-exported from
//!   the vendored `serde_derive`) works for named-field structs, tuple
//!   structs (honouring `#[serde(transparent)]`), and unit-variant enums.
//!
//! The vendored `serde_json` crate layers JSON text parsing/printing on
//! top of this model. The API is intentionally tiny; it exists to keep
//! the workspace building and its snapshot/report formats stable, not to
//! be a general serde replacement.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// The concrete data model every serializable type routes through.
///
/// Maps preserve insertion order (struct field order), which keeps JSON
/// snapshots stable and human-diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered list of key/value pairs.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is any numeric variant.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::U64(_) | Value::I64(_) | Value::F64(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Seq(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Map(_))
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, if any, behind a map-like view with `get`.
    pub fn as_object(&self) -> Option<MapRef<'_>> {
        match self {
            Value::Map(entries) => Some(MapRef(entries)),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Borrowed view of an object's entries, mirroring the `get`/`len`/`iter`
/// subset of `serde_json::Map` the workspace uses.
#[derive(Clone, Copy, Debug)]
pub struct MapRef<'a>(&'a [(String, Value)]);

impl<'a> MapRef<'a> {
    /// Looks up a member by key.
    pub fn get(&self, key: &str) -> Option<&'a Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the object has no members.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a String, &'a Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error: a human-readable message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compatibility alias module mirroring `serde::de::Error::custom`.
pub mod de {
    pub use crate::Error;
}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive support: resolves a missing struct field. `Option` fields
/// default to `None` (they deserialize from `null`); anything else is a
/// hard error naming the field.
pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::from_value(&Value::Null).map_err(|_| Error::custom(format!("{ty}: missing field `{field}`")))
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// JSON object keys must be strings; scalar keys are stringified the way
/// real `serde_json` does for integer-keyed maps.
fn map_key(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported JSON map key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (map_key(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(concat!("expected ", stringify!($t), ", got {:?}"), v))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!(concat!("expected ", stringify!($t), ", got {:?}"), v))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        s.parse()
            .map_err(|e| Error::custom(format!("bad IPv4 address {s:?}: {e}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

/// Rebuilds a typed map key from its JSON string form: first as a
/// string, then (for integer-like key types) as a parsed number.
fn key_from_str<K: Deserialize>(k: &str) -> Result<K, Error> {
    if let Ok(x) = K::from_value(&Value::Str(k.to_string())) {
        return Ok(x);
    }
    if let Ok(n) = k.parse::<u64>() {
        if let Ok(x) = K::from_value(&Value::U64(n)) {
            return Ok(x);
        }
    }
    if let Ok(n) = k.parse::<i64>() {
        if let Ok(x) = K::from_value(&Value::I64(n)) {
            return Ok(x);
        }
    }
    Err(Error::custom(format!("unusable map key `{k}`")))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of {}, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn int_keyed_maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let v = m.to_value();
        assert_eq!(v["7"], Value::Str("x".into()));
        let back: BTreeMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }
}
