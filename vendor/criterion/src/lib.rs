//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop (short warm-up, then timed batches).
//! There is no statistical analysis or HTML report; each benchmark
//! prints one line: name, mean time per iteration, and iteration count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One measured result, retrievable after a run via
/// [`Criterion::results`].
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`group/name` when inside a group).
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
}

/// Benchmark driver (stub of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let result = BenchResult {
            name: name.to_string(),
            mean: bencher.mean,
            iterations: bencher.iterations,
        };
        println!(
            "bench {:<50} {:>12.3?} /iter ({} iters)",
            result.name, result.mean, result.iterations
        );
        self.results.push(result);
        self
    }

    /// Opens a named group; benchmarks inside are prefixed `group/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks (stub of criterion's).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`: brief warm-up, then timed batches until enough
    /// wall-clock signal accumulates (~200ms or 10k iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(f());
        let probe = warmup_start.elapsed();

        let budget = Duration::from_millis(200);
        let batch: u64 = if probe >= budget {
            1
        } else {
            let per_iter = probe.max(Duration::from_nanos(20));
            (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64
        };

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let total = start.elapsed();
        self.iterations = batch;
        self.mean = total / batch as u32;
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[1].name, "grp/inner");
        assert!(c.results()[0].iterations >= 1);
    }
}
