//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`ProptestConfig`], `any::<T>()`, integer/float range strategies,
//! tuple strategies, and the `collection` / `option` strategy modules.
//!
//! Differences from real proptest: cases are generated from a seed
//! derived deterministically from the test name (reproducible across
//! runs), and failing cases are **not shrunk** — the assertion message
//! reports the case number instead.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Derives the RNG for one test case from the test name and case
    /// index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a full-domain uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Size bounds for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::{SizeRange, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set strategy: up to `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bound the attempts so sparse
            // domains can't loop forever.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Map strategy: up to `size` entries with distinct keys.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                let k = self.key.generate(rng);
                let v = self.value.generate(rng);
                out.insert(k, v);
            }
            out
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>` with a fixed `Some` probability.
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// `Some(value)` with the given probability, `None` otherwise.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        Weighted { probability, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.unit_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Asserts a condition inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]`-able function running `config.cases` random
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0u8..=4, z in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        /// Collections respect their size bounds.
        #[test]
        fn collections_sized(
            v in crate::collection::vec(any::<u16>(), 2..5),
            s in crate::collection::btree_set(0u32..100, 1..4),
            m in crate::collection::btree_map(any::<u32>(), 0u8..3, 0..6),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(m.len() < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
