//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's value-tree traits
//! (`Serialize::to_value` / `Deserialize::from_value`). The item
//! definition is parsed straight off the token stream — no `syn`, no
//! `quote`, since neither can be fetched in this build environment.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields;
//! - tuple structs (a single field acts as a newtype and passes its
//!   value through, which also covers `#[serde(transparent)]`; wider
//!   tuples serialize as arrays);
//! - enums whose variants are all units (serialized as the variant
//!   name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated impl failed to parse")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated impl failed to parse")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum with unit variants only.
    Enum(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();

    // Outer attributes (`#[serde(transparent)]`, doc comments, ...).
    // Transparent newtypes already pass through, so attributes only need
    // skipping.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next(); // pub(crate) etc.
        }
    }

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported by the offline stub");
    }

    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_unit_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body {other:?}"),
        },
        kw => panic!("serde derive: unsupported item kind `{kw}`"),
    };

    Item { name, kind }
}

/// Extracts field names from `{ ... }`, skipping attributes, visibility,
/// and types (commas inside angle brackets belong to the type).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Counts tuple-struct fields: top-level commas + 1 (empty tuples don't
/// occur in this workspace).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        panic!("serde derive: empty tuple structs are not supported");
    }
    commas + 1
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let Some(TokenTree::Ident(variant)) = iter.next() else {
            break;
        };
        variants.push(variant.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                panic!("serde derive: only unit enum variants are supported by the offline stub")
            }
            other => panic!("serde derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{entries}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match __get(\"{f}\") {{\n\
                             ::core::option::Option::Some(fv) => \
                                 ::serde::Deserialize::from_value(fv).map_err(|e| \
                                 ::serde::Error::custom(::std::format!(\
                                     \"{name}.{f}: {{}}\", e)))?,\n\
                             ::core::option::Option::None => \
                                 ::serde::missing_field(\"{name}\", \"{f}\")?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "let __map = match v {{\n\
                     ::serde::Value::Map(m) => m,\n\
                     other => return ::core::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: expected object, got {{other:?}}\"))),\n\
                 }};\n\
                 let __get = |k: &str| __map.iter().find(|kv| kv.0 == k).map(|kv| &kv.1);\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = match v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => items,\n\
                     other => return ::core::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: expected array of {n}, got {{other:?}}\"))),\n\
                 }};\n\
                 ::core::result::Result::Ok({name}({inits}))"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "let s = match v {{\n\
                     ::serde::Value::Str(s) => s.as_str(),\n\
                     other => return ::core::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: expected string, got {{other:?}}\"))),\n\
                 }};\n\
                 match s {{\n\
                     {arms}\n\
                     other => ::core::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
