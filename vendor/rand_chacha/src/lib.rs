//! Offline stand-in for `rand_chacha` 0.9.
//!
//! Exposes a deterministic 64-bit PRNG (xoshiro256** core seeded through
//! SplitMix64) under the [`ChaCha20Rng`] name so downstream code keeps
//! compiling without network access to crates.io. This is **not** the
//! ChaCha stream cipher — the workspace only relies on determinism and
//! reasonable statistical quality, never on cryptographic strength.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded PRNG standing in for the real ChaCha20 generator.
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha20Rng::seed_from_u64(42);
        let mut b = ChaCha20Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }
}
