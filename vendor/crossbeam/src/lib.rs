//! Offline stand-in for `crossbeam` 0.8 — the scoped-thread API only.
//!
//! `crossbeam::thread::scope` is implemented over `std::thread::scope`
//! (stable since Rust 1.63), preserving the crossbeam call shape the
//! workspace uses: the scope function returns a `Result`, spawned
//! closures receive a `&Scope` argument (for nested spawns), and
//! handles expose `join() -> Result<T>`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Scoped threads (stub of `crossbeam::thread`).
pub mod thread {
    /// Panic payload carried by a crashed scope or thread.
    pub type Result<T> = std::thread::Result<T>;

    /// Runs `f` inside a thread scope. Unlike crossbeam, a panicking
    /// child propagates through `std::thread::scope` when joined
    /// implicitly, so the returned `Result` is `Ok` whenever `f`
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    /// Spawning handle passed to the scope closure and to each spawned
    /// thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_out_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(30)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
