//! Offline stand-in for `parking_lot` — the lock API shape over
//! `std::sync` primitives. `lock()` returns the guard directly
//! (parking_lot style, no `Result`); poisoning is transparently
//! recovered since parking_lot locks don't poison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion lock (stub of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Reader-writer lock (stub of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
