//! Quickstart: generate a small synthetic peering ecosystem, measure it,
//! run Constrained Facility Search, and print what was inferred.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cfs::prelude::*;

fn main() {
    // 1. Ground truth: facilities, IXPs (with switch hierarchies), ASes,
    //    routers, interconnections. Deterministic in the seed.
    let topo = Topology::generate(TopologyConfig::default()).expect("topology");
    println!(
        "world: {} facilities, {} IXPs, {} ASes, {} routers, {} interfaces",
        topo.facilities.len(),
        topo.ixps.len(),
        topo.ases.len(),
        topo.routers.len(),
        topo.ifaces.len(),
    );

    // 2. Measurement substrate: the four traceroute platforms of Table 1.
    let vps = deploy_vantage_points(&topo, &VpConfig::default()).expect("vantage points");
    let engine = Engine::new(&topo);

    // 3. Public data only: a PeeringDB-like snapshot (incomplete!), NOC
    //    pages, IXP websites — assembled per §3.1 of the paper.
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    // 4. Bootstrap traceroute campaign toward the ten §5 target networks.
    let targets: Vec<std::net::Ipv4Addr> = cfs::topology::names::PAPER_TARGETS
        .iter()
        .filter_map(|(asn, _, _)| topo.target_ip(Asn(*asn)).ok())
        .collect();
    let vp_ids: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &vp_ids,
        &targets,
        0,
        &CampaignLimits::default(),
    );
    println!("bootstrap: {} traceroutes", traces.len());

    // 5. Constrained Facility Search: classify, constrain, alias, chase —
    //    run as a resident session (the `cfsd` API) converged once.
    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build_session()
        .expect("vps and ipasn are set");
    session.ingest(traces);
    let report = session.into_report();

    println!(
        "\nCFS: resolved {}/{} peering interfaces ({:.1}%) in {} iterations, {} follow-up traceroutes",
        report.resolved(),
        report.total(),
        report.resolved_fraction() * 100.0,
        report.iterations.len(),
        report.traces_issued,
    );

    // A few verdicts.
    println!("\nsample verdicts:");
    for iface in report
        .interfaces
        .values()
        .filter(|i| i.facility.is_some())
        .take(8)
    {
        let fac = iface.facility.unwrap();
        println!(
            "  {} ({}) -> {} [{}]{}",
            iface.ip,
            iface
                .owner
                .map(|a| a.to_string())
                .unwrap_or_else(|| "AS?".into()),
            topo.facilities[fac].name,
            if iface.public_ixps.is_empty() {
                "private"
            } else {
                "public"
            },
            if iface.remote { " (remote peer)" } else { "" },
        );
    }

    // 6. Score against the hidden ground truth via the §6 oracles.
    let oracles = ValidationOracles::standard(&topo, &sources);
    let scored = score_report(&report, &oracles, &topo);
    let overall = scored.overall();
    if let Some(acc) = overall.accuracy() {
        println!(
            "\nvalidated accuracy: {:.1}% ({}/{} facility-level checks)",
            acc * 100.0,
            overall.matched,
            overall.checked
        );
    }
}
