//! Facility outage radius: if a colocation building went dark, which
//! interconnections would it take down? The paper's introduction lists
//! exactly this use case — "assessment of the resilience of
//! interconnections in the event of natural disasters, facility or
//! router outages".
//!
//! The analysis runs **entirely on inferred data**: it uses the CFS
//! verdicts (not ground truth) to attribute interconnections to
//! buildings, then ranks facilities by blast radius.
//!
//! ```text
//! cargo run --release --example ixp_outage_radius
//! ```

use std::collections::{BTreeMap, BTreeSet};

use cfs::prelude::*;

fn main() {
    let topo = Topology::generate(TopologyConfig::default()).expect("topology");
    let vps = deploy_vantage_points(&topo, &VpConfig::default()).expect("vantage points");
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    // Broad campaign: the ten §5 targets.
    let targets: Vec<std::net::Ipv4Addr> = cfs::topology::names::PAPER_TARGETS
        .iter()
        .filter_map(|(asn, _, _)| topo.target_ip(Asn(*asn)).ok())
        .collect();
    let vp_ids: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &vp_ids,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build_session()
        .expect("vps and ipasn are set");
    session.ingest(traces);
    let report = session.into_report();

    // Attribute every resolved interconnection endpoint to its building.
    let mut links_in: BTreeMap<FacilityId, usize> = BTreeMap::new();
    let mut ases_in: BTreeMap<FacilityId, BTreeSet<Asn>> = BTreeMap::new();
    let mut ixps_in: BTreeMap<FacilityId, BTreeSet<cfs_types::IxpId>> = BTreeMap::new();
    for link in &report.links {
        for (fac, asn) in [
            (link.near_facility, Some(link.near_asn)),
            (link.far_facility, link.far_asn),
        ] {
            let Some(fac) = fac else { continue };
            *links_in.entry(fac).or_default() += 1;
            if let Some(asn) = asn {
                ases_in.entry(fac).or_default().insert(asn);
            }
            if let Some(ixp) = link.ixp {
                ixps_in.entry(fac).or_default().insert(ixp);
            }
        }
    }

    let mut ranked: Vec<(FacilityId, usize)> = links_in.into_iter().collect();
    ranked.sort_by_key(|(f, n)| (std::cmp::Reverse(*n), *f));

    println!("facility outage blast radius (from inferred data only):\n");
    println!(
        "{:<26} {:<14} {:>14} {:>10} {:>6}",
        "facility", "metro", "interconnects", "networks", "ixps"
    );
    for (fac, n_links) in ranked.iter().take(15) {
        let f = &topo.facilities[*fac];
        let metro = &topo.world.metro(f.metro).name;
        println!(
            "{:<26} {:<14} {:>14} {:>10} {:>6}",
            f.name,
            metro,
            n_links,
            ases_in.get(fac).map(BTreeSet::len).unwrap_or(0),
            ixps_in.get(fac).map(BTreeSet::len).unwrap_or(0),
        );
    }

    // Concentration: how much of the observed interconnection fabric sits
    // in the top buildings? (The paper's motivation: these are single
    // points of failure.)
    let total: usize = ranked.iter().map(|(_, n)| n).sum();
    let top5: usize = ranked.iter().take(5).map(|(_, n)| n).sum();
    if total > 0 {
        println!(
            "\nconcentration: top-5 buildings carry {:.1}% of the {} attributed interconnection endpoints",
            100.0 * top5 as f64 / total as f64,
            total
        );
    }
}
