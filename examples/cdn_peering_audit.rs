//! CDN peering audit: map where a large content network interconnects,
//! by engineering method and by metro — the kind of competitive analysis
//! the paper's introduction motivates ("inform peering decisions in a
//! competitive interconnection market").
//!
//! ```text
//! cargo run --release --example cdn_peering_audit [asn]
//! ```
//! Defaults to AS15169, the Google-like CDN target.

use std::collections::BTreeMap;

use cfs::prelude::*;

fn main() {
    let target = Asn(std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15169));

    let topo = Topology::generate(TopologyConfig::default()).expect("topology");
    let Ok(node) = topo.as_node(target) else {
        eprintln!("{target} does not exist in this world");
        std::process::exit(1);
    };
    println!("auditing {target} ({}, {})", node.name, node.class);

    let vps = deploy_vantage_points(&topo, &VpConfig::default()).expect("vantage points");
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    // Probe the audited network from everywhere.
    let target_ip = topo.target_ip(target).expect("target address");
    let vp_ids: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &vp_ids,
        &[target_ip],
        0,
        &CampaignLimits::default(),
    );

    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build_session()
        .expect("vps and ipasn are set");
    session.ingest(traces);
    let report = session.into_report();

    // Interfaces of the audited AS, by peering type.
    let by_kind = report.interfaces_by_kind(target);
    println!("\npeering interfaces by type:");
    for kind in PeeringKind::ALL {
        let n = by_kind.get(&kind).copied().unwrap_or(0);
        if n > 0 {
            println!("  {kind:<18} {n}");
        }
    }

    // Facility/metro breakdown of its resolved interfaces.
    let mut per_metro: BTreeMap<String, usize> = BTreeMap::new();
    for (ip, _) in report.interfaces_of_owner(target) {
        if let Some(fac) = report.interfaces.get(&ip).and_then(|i| i.facility) {
            let metro = topo.world.metro(topo.facilities[fac].metro).name.clone();
            *per_metro.entry(metro).or_default() += 1;
        }
    }
    let mut ranked: Vec<(String, usize)> = per_metro.into_iter().collect();
    ranked.sort_by_key(|(m, n)| (std::cmp::Reverse(*n), m.clone()));
    println!("\ninferred interconnection metros:");
    for (metro, n) in ranked.iter().take(12) {
        println!("  {metro:<16} {n}");
    }

    // How much of the network's true footprint did the audit see?
    let truth_metros: std::collections::BTreeSet<_> = node
        .facilities
        .iter()
        .map(|f| topo.facilities[*f].metro)
        .collect();
    println!(
        "\ncoverage: audit surfaced {} metros of the network's {} ground-truth metros",
        ranked.len(),
        truth_metros.len()
    );

    // Who does it peer with over public fabrics?
    let mut public_peers: std::collections::BTreeSet<Asn> = Default::default();
    for link in &report.links {
        if link.kind.is_public() {
            if link.near_asn == target {
                public_peers.extend(link.far_asn);
            } else if link.far_asn == Some(target) {
                public_peers.insert(link.near_asn);
            }
        }
    }
    println!("distinct public peers observed: {}", public_peers.len());
}
