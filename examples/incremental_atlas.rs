//! Incremental map construction — the paper's concluding claim: "by
//! utilizing results for individual interconnections and others inferred
//! in the process, it is possible to incrementally construct a more
//! detailed map of interconnections."
//!
//! Three successive campaigns with different target sets are merged into
//! one [`InterconnectionAtlas`]; coverage grows with each, and the few
//! contested verdicts (a later campaign converging elsewhere) are listed
//! for re-measurement.
//!
//! ```text
//! cargo run --release --example incremental_atlas
//! ```

use cfs::prelude::*;

fn main() {
    let topo = Topology::generate(TopologyConfig::default()).expect("topology");
    let vps = deploy_vantage_points(&topo, &VpConfig::default()).expect("vantage points");
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    // Three campaigns with disjoint target sets: the CDNs, the Tier-1s,
    // then a slice of the transit providers.
    let campaign_targets: Vec<Vec<Asn>> = vec![
        topo.ases
            .values()
            .filter(|n| n.class == AsClass::Cdn)
            .map(|n| n.asn)
            .collect(),
        topo.ases
            .values()
            .filter(|n| n.class == AsClass::Tier1)
            .map(|n| n.asn)
            .collect(),
        topo.ases
            .values()
            .filter(|n| n.class == AsClass::Transit)
            .map(|n| n.asn)
            .take(12)
            .collect(),
    ];

    let mut atlas = InterconnectionAtlas::new();
    let vp_ids: Vec<_> = vps.ids().collect();
    for (day, targets) in campaign_targets.iter().enumerate() {
        let ips: Vec<std::net::Ipv4Addr> = targets
            .iter()
            .filter_map(|a| topo.target_ip(*a).ok())
            .collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &vp_ids,
            &ips,
            (day as u64) * 86_400_000, // one campaign per day
            &CampaignLimits::default(),
        );
        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .build_session()
            .expect("vps and ipasn are set");
        session.ingest(traces);
        let report = session.into_report();
        atlas.merge(&report);
        println!(
            "campaign {}: {} targets -> atlas now {} interfaces ({} resolved), {} interconnections",
            day + 1,
            targets.len(),
            atlas.interface_count(),
            atlas.resolved_count(),
            atlas.link_count(),
        );
    }

    let contested = atlas.contested();
    println!(
        "\ncontested verdicts needing re-measurement: {} ({:.1}% of resolved)",
        contested.len(),
        100.0 * contested.len() as f64 / atlas.resolved_count().max(1) as f64,
    );

    // Confirmation depth: how much of the map has independent support?
    let confirmed = atlas
        .interfaces()
        .filter(|(_, e)| e.confirmations > 0)
        .count();
    println!(
        "independently re-confirmed interfaces: {confirmed} of {}",
        atlas.interface_count()
    );
}
