//! Remote-peering census: how many IXP members reach each exchange
//! through a reseller rather than local equipment? The paper cites ~20%
//! of AMS-IX members peering remotely (§2) and infers remoteness from
//! RTT floors (§4.2, after Castro et al.).
//!
//! The census runs the RTT test against every fabric address in the
//! member directories, then — since this is a simulation with known
//! ground truth — scores its own verdicts.
//!
//! ```text
//! cargo run --release --example remote_peering_census
//! ```

use cfs::prelude::*;

fn main() {
    let topo = Topology::generate(TopologyConfig::default()).expect("topology");
    let vps = deploy_vantage_points(&topo, &VpConfig::default()).expect("vantage points");
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);

    let tester = RemoteTester::new(&engine, &vps);

    println!("remote-peering census over published member directories:\n");
    println!(
        "{:<16} {:>8} {:>8} {:>9}  accuracy",
        "ixp", "members", "remote", "fraction"
    );

    let mut censused = 0usize;
    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    let mut truth_remote = 0usize;

    let mut rows: Vec<(String, usize, usize, f64, f64)> = Vec::new();
    for ixp_id in kb.active_ixps().iter().copied() {
        let ixp = &topo.ixps[ixp_id];
        if ixp.members.len() < 4 {
            continue;
        }
        let mut members = 0usize;
        let mut remote = 0usize;
        let mut correct = 0usize;
        for m in &ixp.members {
            let Some(verdict) = tester.is_remote(ixp_id, m.fabric_ip) else {
                continue;
            };
            members += 1;
            censused += 1;
            let truth = m.remote_via.is_some();
            truth_remote += usize::from(truth);
            if verdict {
                remote += 1;
                if truth {
                    true_pos += 1;
                } else {
                    false_pos += 1;
                }
            }
            if verdict == truth {
                correct += 1;
            }
        }
        if members >= 4 {
            rows.push((
                ixp.name.clone(),
                members,
                remote,
                remote as f64 / members as f64,
                correct as f64 / members as f64,
            ));
        }
    }

    rows.sort_by_key(|(_, members, ..)| std::cmp::Reverse(*members));
    for (name, members, remote, fraction, accuracy) in rows.iter().take(15) {
        println!(
            "{name:<16} {members:>8} {remote:>8} {:>8.1}%  {:>7.1}%",
            fraction * 100.0,
            accuracy * 100.0
        );
    }

    println!("\ntotals: {censused} memberships tested, {truth_remote} truly remote");
    println!(
        "verdict quality: {true_pos} true positives, {false_pos} false positives \
         (paper validated 44/48 remote inferences against AMS-IX/France-IX data)"
    );
}
