//! The MIDAR-style resolution pipeline: estimation → candidate pairing by
//! velocity and counter offset ("sliding window") → corroboration with
//! the monotonic bounds test → transitive closure into alias sets.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::prober::IpIdProber;

/// Tuning knobs of the resolution pipeline.
#[derive(Clone, Debug)]
pub struct MidarConfig {
    /// Samples per interface during estimation.
    pub estimation_samples: usize,
    /// Milliseconds between estimation samples.
    pub estimation_spacing_ms: u64,
    /// Interleaved samples per side during corroboration.
    pub corroboration_samples: usize,
    /// Milliseconds between corroboration probes.
    pub corroboration_spacing_ms: u64,
    /// Velocity tolerance for candidate pairing (counter units per ms).
    pub velocity_tolerance: f64,
    /// Width of the counter-offset window for candidate pairing.
    pub offset_window: u32,
    /// Worker threads for the estimation fan-out (`0` = serial). Probe
    /// outcomes are pure functions of `(ip, time)`, so the result is
    /// identical at any thread count.
    pub threads: usize,
}

impl Default for MidarConfig {
    fn default() -> Self {
        Self {
            estimation_samples: 5,
            estimation_spacing_ms: 200,
            corroboration_samples: 10,
            corroboration_spacing_ms: 2,
            velocity_tolerance: 0.5,
            offset_window: 4096,
            threads: 0,
        }
    }
}

/// The outcome of alias resolution.
#[derive(Clone, Debug, Default)]
pub struct AliasResolution {
    /// Alias sets with at least two members, each sorted.
    pub sets: Vec<Vec<Ipv4Addr>>,
    /// Membership index: interface → position in [`AliasResolution::sets`].
    pub set_of: BTreeMap<Ipv4Addr, usize>,
}

impl AliasResolution {
    /// The alias set containing `ip`, if it was resolved into one.
    pub fn aliases_of(&self, ip: Ipv4Addr) -> Option<&[Ipv4Addr]> {
        self.set_of.get(&ip).map(|i| self.sets[*i].as_slice())
    }

    /// Whether two addresses were inferred to sit on one router.
    pub fn same_router(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        match (self.set_of.get(&a), self.set_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Total resolved interfaces.
    pub fn resolved_interfaces(&self) -> usize {
        self.set_of.len()
    }
}

/// Estimation result for one responsive, monotonic interface.
#[derive(Clone, Copy, Debug)]
struct Estimate {
    ip: Ipv4Addr,
    /// Counter units per millisecond.
    velocity: f64,
    /// Counter value extrapolated back to t = 0 (mod 2^16).
    base: u32,
}

/// Resolves aliases among `candidates` using IP-ID probing.
pub fn resolve_aliases(
    prober: &IpIdProber<'_>,
    candidates: &[Ipv4Addr],
    cfg: &MidarConfig,
) -> AliasResolution {
    // ---- Stage 1: estimation ----
    // Pure per candidate, so it fans out over worker threads; estimates
    // are merged back in candidate order. The probe-time offset keys off
    // the candidate's *global* index, so chunk workers reproduce the
    // serial schedule exactly.
    let estimate_one = |idx: usize, ip: Ipv4Addr| -> Option<Estimate> {
        // Offset probe times per target to avoid synchronized artifacts.
        let t0 = (idx as u64 % 7) * 13;
        let samples: Vec<(u64, u16)> = (0..cfg.estimation_samples)
            .filter_map(|k| {
                let t = t0 + k as u64 * cfg.estimation_spacing_ms;
                prober.probe(ip, t).map(|id| (t, id))
            })
            .collect();
        if samples.len() < cfg.estimation_samples {
            return None; // unresponsive or lossy — cannot resolve
        }
        estimate(ip, &samples)
    };
    let workers = match cfg.threads {
        0 => 1,
        n => n.min(16),
    };
    let estimates: Vec<Estimate> = if workers > 1 && candidates.len() >= 64 {
        let chunk_size = candidates.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk_size)
                .enumerate()
                .map(|(c, chunk)| {
                    let estimate_one = &estimate_one;
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .enumerate()
                            .filter_map(|(i, ip)| estimate_one(c * chunk_size + i, *ip))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("estimation worker"))
                .collect()
        })
        .expect("estimation thread scope")
    } else {
        candidates
            .iter()
            .enumerate()
            .filter_map(|(idx, ip)| estimate_one(idx, *ip))
            .collect()
    };

    // ---- Stage 2: candidate pairing (velocity + offset windows) ----
    // Bucket by rounded velocity and by base >> window bits; only pairs in
    // the same or adjacent offset bucket are corroborated.
    let window_shift = cfg.offset_window.trailing_zeros();
    let mut buckets: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, est) in estimates.iter().enumerate() {
        let v = est.velocity.round().max(0.0) as u32;
        let b = est.base >> window_shift;
        buckets.entry((v, b)).or_default().push(i);
    }

    let mut dsu = Dsu::new(estimates.len());
    let bucket_keys: Vec<(u32, u32)> = buckets.keys().copied().collect();
    for key in bucket_keys {
        // Same bucket plus the neighbouring offset bucket (window overlap).
        let mut members = buckets[&key].clone();
        if let Some(adj) = buckets.get(&(key.0, key.1 + 1)) {
            members.extend_from_slice(adj);
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (members[i], members[j]);
                if dsu.find(a) == dsu.find(b) {
                    continue;
                }
                if velocity_compatible(&estimates[a], &estimates[b], cfg)
                    && corroborate(prober, &estimates[a], &estimates[b], cfg)
                {
                    dsu.union(a, b);
                }
            }
        }
    }

    // ---- Stage 3: gather sets ----
    let mut groups: BTreeMap<usize, Vec<Ipv4Addr>> = BTreeMap::new();
    for (i, estimate) in estimates.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(estimate.ip);
    }
    let mut sets: Vec<Vec<Ipv4Addr>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    for set in &mut sets {
        set.sort();
    }
    sets.sort();
    let mut set_of = BTreeMap::new();
    for (i, set) in sets.iter().enumerate() {
        for ip in set {
            set_of.insert(*ip, i);
        }
    }
    AliasResolution { sets, set_of }
}

/// Fits a line to the unwrapped samples; rejects non-monotonic or
/// wildly jittery (random) counters.
fn estimate(ip: Ipv4Addr, samples: &[(u64, u16)]) -> Option<Estimate> {
    let unwrapped = unwrap_ids(samples);
    // Monotonic (non-strict) requirement.
    for w in unwrapped.windows(2) {
        if w[1].1 < w[0].1 {
            return None;
        }
    }
    let (t0, v0) = unwrapped[0];
    let (tn, vn) = *unwrapped.last()?;
    if tn == t0 {
        return None;
    }
    let velocity = (vn - v0) as f64 / (tn - t0) as f64;
    // Sanity: real shared counters advance a bounded number of ids/ms; a
    // "monotonic by luck" random counter shows an absurd velocity.
    if velocity > 1000.0 {
        return None;
    }
    // Reject constant counters (velocity 0 carries no alias signal —
    // everything would match everything).
    if velocity <= 0.0 {
        return None;
    }
    // Check linearity: every sample near the fitted line.
    for (t, v) in &unwrapped {
        let predicted = v0 as f64 + velocity * (*t - t0) as f64;
        if (*v as f64 - predicted).abs() > 128.0 + velocity * 16.0 {
            return None;
        }
    }
    let base = (v0 as f64 - velocity * t0 as f64).rem_euclid(65536.0) as u32;
    Some(Estimate { ip, velocity, base })
}

/// Unwraps mod-2^16 counter samples into a monotonic-friendly space
/// (assumes < 2^15 advance between consecutive samples, like MIDAR).
fn unwrap_ids(samples: &[(u64, u16)]) -> Vec<(u64, i64)> {
    let mut out = Vec::with_capacity(samples.len());
    let mut offset: i64 = 0;
    let mut prev: i64 = i64::from(samples[0].1);
    for (t, id) in samples {
        let raw = i64::from(*id);
        if raw + offset < prev - 32768 {
            offset += 65536;
        }
        let v = raw + offset;
        out.push((*t, v));
        prev = v;
    }
    out
}

fn velocity_compatible(a: &Estimate, b: &Estimate, cfg: &MidarConfig) -> bool {
    (a.velocity - b.velocity).abs() <= cfg.velocity_tolerance
}

/// The monotonic bounds test: interleave probes to both addresses (two
/// rounds at different spacings); the merged (time, id) sequence must be
/// monotonic after unwrapping.
fn corroborate(prober: &IpIdProber<'_>, a: &Estimate, b: &Estimate, cfg: &MidarConfig) -> bool {
    // Two rounds, the second at *tighter* spacing: the bounds test's
    // discrimination scales inversely with (rate × spacing), so the tight
    // round is the one that rejects distinct-router coincidences.
    for (round, spacing) in [
        (0u64, cfg.corroboration_spacing_ms),
        (1, (cfg.corroboration_spacing_ms / 2).max(1)),
    ] {
        let start = 10_000 + round * 5_000;
        let mut merged: Vec<(u64, u16)> = Vec::with_capacity(cfg.corroboration_samples * 2);
        for k in 0..cfg.corroboration_samples as u64 {
            let ta = start + 2 * k * spacing;
            let tb = start + (2 * k + 1) * spacing;
            match (prober.probe(a.ip, ta), prober.probe(b.ip, tb)) {
                (Some(ia), Some(ib)) => {
                    merged.push((ta, ia));
                    merged.push((tb, ib));
                }
                _ => return false,
            }
        }
        let unwrapped = unwrap_ids(&merged);
        for w in unwrapped.windows(2) {
            if w[1].1 < w[0].1 {
                return false;
            }
        }
    }
    true
}

/// Small union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::{IpIdBehavior, Topology, TopologyConfig};

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    /// All interfaces of the topology as probe candidates.
    fn all_iface_ips(t: &Topology) -> Vec<Ipv4Addr> {
        t.ifaces.values().map(|i| i.ip).collect()
    }

    #[test]
    fn resolution_has_high_precision() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let res = resolve_aliases(&prober, &all_iface_ips(&t), &MidarConfig::default());
        assert!(!res.sets.is_empty(), "no alias sets found");
        let mut wrong_pairs = 0usize;
        let mut pairs = 0usize;
        for set in &res.sets {
            for i in 0..set.len() {
                for j in (i + 1)..set.len() {
                    pairs += 1;
                    let ra = t.ifaces[t.iface_by_ip(set[i]).unwrap()].router;
                    let rb = t.ifaces[t.iface_by_ip(set[j]).unwrap()].router;
                    if ra != rb {
                        wrong_pairs += 1;
                    }
                }
            }
        }
        // MIDAR "produces very few false positives".
        assert!(
            (wrong_pairs as f64) <= (pairs as f64) * 0.02,
            "{wrong_pairs}/{pairs} false alias pairs"
        );
    }

    #[test]
    fn counter_routers_are_mostly_recovered() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let res = resolve_aliases(&prober, &all_iface_ips(&t), &MidarConfig::default());
        let mut recovered = 0usize;
        let mut eligible = 0usize;
        for router in t.routers.values() {
            if matches!(router.ipid, IpIdBehavior::SharedCounter { .. }) && router.ifaces.len() >= 2
            {
                eligible += 1;
                let a = t.ifaces[router.ifaces[0]].ip;
                let b = t.ifaces[router.ifaces[1]].ip;
                if res.same_router(a, b) {
                    recovered += 1;
                }
            }
        }
        assert!(eligible > 0);
        assert!(
            recovered * 10 >= eligible * 8,
            "recovered only {recovered}/{eligible} counter routers"
        );
    }

    #[test]
    fn unresponsive_routers_stay_unresolved() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let res = resolve_aliases(&prober, &all_iface_ips(&t), &MidarConfig::default());
        for router in t.routers.values() {
            if router.ipid == IpIdBehavior::Unresponsive {
                for ifid in &router.ifaces {
                    assert!(res.aliases_of(t.ifaces[*ifid].ip).is_none());
                }
            }
        }
    }

    #[test]
    fn same_router_is_reflexive_on_sets_only() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let res = resolve_aliases(&prober, &all_iface_ips(&t), &MidarConfig::default());
        let in_set = res.sets.first().and_then(|s| s.first()).copied();
        if let Some(ip) = in_set {
            assert!(res.same_router(ip, ip));
        }
        let unknown: Ipv4Addr = "198.18.0.1".parse().unwrap();
        assert!(!res.same_router(unknown, unknown));
    }

    #[test]
    fn unwrap_handles_counter_wrap() {
        let samples = vec![(0u64, 65_500u16), (10, 65_530), (20, 10), (30, 40)];
        let u = unwrap_ids(&samples);
        assert!(u.windows(2).all(|w| w[1].1 >= w[0].1), "{u:?}");
        assert_eq!(u[2].1, 65_546);
    }

    #[test]
    fn estimation_rejects_random_and_constant() {
        // Constant counter: no velocity signal.
        let constant = vec![(0u64, 7u16), (200, 7), (400, 7), (600, 7), (800, 7)];
        assert!(estimate("10.0.0.1".parse().unwrap(), &constant).is_none());
        // Decreasing sequence: not a counter.
        let decreasing = vec![
            (0u64, 500u16),
            (200, 400),
            (400, 300),
            (600, 200),
            (800, 100),
        ];
        assert!(estimate("10.0.0.1".parse().unwrap(), &decreasing).is_none());
    }

    #[test]
    fn resolution_is_deterministic() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let ips = all_iface_ips(&t);
        let a = resolve_aliases(&prober, &ips, &MidarConfig::default());
        let b = resolve_aliases(&prober, &ips, &MidarConfig::default());
        assert_eq!(a.sets, b.sets);
    }
}
