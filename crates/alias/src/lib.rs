//! # cfs-alias
//!
//! Alias resolution in the style of MIDAR (§4.1 of the paper): group the
//! IP interfaces observed in traceroutes into routers by probing their
//! IP-ID counters and applying the monotonic bounds test, then correct
//! IP-to-ASN mappings by majority vote inside each alias set.
//!
//! The paper resolved 25,756 peering interfaces into 2,895 alias sets, of
//! which 240 contained interfaces with conflicting IP-to-ASN mappings —
//! exactly the contamination our topology generator plants (point-to-point
//! subnets allocated from one peer's space, sibling address sharing).
//! Routers that answer with random, constant, or no IP-IDs (the Google
//! case) stay unresolved, producing the same false negatives the paper
//! reports.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod correct;
mod midar;
mod prober;

pub use correct::{correct_ip_to_asn, CorrectionStats};
pub use midar::{resolve_aliases, AliasResolution, MidarConfig};
pub use prober::IpIdProber;
