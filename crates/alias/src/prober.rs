//! The IP-ID probe: what a MIDAR-style prober sees when it sends probe
//! packets to an interface address.

use std::net::Ipv4Addr;

use cfs_topology::{IpIdBehavior, Topology};

/// Issues IP-ID probes against the (hidden) ground truth. The prober only
/// exposes what a real measurement would: the 16-bit IP-ID of the
/// response at a given time, or nothing.
pub struct IpIdProber<'t> {
    topo: &'t Topology,
    seed: u64,
}

impl<'t> IpIdProber<'t> {
    /// Creates a prober over a topology.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            seed: topo.config.seed ^ 0x1b1d,
        }
    }

    /// Probes `ip` at time `at_ms`, returning the response IP-ID.
    ///
    /// Routers with a shared counter return `base + rate·t` (mod 2^16) —
    /// the same counter for every interface, which is the whole basis of
    /// the monotonic bounds test. Random/constant/unresponsive routers
    /// model the platforms MIDAR cannot resolve.
    pub fn probe(&self, ip: Ipv4Addr, at_ms: u64) -> Option<u16> {
        let iface = self.topo.iface_by_ip(ip)?;
        let router_id = self.topo.ifaces[iface].router;
        let router = &self.topo.routers[router_id];
        match router.ipid {
            IpIdBehavior::SharedCounter { rate_per_ms } => {
                let base = hash64(self.seed ^ u64::from(router_id.raw())) & 0xFFFF;
                Some(((base + u64::from(rate_per_ms) * at_ms) & 0xFFFF) as u16)
            }
            IpIdBehavior::Random => {
                Some((hash64(self.seed ^ u64::from(u32::from(ip)) ^ at_ms) & 0xFFFF) as u16)
            }
            IpIdBehavior::Constant => Some(0),
            IpIdBehavior::Unresponsive => None,
        }
    }
}

fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    #[test]
    fn shared_counter_is_shared_across_interfaces() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let router = t
            .routers
            .values()
            .find(|r| matches!(r.ipid, IpIdBehavior::SharedCounter { .. }) && r.ifaces.len() >= 2)
            .expect("a counter router with 2+ ifaces");
        let a = t.ifaces[router.ifaces[0]].ip;
        let b = t.ifaces[router.ifaces[1]].ip;
        assert_eq!(prober.probe(a, 123), prober.probe(b, 123));
    }

    #[test]
    fn shared_counter_increases_with_time() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let router = t
            .routers
            .values()
            .find(|r| matches!(r.ipid, IpIdBehavior::SharedCounter { .. }))
            .unwrap();
        let ip = t.ifaces[router.ifaces[0]].ip;
        let v0 = prober.probe(ip, 0).unwrap();
        let v1 = prober.probe(ip, 100).unwrap();
        let IpIdBehavior::SharedCounter { rate_per_ms } = router.ipid else {
            unreachable!()
        };
        let expect = (u32::from(v0) + u32::from(rate_per_ms) * 100) & 0xFFFF;
        assert_eq!(u32::from(v1), expect);
    }

    #[test]
    fn unresponsive_routers_stay_silent() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let silent = t
            .routers
            .values()
            .find(|r| r.ipid == IpIdBehavior::Unresponsive)
            .cloned();
        if let Some(router) = silent {
            let ip = t.ifaces[router.ifaces[0]].ip;
            assert_eq!(prober.probe(ip, 0), None);
        }
    }

    #[test]
    fn unknown_ip_is_none() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        assert_eq!(prober.probe("198.18.99.99".parse().unwrap(), 0), None);
    }

    #[test]
    fn different_routers_have_different_bases_usually() {
        let t = topo();
        let prober = IpIdProber::new(&t);
        let counters: Vec<_> = t
            .routers
            .values()
            .filter(|r| matches!(r.ipid, IpIdBehavior::SharedCounter { .. }))
            .take(20)
            .map(|r| prober.probe(t.ifaces[r.ifaces[0]].ip, 0).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<_> = counters.iter().collect();
        assert!(distinct.len() * 10 >= counters.len() * 8);
    }
}
