//! IP-to-ASN correction by alias-set majority vote (§4.1).
//!
//! "We map alias sets with conflicting IP interfaces to the ASN to which
//! the majority of interfaces are mapped, as proposed in [16]." This is
//! what repairs the point-to-point and sibling contamination before the
//! CFS algorithm runs.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_net::IpAsnDb;
use cfs_types::Asn;

use crate::midar::AliasResolution;

/// Statistics of a correction pass, mirroring the numbers the paper
/// reports (2,895 alias sets, 240 of them conflicting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorrectionStats {
    /// Alias sets examined.
    pub sets: usize,
    /// Sets whose members mapped to more than one ASN.
    pub conflicting_sets: usize,
    /// Individual interfaces whose mapping was rewritten.
    pub corrected_interfaces: usize,
}

/// Produces the corrected IP→ASN view: the raw longest-prefix-match
/// answer everywhere, overridden inside alias sets by the majority vote.
///
/// Ties keep the raw mapping (no evidence either way); unmapped members
/// adopt the set majority.
pub fn correct_ip_to_asn(
    db: &IpAsnDb,
    aliases: &AliasResolution,
    interfaces: &[Ipv4Addr],
) -> (BTreeMap<Ipv4Addr, Asn>, CorrectionStats) {
    let mut out: BTreeMap<Ipv4Addr, Asn> = BTreeMap::new();
    let mut stats = CorrectionStats {
        sets: aliases.sets.len(),
        ..Default::default()
    };

    // Baseline: raw LPM for every interface of interest.
    for ip in interfaces {
        if let Some(asn) = db.origin(*ip) {
            out.insert(*ip, asn);
        }
    }

    for set in &aliases.sets {
        let mut votes: BTreeMap<Asn, usize> = BTreeMap::new();
        for ip in set {
            if let Some(asn) = db.origin(*ip) {
                *votes.entry(asn).or_default() += 1;
            }
        }
        if votes.len() > 1 {
            stats.conflicting_sets += 1;
        }
        let Some((majority, majority_count)) = votes
            .iter()
            .max_by_key(|(asn, count)| (*count, std::cmp::Reverse(*asn)))
            .map(|(asn, count)| (*asn, *count))
        else {
            continue; // fully unmapped set
        };
        // Strict majority required to overrule raw mappings.
        let mapped: usize = votes.values().sum();
        let strict = majority_count * 2 > mapped;
        for ip in set {
            match out.get(ip) {
                Some(current) if *current != majority && strict => {
                    out.insert(*ip, majority);
                    stats.corrected_interfaces += 1;
                }
                None => {
                    out.insert(*ip, majority);
                    stats.corrected_interfaces += 1;
                }
                _ => {}
            }
        }
    }

    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::midar::{resolve_aliases, MidarConfig};
    use crate::prober::IpIdProber;
    use cfs_net::{Announcement, Ipv4Prefix};
    use cfs_topology::{Topology, TopologyConfig};

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// Hand-built scenario: router B owns 3 interfaces, one of them
    /// addressed from A's space (a /31 handoff).
    #[test]
    fn majority_vote_fixes_ptp_contamination() {
        let db = IpAsnDb::from_announcements([
            Announcement {
                prefix: pfx("10.0.0.0/16"),
                origin: Asn(100),
            }, // AS A
            Announcement {
                prefix: pfx("10.1.0.0/16"),
                origin: Asn(200),
            }, // AS B
        ]);
        let set: Vec<Ipv4Addr> = vec![
            "10.0.0.1".parse().unwrap(), // ptp iface from A's space — wrong
            "10.1.5.1".parse().unwrap(),
            "10.1.5.2".parse().unwrap(),
        ];
        let aliases = AliasResolution {
            sets: vec![set.clone()],
            set_of: set.iter().map(|ip| (*ip, 0)).collect(),
        };
        let (corrected, stats) = correct_ip_to_asn(&db, &aliases, &set);
        assert_eq!(corrected[&set[0]], Asn(200), "ptp iface should flip to B");
        assert_eq!(corrected[&set[1]], Asn(200));
        assert_eq!(stats.conflicting_sets, 1);
        assert_eq!(stats.corrected_interfaces, 1);
    }

    #[test]
    fn ties_leave_raw_mapping() {
        let db = IpAsnDb::from_announcements([
            Announcement {
                prefix: pfx("10.0.0.0/16"),
                origin: Asn(100),
            },
            Announcement {
                prefix: pfx("10.1.0.0/16"),
                origin: Asn(200),
            },
        ]);
        let set: Vec<Ipv4Addr> = vec!["10.0.0.1".parse().unwrap(), "10.1.0.1".parse().unwrap()];
        let aliases = AliasResolution {
            sets: vec![set.clone()],
            set_of: set.iter().map(|ip| (*ip, 0)).collect(),
        };
        let (corrected, stats) = correct_ip_to_asn(&db, &aliases, &set);
        // 1-1 split: nothing flips.
        assert_eq!(corrected[&set[0]], Asn(100));
        assert_eq!(corrected[&set[1]], Asn(200));
        assert_eq!(stats.conflicting_sets, 1);
        assert_eq!(stats.corrected_interfaces, 0);
    }

    #[test]
    fn unmapped_member_adopts_majority() {
        let db = IpAsnDb::from_announcements([Announcement {
            prefix: pfx("10.1.0.0/16"),
            origin: Asn(200),
        }]);
        let set: Vec<Ipv4Addr> = vec![
            "192.0.2.1".parse().unwrap(), // unannounced
            "10.1.0.1".parse().unwrap(),
            "10.1.0.2".parse().unwrap(),
        ];
        let aliases = AliasResolution {
            sets: vec![set.clone()],
            set_of: set.iter().map(|ip| (*ip, 0)).collect(),
        };
        let (corrected, stats) = correct_ip_to_asn(&db, &aliases, &set);
        assert_eq!(corrected[&set[0]], Asn(200));
        assert_eq!(stats.conflicting_sets, 0);
        assert_eq!(stats.corrected_interfaces, 1);
    }

    #[test]
    fn end_to_end_correction_over_generated_topology() {
        let t = Topology::generate(TopologyConfig::tiny()).unwrap();
        let prober = IpIdProber::new(&t);
        let ips: Vec<Ipv4Addr> = t.ifaces.values().map(|i| i.ip).collect();
        let aliases = resolve_aliases(&prober, &ips, &MidarConfig::default());
        let db = t.build_ipasn_db();
        let (corrected, stats) = correct_ip_to_asn(&db, &aliases, &ips);

        // Correction must improve (or at least not worsen) agreement with
        // ground truth over the raw LPM view.
        let truth = |ip: Ipv4Addr| t.ifaces[t.iface_by_ip(ip).unwrap()].asn;
        let raw_right = ips
            .iter()
            .filter(|ip| db.origin(**ip) == Some(truth(**ip)))
            .count();
        let fixed_right = ips
            .iter()
            .filter(|ip| corrected.get(ip) == Some(&truth(**ip)))
            .count();
        assert!(
            fixed_right >= raw_right,
            "correction made things worse: {fixed_right} < {raw_right}"
        );
        assert!(stats.sets > 0);
    }
}
