//! DRoP-style DNS geolocation: extract geographically meaningful tokens
//! (airport codes, city names) from router hostnames.

use std::collections::BTreeMap;

use cfs_geo::World;
use cfs_types::{CityId, MetroId};

/// A hostname-token geolocator with generic dictionaries.
///
/// Unlike the per-operator conventions the validation oracle knows
/// (§6 "DNS records"), this baseline only holds world-wide token lists —
/// which is exactly why it cannot decode facility codes and why the paper
/// finds it coarser and less complete than CFS.
pub struct DnsGeolocator<'w> {
    world: &'w World,
    tokens: BTreeMap<String, CityId>,
}

impl<'w> DnsGeolocator<'w> {
    /// Builds the dictionaries from the world city table: IATA airport
    /// codes plus concatenated city names.
    pub fn new(world: &'w World) -> Self {
        let mut tokens = BTreeMap::new();
        for (id, city) in world.cities().iter() {
            tokens.insert(city.iata.to_lowercase(), id);
            tokens.insert(city.name.replace(' ', ""), id);
        }
        Self { world, tokens }
    }

    /// Attempts to geolocate a hostname to a city. Labels are examined
    /// right-to-left (location tokens sit near the domain in most naming
    /// schemes); the first dictionary hit wins.
    pub fn geolocate(&self, hostname: &str) -> Option<CityId> {
        for label in hostname.split('.').rev() {
            let label = label.to_lowercase();
            if let Some(city) = self.tokens.get(&label) {
                return Some(*city);
            }
        }
        None
    }

    /// Geolocates to a metro.
    pub fn geolocate_metro(&self, hostname: &str) -> Option<MetroId> {
        self.geolocate(hostname).map(|c| self.world.metro_of(c))
    }

    /// Number of dictionary tokens.
    pub fn dictionary_size(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::{DnsStyle, RouterLocation, Topology, TopologyConfig};

    fn world() -> World {
        World::builtin()
    }

    #[test]
    fn airport_codes_resolve() {
        let w = world();
        let g = DnsGeolocator::new(&w);
        let city = g.geolocate("ae1.r2.fra.as3356.example.net").unwrap();
        assert_eq!(w.city(city).name, "frankfurt");
        let city = g.geolocate("xe0.r0.lhr.as1299.example.net").unwrap();
        assert_eq!(w.city(city).name, "london");
    }

    #[test]
    fn city_name_tokens_resolve() {
        let w = world();
        let g = DnsGeolocator::new(&w);
        let city = g.geolocate("core1.newyork.example.net").unwrap();
        assert_eq!(w.city(city).name, "new york");
    }

    #[test]
    fn opaque_names_do_not_resolve() {
        let w = world();
        let g = DnsGeolocator::new(&w);
        assert_eq!(g.geolocate("be12.ccr03.as174.example.net"), None);
        assert_eq!(g.geolocate(""), None);
    }

    #[test]
    fn facility_coded_hostnames_resolve_via_embedded_city() {
        // Facility codes themselves are opaque to DRoP, but our
        // facility-coded convention also carries the IATA label.
        let w = world();
        let g = DnsGeolocator::new(&w);
        let city = g.geolocate("ae1.r2.eqfra3.fra.as3356.example.net").unwrap();
        assert_eq!(w.city(city).name, "frankfurt");
    }

    #[test]
    fn coverage_over_generated_names_is_partial() {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let g = DnsGeolocator::new(&topo.world);
        let mut named = 0usize;
        let mut located = 0usize;
        let mut correct = 0usize;
        for iface in topo.ifaces.values() {
            let Some(name) = &iface.dns_name else {
                continue;
            };
            named += 1;
            if let Some(city) = g.geolocate(name) {
                located += 1;
                let truth_metro = match topo.routers[iface.router].location {
                    RouterLocation::Facility(f) => topo.facilities[f].metro,
                    RouterLocation::PopCity(c) => topo.world.metro_of(c),
                };
                if topo.world.metro_of(city) == truth_metro {
                    correct += 1;
                }
            }
        }
        assert!(named > 0);
        assert!(located > 0);
        assert!(
            located < named,
            "every name geolocated — opaque styles missing?"
        );
        // Mostly correct where it answers (stale names are the residue).
        assert!(correct * 10 >= located * 9, "{correct}/{located}");
    }

    #[test]
    fn dns_style_none_interfaces_are_invisible_to_drop() {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let google = &topo.ases[&cfs_types::Asn(15169)];
        assert_eq!(google.dns_style, DnsStyle::None);
        for rid in &google.routers {
            for ifid in &topo.routers[*rid].ifaces {
                assert!(topo.ifaces[*ifid].dns_name.is_none());
            }
        }
    }

    #[test]
    fn dictionary_scales_with_city_table() {
        let w = world();
        let g = DnsGeolocator::new(&w);
        assert!(g.dictionary_size() >= w.cities().len());
    }
}
