//! # cfs-baselines
//!
//! The two location-inference heuristics the paper compares CFS against
//! (§5, §7) — both structurally weaker than constraint search:
//!
//! * [`DnsGeolocator`] — a DRoP-style hostname parser \[34\] with generic
//!   airport-code and city-name dictionaries. It geolocates only the
//!   minority of interfaces whose PTR records carry location tokens
//!   (the paper: 29% had no record at all, 55% of the rest no tokens ⇒
//!   32% geolocatable), at city granularity, and is misled by stale
//!   names.
//! * [`IpGeoDb`] — a commercial-geolocation-database model: per-prefix
//!   city answers that are "reliable only at the country or state level"
//!   [52, 35, 33], with the famous pathology that every interconnection
//!   prefix of a large CDN maps to its headquarters.
//! * [`CbgGeolocator`] — constraint-based geolocation \[33\]: RTT
//!   multilateration from landmark vantage points; reliable regionally,
//!   far too coarse for buildings.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cbg;
mod drop_geo;
mod ipgeo;

pub use cbg::CbgGeolocator;
pub use drop_geo::DnsGeolocator;
pub use ipgeo::IpGeoDb;
