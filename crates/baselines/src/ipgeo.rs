//! A commercial IP-geolocation database model.
//!
//! Databases of this kind assign locations per *prefix*, usually from
//! registration data — so every address of a block inherits the
//! registrant's headquarters city. That is accurate for single-site
//! networks and systematically wrong for distributed infrastructure:
//! "in some cases, e.g. Google, all IP addresses of prefixes used for
//! interconnection will map to California" (§7).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_net::PrefixTrie;
use cfs_topology::{RouterLocation, Topology};
use cfs_types::{CityId, MetroId};

/// Per-prefix city database with realistic error characteristics.
pub struct IpGeoDb {
    trie: PrefixTrie<CityId>,
    metro_of: BTreeMap<CityId, MetroId>,
}

/// Fraction of prefixes mapped to a random city in the right country
/// (registration data pointing at a branch office).
const WRONG_CITY_SAME_COUNTRY: f64 = 0.10;

/// Fraction of prefixes mapped to an entirely wrong country.
const WRONG_COUNTRY: f64 = 0.05;

impl IpGeoDb {
    /// Derives the database from a topology: every announced prefix maps
    /// to the origin network's headquarters city (its first router's
    /// location), with the standard error mix on top.
    pub fn derive(topo: &Topology) -> Self {
        let mut rng = ChaCha20Rng::seed_from_u64(topo.config.seed ^ 0x960_10c);
        let mut trie = PrefixTrie::new();
        let all_cities: Vec<CityId> = topo.world.cities().ids().collect();

        for node in topo.ases.values() {
            // Headquarters: the first router's city.
            let hq = node
                .routers
                .first()
                .map(|r| match topo.routers[*r].location {
                    RouterLocation::Facility(f) => topo.facilities[f].city,
                    RouterLocation::PopCity(c) => c,
                })
                .unwrap_or(all_cities[0]);
            let hq_country = topo.world.city(hq).country.clone();

            for prefix in &node.prefixes {
                let x: f64 = rng.random();
                let city = if x < WRONG_COUNTRY {
                    all_cities[rng.random_range(0..all_cities.len())]
                } else if x < WRONG_COUNTRY + WRONG_CITY_SAME_COUNTRY {
                    let same_country: Vec<CityId> = all_cities
                        .iter()
                        .copied()
                        .filter(|c| topo.world.city(*c).country == hq_country)
                        .collect();
                    same_country[rng.random_range(0..same_country.len())]
                } else {
                    hq
                };
                trie.insert(*prefix, city);
            }
        }

        let metro_of = topo
            .world
            .cities()
            .iter()
            .map(|(id, c)| (id, c.metro))
            .collect();
        Self { trie, metro_of }
    }

    /// The database's city answer for an address.
    pub fn city(&self, ip: Ipv4Addr) -> Option<CityId> {
        self.trie.longest_match(ip).map(|(_, c)| *c)
    }

    /// The database's metro answer.
    pub fn metro(&self, ip: Ipv4Addr) -> Option<MetroId> {
        self.city(ip).and_then(|c| self.metro_of.get(&c).copied())
    }

    /// Number of prefixes covered.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;
    use cfs_types::Asn;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::default()).unwrap()
    }

    #[test]
    fn covers_all_announced_prefixes() {
        let t = topo();
        let db = IpGeoDb::derive(&t);
        assert_eq!(db.len(), t.announcements.len());
        for a in &t.announcements {
            assert!(db.city(a.prefix.nth(1).unwrap()).is_some());
        }
        assert!(db.city("203.0.113.1".parse().unwrap()).is_none());
    }

    #[test]
    fn cdn_interconnection_space_collapses_to_headquarters() {
        let t = topo();
        let db = IpGeoDb::derive(&t);
        let google = &t.ases[&Asn(15169)];
        // Whatever cities its routers really span, the database answers
        // at most a couple of distinct cities for all of its space.
        let mut answered: std::collections::BTreeSet<CityId> = Default::default();
        for p in &google.prefixes {
            if let Some(c) = db.city(p.nth(100).unwrap()) {
                answered.insert(c);
            }
        }
        assert!(answered.len() <= 2);

        // …whereas its actual footprint spans many metros.
        let mut true_metros: std::collections::BTreeSet<_> = Default::default();
        for f in &google.facilities {
            true_metros.insert(t.facilities[*f].metro);
        }
        assert!(true_metros.len() > answered.len());
    }

    #[test]
    fn mostly_right_for_single_site_networks() {
        let t = topo();
        let db = IpGeoDb::derive(&t);
        let mut checked = 0usize;
        let mut right = 0usize;
        for node in t.ases.values() {
            // Truly single-site networks: one facility, no PoPs, and the
            // HQ (first router) sits at that facility.
            if node.facilities.len() != 1 {
                continue;
            }
            let Some(first) = node.routers.first() else {
                continue;
            };
            if t.router_facility(*first) != Some(node.facilities[0]) {
                continue;
            }
            let truth_city = t.facilities[node.facilities[0]].city;
            let answer = db.city(node.prefixes[0].nth(50).unwrap());
            checked += 1;
            right += usize::from(answer == Some(truth_city));
        }
        assert!(checked > 5);
        assert!(right * 10 >= checked * 7, "{right}/{checked}");
    }

    #[test]
    fn interface_city_error_rate_is_substantial_for_big_networks() {
        // The headline weakness: interfaces of multi-metro networks get
        // the HQ city no matter where the router is.
        let t = topo();
        let db = IpGeoDb::derive(&t);
        let mut checked = 0usize;
        let mut wrong = 0usize;
        for node in t.ases.values() {
            if node.facilities.len() < 5 {
                continue;
            }
            for rid in &node.routers {
                let truth_metro = match t.routers[*rid].location {
                    RouterLocation::Facility(f) => t.facilities[f].metro,
                    RouterLocation::PopCity(c) => t.world.metro_of(c),
                };
                for ifid in &t.routers[*rid].ifaces {
                    let ip = t.ifaces[*ifid].ip;
                    if let Some(m) = db.metro(ip) {
                        checked += 1;
                        wrong += usize::from(m != truth_metro);
                    }
                }
            }
        }
        assert!(checked > 100);
        assert!(
            wrong * 2 > checked,
            "ip-geo suspiciously good: {wrong}/{checked} wrong"
        );
    }

    #[test]
    fn derivation_is_deterministic() {
        let t = topo();
        let a = IpGeoDb::derive(&t);
        let b = IpGeoDb::derive(&t);
        for node in t.ases.values() {
            let ip = node.prefixes[0].nth(9).unwrap();
            assert_eq!(a.city(ip), b.city(ip));
        }
    }
}
