//! Constraint-based geolocation (CBG), after Gueye et al. [33] — the
//! delay-measurement geolocation family the paper contrasts with (§4.2
//! cites its triangulation idea; §7 notes delay methods are "reliable
//! only at the country or state level").
//!
//! Landmarks with known positions ping the target; each minimum RTT
//! yields a great-circle distance bound (light in fiber cannot be
//! outrun). The target is placed at the candidate city that violates the
//! bounds least. Queueing noise, detours (remote-peering access
//! circuits!) and sparse landmark coverage make the answers coarse —
//! which is exactly why building-level inference needs constraints of a
//! different kind.

use std::net::Ipv4Addr;

use cfs_geo::{GeoPoint, FIBER_KM_PER_MS};
use cfs_traceroute::{Engine, VpSet};
use cfs_types::{CityId, MetroId, VantagePointId};

/// RTT samples per landmark (minimum taken, spaced beyond congestion
/// episodes).
const SAMPLES: u64 = 3;

/// Sample spacing, ms.
const SPACING_MS: u64 = 3_600_000;

/// A CBG-style delay geolocator.
pub struct CbgGeolocator<'a> {
    engine: &'a Engine<'a>,
    vps: &'a VpSet,
    landmarks: Vec<(VantagePointId, GeoPoint)>,
}

impl<'a> CbgGeolocator<'a> {
    /// Picks up to `count` landmarks, spread greedily for coverage
    /// (farthest-point selection over the vantage-point set).
    pub fn new(engine: &'a Engine<'a>, vps: &'a VpSet, count: usize) -> Self {
        let all: Vec<(VantagePointId, GeoPoint)> =
            vps.vps.iter().map(|(id, vp)| (id, vp.coords)).collect();
        let mut landmarks: Vec<(VantagePointId, GeoPoint)> = Vec::with_capacity(count);
        if let Some(first) = all.first() {
            landmarks.push(*first);
            while landmarks.len() < count.min(all.len()) {
                // Farthest point from the chosen set.
                let next = all
                    .iter()
                    .max_by_key(|(_, p)| {
                        landmarks
                            .iter()
                            .map(|(_, l)| l.distance_km(*p) as u64)
                            .min()
                            .unwrap_or(0)
                    })
                    .copied()
                    .expect("non-empty");
                if landmarks.iter().any(|(id, _)| *id == next.0) {
                    break;
                }
                landmarks.push(next);
            }
        }
        Self {
            engine,
            vps,
            landmarks,
        }
    }

    /// Number of landmarks in use.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Distance upper bounds from each landmark (minimum RTT × speed of
    /// light in fiber, no path-stretch assumption — conservative, as CBG
    /// prescribes). `None` when the target never answered anyone.
    fn bounds(&self, target: Ipv4Addr) -> Option<Vec<(GeoPoint, f64)>> {
        let mut out = Vec::new();
        for (id, coords) in &self.landmarks {
            let vp = &self.vps.vps[*id];
            let min_rtt = (0..SAMPLES)
                .filter_map(|k| self.engine.ping(vp, target, 7 + k * SPACING_MS))
                .fold(f64::INFINITY, f64::min);
            if min_rtt.is_finite() {
                // One-way distance bound at full fiber speed.
                out.push((*coords, min_rtt / 2.0 * FIBER_KM_PER_MS));
            }
        }
        (!out.is_empty()).then_some(out)
    }

    /// Geolocates `target` to the candidate city violating the distance
    /// bounds least (total excess over all landmarks; ties by city id).
    pub fn geolocate(&self, target: Ipv4Addr) -> Option<CityId> {
        let bounds = self.bounds(target)?;
        let world = &self.engine.topology().world;
        let mut best: Option<(f64, CityId)> = None;
        for (city, c) in world.cities().iter() {
            let violation: f64 = bounds
                .iter()
                .map(|(l, bound)| (l.distance_km(c.location) - bound).max(0.0))
                .sum();
            if best.as_ref().is_none_or(|(v, _)| violation < *v) {
                best = Some((violation, city));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Geolocates to a metro.
    pub fn geolocate_metro(&self, target: Ipv4Addr) -> Option<MetroId> {
        self.geolocate(target)
            .map(|c| self.engine.topology().world.metro_of(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::{RouterLocation, Topology, TopologyConfig};
    use cfs_traceroute::{deploy_vantage_points, VpConfig};

    fn setup() -> Topology {
        Topology::generate(TopologyConfig::default()).unwrap()
    }

    #[test]
    fn landmarks_are_spread_out() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::default()).unwrap();
        let engine = Engine::new(&topo);
        let cbg = CbgGeolocator::new(&engine, &vps, 20);
        assert!(cbg.landmark_count() >= 10);
        // At least two landmarks over 3000 km apart (global spread).
        let far = cbg.landmarks.iter().any(|(_, a)| {
            cbg.landmarks
                .iter()
                .any(|(_, b)| a.distance_km(*b) > 3000.0)
        });
        assert!(far, "landmark selection collapsed to one region");
    }

    #[test]
    fn geolocation_is_usually_right_at_coarse_granularity() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::default()).unwrap();
        let engine = Engine::new(&topo);
        let cbg = CbgGeolocator::new(&engine, &vps, 25);

        let mut checked = 0usize;
        let mut within_1000km = 0usize;
        let mut exact_metro = 0usize;
        for router in topo.routers.values().step_by(17) {
            let iface = router.ifaces.first().copied().unwrap();
            let ip = topo.ifaces[iface].ip;
            let Some(city) = cbg.geolocate(ip) else {
                continue;
            };
            let truth = match router.location {
                RouterLocation::Facility(f) => topo.facilities[f].location,
                RouterLocation::PopCity(c) => topo.world.city(c).location,
            };
            let guess = topo.world.city(city).location;
            checked += 1;
            if truth.distance_km(guess) < 1000.0 {
                within_1000km += 1;
            }
            let truth_metro = match router.location {
                RouterLocation::Facility(f) => topo.facilities[f].metro,
                RouterLocation::PopCity(c) => topo.world.metro_of(c),
            };
            if topo.world.metro_of(city) == truth_metro {
                exact_metro += 1;
            }
        }
        assert!(checked > 20, "too few targets answered: {checked}");
        // Region-level reliability, metro-level weakness — the paper's
        // point about delay-based methods.
        assert!(
            within_1000km * 10 >= checked * 7,
            "CBG coarse accuracy {within_1000km}/{checked}"
        );
        assert!(
            exact_metro < checked,
            "CBG implausibly perfect at metro level ({exact_metro}/{checked})"
        );
    }

    #[test]
    fn silent_targets_yield_none() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let cbg = CbgGeolocator::new(&engine, &vps, 10);
        assert_eq!(cbg.geolocate("198.18.0.1".parse().unwrap()), None);
    }
}
