//! Benchmarks of the CFS engine's hot loop: a full engine iteration
//! (observation extraction + constraint pass) at several thread counts,
//! the recording overhead of an attached `TraceRecorder` against the
//! default `NoopRecorder`, and the `FacilitySet` representation against
//! the `BTreeSet` it replaced.
//!
//! Besides the usual per-bench console lines, `main` records every
//! result (plus the machine's core count, which bounds any thread
//! scaling) into `BENCH_engine.json` at the workspace root.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, Bencher, Criterion};

use cfs_bench::BenchWorld;
use cfs_chaos::{FaultPlan, FaultProfile};
use cfs_core::{Cfs, CfsConfig};
use cfs_net::IpAsnDb;
use cfs_obs::{Monotonic, Recorder, TraceRecorder};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, ChaosEngine, Engine, ProbeService, Trace,
    VpConfig, VpSet,
};
use cfs_types::{FacilityId, FacilitySet, FacilitySetInterner};

struct EngineFixture {
    world: BenchWorld,
    vps: VpSet,
    ipasn: IpAsnDb,
    traces: Vec<Trace>,
}

impl EngineFixture {
    /// Mid-size seeded world with a bootstrap campaign already run.
    fn standard() -> Self {
        let world = BenchWorld::standard();
        let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&world.topo);
        let ipasn = world.topo.build_ipasn_db();
        let targets: Vec<Ipv4Addr> = world
            .topo
            .ases
            .keys()
            .take(24)
            .map(|a| world.topo.target_ip(*a).unwrap())
            .collect();
        let vp_ids: Vec<_> = vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &vp_ids,
            &targets,
            0,
            &CampaignLimits::default(),
        );
        Self {
            world,
            vps,
            ipasn,
            traces,
        }
    }

    /// One engine iteration: alias refresh, observation extraction, and
    /// the constraint pass — no follow-up probing, so the measured work
    /// is the per-iteration cost the search loop pays repeatedly.
    fn iteration(&self, engine: &Engine<'_>, threads: usize) -> usize {
        let cfg = CfsConfig {
            max_iterations: 1,
            followup_interfaces: 0,
            threads,
            ..CfsConfig::default()
        };
        let mut session = Cfs::builder(engine, &self.world.kb)
            .vps(&self.vps)
            .ipasn(&self.ipasn)
            .config(cfg)
            .build_session()
            .unwrap();
        session.ingest(self.traces.clone());
        session.into_report().total()
    }

    /// Same iteration with an explicit recorder attached, for measuring
    /// what full tracing costs relative to the `NoopRecorder` default.
    fn iteration_recorded(
        &self,
        engine: &Engine<'_>,
        threads: usize,
        recorder: Arc<dyn Recorder>,
    ) -> usize {
        let cfg = CfsConfig {
            max_iterations: 1,
            followup_interfaces: 0,
            threads,
            ..CfsConfig::default()
        };
        let mut session = Cfs::builder(engine, &self.world.kb)
            .vps(&self.vps)
            .ipasn(&self.ipasn)
            .config(cfg)
            .recorder(recorder)
            .build_session()
            .unwrap();
        session.ingest(self.traces.clone());
        session.into_report().total()
    }
}

fn bench_engine_iteration(c: &mut Criterion) {
    let fx = EngineFixture::standard();
    let engine = Engine::new(&fx.world.topo);
    let mut group = c.benchmark_group("engine_iteration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for threads in [1usize, 2, 8] {
        group.bench_function(&format!("threads={threads}"), |b: &mut Bencher| {
            b.iter(|| black_box(fx.iteration(&engine, threads)))
        });
    }
    group.finish();
}

/// Recording overhead: the same single-threaded engine iteration with
/// the default `NoopRecorder` versus a live `TraceRecorder` counting
/// every observation, remote test, and stage span. The budget is ≤5%
/// over the noop baseline — tracing is meant to be cheap enough to
/// leave on in experiments.
fn bench_obs_overhead(c: &mut Criterion) {
    let fx = EngineFixture::standard();
    let engine = Engine::new(&fx.world.topo);
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("noop", |b: &mut Bencher| {
        b.iter(|| black_box(fx.iteration(&engine, 1)))
    });
    // One recorder reused across iterations: shards and histograms are
    // fixed-size, so accumulation doesn't grow the working set.
    let recorder = Arc::new(TraceRecorder::new(Arc::new(Monotonic::new())));
    group.bench_function("trace", |b: &mut Bencher| {
        b.iter(|| black_box(fx.iteration_recorded(&engine, 1, recorder.clone())))
    });
    group.finish();
}

/// The chaos layer's toll on the probe hot path: raw `Engine::trace`
/// throughput versus the same engine behind a `ChaosEngine` with an
/// all-zero plan (pure wrapper cost: one hash check per fault
/// dimension) and with the `standard` profile actively perturbing
/// traces. The wrapper is a handful of integer hashes per probe, so
/// both should sit within a few percent of the raw engine.
fn bench_chaos_overhead(c: &mut Criterion) {
    let fx = EngineFixture::standard();
    let engine = Engine::new(&fx.world.topo);
    let targets: Vec<Ipv4Addr> = fx
        .world
        .topo
        .ases
        .keys()
        .take(24)
        .map(|a| fx.world.topo.target_ip(*a).unwrap())
        .collect();
    let vp_id = fx.vps.ids().next().expect("bench world has VPs");
    let vp = &fx.vps.vps[vp_id];
    let seed = fx.world.topo.config.seed;

    let mut group = c.benchmark_group("chaos_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let mut run = |name: &str, svc: &dyn ProbeService| {
        group.bench_function(name, |b: &mut Bencher| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % targets.len();
                black_box(svc.trace(vp, targets[i], (i as u64) * 60_000).hops.len())
            })
        });
    };
    run("clean", &engine);
    let off = ChaosEngine::new(
        Engine::new(&fx.world.topo),
        FaultPlan::new(seed, FaultProfile::off()),
    );
    run("chaos_off", &off);
    let standard = ChaosEngine::new(
        Engine::new(&fx.world.topo),
        FaultPlan::new(seed, FaultProfile::standard()),
    );
    run("chaos_standard", &standard);
    group.finish();
}

/// The representation change behind the caches: interned sorted-slice
/// sets versus the `BTreeSet` clone-and-intersect the engine used
/// before.
fn bench_facility_sets(c: &mut Criterion) {
    // Footprint shapes modelled on the knowledge base: a few large
    // operator footprints and many small ones, intersected pairwise the
    // way `constrain_public`/`constrain_private` do.
    let interner = FacilitySetInterner::new();
    let sets: Vec<FacilitySet> = (0..64u32)
        .map(|i| {
            let stride = 1 + (i % 7);
            let len = if i % 9 == 0 { 180 } else { 12 + (i % 16) };
            interner.intern((0..len).map(|k| FacilityId::new(i + k * stride)))
        })
        .collect();
    let btrees: Vec<std::collections::BTreeSet<FacilityId>> =
        sets.iter().map(FacilitySet::to_btree_set).collect();

    let mut group = c.benchmark_group("facset");
    group.bench_function("intersect_interned", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            let j = (i * 31 + 7) % sets.len();
            black_box(sets[i].intersect(&sets[j]).len())
        })
    });
    group.bench_function("intersect_btreeset", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % btrees.len();
            let j = (i * 31 + 7) % btrees.len();
            // What the engine did before: materialize the intersection
            // into a fresh owned set.
            let out: std::collections::BTreeSet<FacilityId> =
                btrees[i].intersection(&btrees[j]).copied().collect();
            black_box(out.len())
        })
    });
    group.finish();
}

/// The profiling/diff layer itself: rendering the `cfs-profile/1`
/// sidecar from a populated snapshot, and structurally diffing two full
/// `cfs-trace/1` documents — the operations the CI regression gate runs
/// on every build, so they should stay far below a pipeline iteration.
fn bench_profile_diff(c: &mut Criterion) {
    let fx = EngineFixture::standard();
    let engine = Engine::new(&fx.world.topo);
    let recorder = Arc::new(TraceRecorder::new(Arc::new(Monotonic::new())));
    fx.iteration_recorded(&engine, 1, recorder.clone());
    let snap = recorder.snapshot();
    let profile_doc = cfs_obs::render_profile_json(&snap);

    // Two traces of the same run shape with a small counter drift, so
    // the diff walks every section and itemizes something.
    let report = {
        let mut session = Cfs::builder(&engine, &fx.world.kb)
            .vps(&fx.vps)
            .ipasn(&fx.ipasn)
            .config(CfsConfig {
                max_iterations: 1,
                ..CfsConfig::default()
            })
            .recorder(recorder.clone())
            .build_session()
            .unwrap();
        session.ingest(fx.traces.clone());
        session.into_report()
    };
    let trace_a = cfs_core::render_trace_json(&report, &snap);
    let trace_b = cfs_core::render_trace_json(&report, &recorder.snapshot());

    let mut group = c.benchmark_group("profile_diff");
    group.bench_function("render_profile", |b: &mut Bencher| {
        b.iter(|| black_box(cfs_obs::render_profile_json(&snap).len()))
    });
    group.bench_function("diff_traces", |b: &mut Bencher| {
        b.iter(|| {
            let d = cfs_obs::diff_docs(&trace_a, &trace_b, 0).expect("well-formed");
            black_box(d.is_drift())
        })
    });
    group.bench_function("diff_profiles", |b: &mut Bencher| {
        b.iter(|| {
            let d = cfs_obs::diff_docs(&profile_doc, &profile_doc, 25).expect("well-formed");
            black_box(d.is_drift())
        })
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_engine_iteration(&mut criterion);
    bench_obs_overhead(&mut criterion);
    bench_chaos_overhead(&mut criterion);
    bench_facility_sets(&mut criterion);
    bench_profile_diff(&mut criterion);

    // Record the measurements for tracking across PRs.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = criterion
        .results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iterations\": {}}}",
                r.name,
                r.mean.as_nanos(),
                r.iterations
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"cores\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cores,
        entries.join(",\n")
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_engine.json");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    println!("wrote {}", path.display());
}
