//! One benchmark per paper artifact: times the computation that
//! regenerates each table/figure (at tiny scale, so `cargo bench`
//! finishes in minutes; the artifact contents come from
//! `cfs-experiments` at `--scale paper`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cfs_experiments::{experiments, Lab, Output, Scale};

fn bench_experiment(c: &mut Criterion, lab: &Lab, id: &str) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut out = Output::new(&format!("{id}-bench"), "tiny").quiet();
            black_box(experiments::run_by_id(id, lab, &mut out).expect("experiment"))
        })
    });
    group.finish();
}

fn all_figures(c: &mut Criterion) {
    let lab = Lab::provision(Scale::Tiny, Some(42)).expect("lab");
    for id in experiments::ALL_IDS {
        bench_experiment(c, &lab, id);
    }
}

criterion_group!(benches, all_figures);
criterion_main!(benches);
