//! Benchmarks of the service mode (`cfsd`): resident-session query
//! latency, and the incremental delta path — a KB epoch flip absorbed
//! through `CfsSession::apply_delta` — against the full re-convergence
//! a batch deployment would pay for the same input change, at roughly
//! 1% and 10% of observed owner footprints flipped per epoch.
//!
//! Besides the per-bench console lines, `main` records every result and
//! the measured dirty-set sizes into `BENCH_serve.json` at the
//! workspace root; EXPERIMENTS.md quotes the speedups from there.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, Bencher, Criterion};

use cfs_bench::BenchWorld;
use cfs_core::{Cfs, CfsConfig, CfsReport, CfsSession, Delta, DeltaOutcome};
use cfs_kb::KnowledgeBase;
use cfs_net::IpAsnDb;
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, Engine, Trace, VpConfig, VpSet,
};
use cfs_types::Asn;

/// Service sessions run follow-up-less (measurement-complete) configs;
/// one worker keeps per-iteration timings free of scheduling noise.
fn service_config() -> CfsConfig {
    CfsConfig {
        followup_interfaces: 0,
        threads: 1,
        ..CfsConfig::default()
    }
}

struct ServeFixture {
    world: BenchWorld,
    vps: VpSet,
    ipasn: IpAsnDb,
    traces: Vec<Trace>,
}

impl ServeFixture {
    /// Mid-size seeded world with a bootstrap campaign already run —
    /// the same shape `cfsd` boots with.
    fn standard() -> Self {
        let world = BenchWorld::standard();
        let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&world.topo);
        let ipasn = world.topo.build_ipasn_db();
        let targets: Vec<Ipv4Addr> = world
            .topo
            .ases
            .keys()
            .take(24)
            .map(|a| world.topo.target_ip(*a).unwrap())
            .collect();
        let vp_ids: Vec<_> = vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &vp_ids,
            &targets,
            0,
            &CampaignLimits::default(),
        );
        Self {
            world,
            vps,
            ipasn,
            traces,
        }
    }

    /// A fresh unconverged session over the bootstrap inputs.
    fn session<'a>(&'a self, engine: &'a Engine<'a>, kb: &'a KnowledgeBase) -> CfsSession<'a> {
        let mut session = Cfs::builder(engine, kb)
            .vps(&self.vps)
            .ipasn(&self.ipasn)
            .config(service_config())
            .build_session()
            .expect("bench fixture always sets vps/ipasn");
        session.ingest(self.traces.clone());
        session
    }

    /// A KB epoch in which observed-owner ASes lose one listed facility
    /// each — scrubbed from both PeeringDB and the NOC page, since the
    /// assembled footprint is their union — until the flipped ASes
    /// collectively own about `target_ifaces` interfaces. Flips start
    /// from the ASes owning the fewest interfaces, so the small-target
    /// epoch models the common operational case: a peripheral record
    /// changing, not a backbone redeploying.
    fn flipped_kb(&self, baseline: &CfsReport, target_ifaces: usize) -> Arc<KnowledgeBase> {
        let mut owned: std::collections::BTreeMap<Asn, usize> = std::collections::BTreeMap::new();
        for iface in baseline.interfaces.values() {
            if let Some(owner) = iface.owner {
                *owned.entry(owner).or_default() += 1;
            }
        }
        let mut owners: Vec<Asn> = owned.keys().copied().collect();
        owners.sort_by_key(|asn| (owned[asn], *asn));
        let mut sources = self.world.sources.clone();
        let mut flipped = 0usize;
        let mut covered = 0usize;
        for asn in &owners {
            if flipped > 0 && covered >= target_ifaces {
                break;
            }
            let Some(rec) = sources.pdb_networks.get_mut(asn) else {
                continue;
            };
            if rec.facilities.len() < 2 {
                continue;
            }
            let victim = rec.facilities[0];
            rec.facilities.retain(|f| *f != victim);
            if let Some(page) = sources.noc_pages.get_mut(asn) {
                page.facilities.retain(|f| *f != victim);
            }
            flipped += 1;
            covered += owned[asn];
        }
        assert!(flipped > 0, "no flippable AS footprints in the bench world");
        Arc::new(KnowledgeBase::assemble(&sources, &self.world.topo.world))
    }
}

/// Resident-session query throughput: what a `cfsd` answer costs once
/// the report is cached (the daemon adds one line-protocol roundtrip on
/// top of this).
fn bench_query(c: &mut Criterion, fx: &ServeFixture, engine: &Engine<'_>) {
    let mut session = fx.session(engine, &fx.world.kb);
    session.converge();
    let ips: Vec<Ipv4Addr> = session
        .report()
        .expect("converged above")
        .interfaces
        .keys()
        .copied()
        .collect();
    let mut group = c.benchmark_group("serve");
    group.bench_function("query", |b: &mut Bencher| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ips.len();
            black_box(session.query(ips[i]).candidates)
        })
    });
    group.finish();
}

/// The delta path against the batch path, same input change: apply a KB
/// epoch flip to a converged session (re-converges the dirty frontier
/// only) versus rebuilding and re-converging a session from scratch
/// over the flipped epoch.
fn bench_deltas(
    c: &mut Criterion,
    fx: &ServeFixture,
    engine: &Engine<'_>,
    kb_base: &Arc<KnowledgeBase>,
    flips: &[(&'static str, Arc<KnowledgeBase>)],
) {
    let mut group = c.benchmark_group("serve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("full_reconverge", |b: &mut Bencher| {
        let (_, kb_flip) = &flips[0];
        b.iter(|| {
            let session = fx.session(engine, kb_flip);
            black_box(session.into_report().total())
        })
    });

    for (name, kb_flip) in flips {
        group.bench_function(&format!("delta_kb_{name}"), |b: &mut Bencher| {
            let mut session = fx.session(engine, &fx.world.kb);
            session.converge();
            // Alternate flip/unflip so every iteration absorbs a delta
            // of the same dirty size from a converged state.
            let mut forward = true;
            b.iter(|| {
                let epoch = if forward { kb_flip } else { kb_base };
                forward = !forward;
                let outcome = session
                    .apply_delta(Delta::KbEpochFlip(epoch.clone()))
                    .expect("service config is follow-up-less");
                black_box(outcome.reconverged)
            })
        });
    }
    group.finish();
}

/// One-off dirty-set accounting for the JSON sidecar: how many
/// interfaces each flip dirties and re-converges, out of the total.
fn dirty_stats(
    fx: &ServeFixture,
    engine: &Engine<'_>,
    flips: &[(&'static str, Arc<KnowledgeBase>)],
) -> Vec<(String, DeltaOutcome)> {
    flips
        .iter()
        .map(|(name, kb_flip)| {
            let mut session = fx.session(engine, &fx.world.kb);
            session.converge();
            let outcome = session
                .apply_delta(Delta::KbEpochFlip(kb_flip.clone()))
                .expect("service config is follow-up-less");
            (format!("delta_kb_{name}"), outcome)
        })
        .collect()
}

fn main() {
    let fx = ServeFixture::standard();
    let engine = Engine::new(&fx.world.topo);

    // Baseline epoch (content-equal to the fixture KB) plus two flipped
    // epochs sized for ~1% and ~10% of the observed owner footprints.
    let kb_base = Arc::new(KnowledgeBase::assemble(
        &fx.world.sources,
        &fx.world.topo.world,
    ));
    let baseline = fx.session(&engine, &fx.world.kb).into_report();
    // The dirty frontier closes over footprint consumers and alias sets,
    // so it lands at roughly twice the owned-interface count the flip
    // targets; aim at half of each nominal tier and verify below.
    let total = baseline.total();
    let flips: Vec<(&'static str, Arc<KnowledgeBase>)> = vec![
        ("1pct", fx.flipped_kb(&baseline, (total / 200).max(1))),
        ("10pct", fx.flipped_kb(&baseline, (total / 20).max(1))),
    ];

    let mut criterion = Criterion::default();
    bench_query(&mut criterion, &fx, &engine);
    bench_deltas(&mut criterion, &fx, &engine, &kb_base, &flips);
    let stats = dirty_stats(&fx, &engine, &flips);
    for (name, o) in &stats {
        println!(
            "{name}: dirty {} reconverged {} of {} interfaces",
            o.dirty, o.reconverged, o.total
        );
    }
    let small = &stats[0].1;
    assert!(
        small.dirty * 100 <= small.total,
        "the small flip must stay at <=1% dirty to make the speedup claim honest: {} of {}",
        small.dirty,
        small.total
    );

    // Record the measurements for tracking across PRs.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = criterion
        .results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iterations\": {}}}",
                r.name,
                r.mean.as_nanos(),
                r.iterations
            )
        })
        .collect();
    let dirty: Vec<String> = stats
        .iter()
        .map(|(name, o)| {
            format!(
                "    {{\"name\": \"{}\", \"dirty\": {}, \"reconverged\": {}, \"total\": {}}}",
                name, o.dirty, o.reconverged, o.total
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"cores\": {},\n  \"results\": [\n{}\n  ],\n  \"dirty\": [\n{}\n  ]\n}}\n",
        cores,
        entries.join(",\n"),
        dirty.join(",\n")
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
