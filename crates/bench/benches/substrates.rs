//! Microbenchmarks of the substrate hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::net::Ipv4Addr;

use cfs_alias::IpIdProber;
use cfs_bench::BenchWorld;
use cfs_bgp::compute_routes;
use cfs_geo::{haversine_km, GeoPoint};
use cfs_net::{IpAsnDb, Ipv4Prefix, PrefixTrie};
use cfs_traceroute::{deploy_vantage_points, Engine, VpConfig};

fn bench_trie(c: &mut Criterion) {
    let mut rng = ChaCha20Rng::seed_from_u64(1);
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    for i in 0..50_000u32 {
        let addr = Ipv4Addr::from(rng.random::<u32>());
        let len = rng.random_range(8..=24);
        trie.insert(Ipv4Prefix::new(addr, len).unwrap(), i);
    }
    let probes: Vec<Ipv4Addr> = (0..1024)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    c.bench_function("trie/longest_match_50k_prefixes", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(trie.longest_match(probes[i]))
        })
    });
}

fn bench_ipasn(c: &mut Criterion) {
    let world = BenchWorld::standard();
    let db = IpAsnDb::from_announcements(world.topo.announcements.to_vec());
    let ips: Vec<Ipv4Addr> = world.topo.ifaces.values().map(|i| i.ip).collect();
    c.bench_function("ipasn/origin_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ips.len();
            black_box(db.origin(ips[i]))
        })
    });
}

fn bench_geo(c: &mut Criterion) {
    let a = GeoPoint::new(51.5074, -0.1278);
    let b2 = GeoPoint::new(40.7128, -74.0060);
    c.bench_function("geo/haversine", |b| {
        b.iter(|| black_box(haversine_km(a, b2)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let world = BenchWorld::standard();
    let dests: Vec<_> = world.topo.ases.keys().copied().take(16).collect();
    c.bench_function("bgp/compute_routes_one_destination", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % dests.len();
            black_box(compute_routes(&world.topo, dests[i]))
        })
    });
}

fn bench_traceroute(c: &mut Criterion) {
    let world = BenchWorld::standard();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&world.topo);
    let targets: Vec<Ipv4Addr> = world
        .topo
        .ases
        .keys()
        .take(32)
        .map(|a| world.topo.target_ip(*a).unwrap())
        .collect();
    let vp_ids: Vec<_> = vps.ids().collect();
    c.bench_function("traceroute/single_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let vp = &vps.vps[vp_ids[i % vp_ids.len()]];
            black_box(engine.trace(vp, targets[i % targets.len()], (i as u64) * 13))
        })
    });
}

fn bench_alias_probe(c: &mut Criterion) {
    let world = BenchWorld::standard();
    let prober = IpIdProber::new(&world.topo);
    let ips: Vec<Ipv4Addr> = world.topo.ifaces.values().map(|i| i.ip).collect();
    c.bench_function("alias/ipid_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(prober.probe(ips[i % ips.len()], (i as u64) * 7))
        })
    });
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);
    group.bench_function("generate_default_scale", |b| {
        b.iter(|| {
            black_box(
                cfs_topology::Topology::generate(cfs_topology::TopologyConfig::default()).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trie,
    bench_ipasn,
    bench_geo,
    bench_routing,
    bench_traceroute,
    bench_alias_probe,
    bench_generation,
);
criterion_main!(benches);
