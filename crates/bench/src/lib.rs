//! # cfs-bench
//!
//! Criterion benchmarks for the `cfs` workspace:
//!
//! * `benches/substrates.rs` — microbenchmarks of the hot paths: prefix
//!   trie lookups, great-circle math, valley-free route computation,
//!   traceroute simulation, IP-ID probing and alias corroboration.
//! * `benches/figures.rs` — one benchmark per paper artifact, timing the
//!   computation that regenerates it (the artifact *contents* are
//!   produced by `cfs-experiments`; these benches answer "how long does
//!   each reproduction take and how does it scale").
//!
//! Run with `cargo bench -p cfs-bench`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_topology::{Topology, TopologyConfig};

/// A prebuilt small world shared by benchmarks (generation itself is
/// measured separately).
pub struct BenchWorld {
    /// Ground truth.
    pub topo: Topology,
    /// Public sources.
    pub sources: PublicSources,
    /// Assembled knowledge base.
    pub kb: KnowledgeBase,
}

impl BenchWorld {
    /// Builds the standard bench world (default scale, fixed seed).
    pub fn standard() -> Self {
        let topo = Topology::generate(TopologyConfig::default()).expect("topology");
        let sources = PublicSources::derive(&topo, &KbConfig::default());
        let kb = KnowledgeBase::assemble(&sources, &topo.world);
        Self { topo, sources, kb }
    }

    /// Builds the tiny bench world for the heavier end-to-end benches.
    pub fn tiny() -> Self {
        let topo = Topology::generate(TopologyConfig::tiny()).expect("topology");
        let sources = PublicSources::derive(&topo, &KbConfig::default());
        let kb = KnowledgeBase::assemble(&sources, &topo.world);
        Self { topo, sources, kb }
    }
}
