//! Figure 2 — "Number of interconnection facilities for ASes extracted
//! from their official website, and the associated fraction of facilities
//! that appear in PeeringDB."
//!
//! Paper findings: 152 ASes checked; PeeringDB missed 1,424 AS-to-facility
//! links for 61 of them; 4 ASes had no PeeringDB facility record at all.

use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let mut series = Vec::new();
    for (asn, page) in &lab.sources.noc_pages {
        let noc_count = page.facilities.len();
        if noc_count == 0 {
            continue;
        }
        let pdb: std::collections::BTreeSet<_> = lab
            .sources
            .pdb_networks
            .get(asn)
            .map(|r| r.facilities.iter().copied().collect())
            .unwrap_or_default();
        let in_pdb = page.facilities.iter().filter(|f| pdb.contains(f)).count();
        series.push((asn.raw(), noc_count, in_pdb));
    }
    // Figure 2 sorts ASes by facility count, descending.
    series.sort_by_key(|(asn, total, _)| (std::cmp::Reverse(*total), *asn));

    let ases_checked = series.len();
    let ases_with_missing = series.iter().filter(|(_, t, p)| p < t).count();
    let ases_zero_pdb = series.iter().filter(|(_, _, p)| *p == 0).count();
    let missing_links: usize = series.iter().map(|(_, t, p)| t - p).sum();

    out.kv("ASes with transcribed NOC pages", ases_checked);
    out.kv("ASes with links missing from PeeringDB", ases_with_missing);
    out.kv("ASes with zero PeeringDB facility coverage", ases_zero_pdb);
    out.kv("total missing AS-to-facility links", missing_links);
    out.line("");
    out.line("paper: 152 ASes; 61 with missing links; 4 with zero coverage; 1,424 missing links");
    out.line("");

    let head: Vec<Vec<String>> = series
        .iter()
        .take(20)
        .map(|(asn, total, in_pdb)| {
            vec![
                format!("AS{asn}"),
                total.to_string(),
                in_pdb.to_string(),
                format!("{:.2}", *in_pdb as f64 / *total as f64),
            ]
        })
        .collect();
    out.heading("largest 20 footprints");
    out.table(&["as", "noc facilities", "in peeringdb", "fraction"], &head);

    Ok(serde_json::json!({
        "ases_checked": ases_checked,
        "ases_with_missing_links": ases_with_missing,
        "ases_zero_pdb": ases_zero_pdb,
        "missing_links": missing_links,
        "series": series
            .iter()
            .map(|(asn, total, in_pdb)| serde_json::json!({
                "asn": asn, "noc_facilities": total, "in_peeringdb": in_pdb,
            }))
            .collect::<Vec<_>>(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn incompleteness_is_visible() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("fig2-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        assert!(json["ases_checked"].as_u64().unwrap() > 10);
        // The whole point of Figure 2: PeeringDB misses links for a
        // substantial minority of transcribed networks.
        assert!(json["ases_with_missing_links"].as_u64().unwrap() > 0);
        assert!(json["missing_links"].as_u64().unwrap() > 0);
    }

    #[test]
    fn series_is_sorted_descending() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("fig2-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        let series = json["series"].as_array().unwrap();
        let counts: Vec<u64> = series
            .iter()
            .map(|r| r["noc_facilities"].as_u64().unwrap())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
