//! One module per paper artifact. Every module exposes
//! `run(&Lab, &mut Output) -> Result<serde_json::Value>`.

pub mod ablation;
pub mod disruption_eval;
pub mod dns_geo;
pub mod fault_curve;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kind_confusion;
pub mod proximity;
pub mod table1;
pub mod text_stats;

use crate::{Lab, Output, Scale};
use cfs_types::Result;

/// Runs one experiment by id.
pub fn run_by_id(id: &str, lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    match id {
        "table1" => table1::run(lab, out),
        "fig2" => fig2::run(lab, out),
        "fig3" => fig3::run(lab, out),
        "fig7" => fig7::run(lab, out),
        "fig8" => fig8::run(lab, out),
        "fig9" => fig9::run(lab, out),
        "fig10" => fig10::run(lab, out),
        "text_stats" => text_stats::run(lab, out),
        "proximity" => proximity::run(lab, out),
        "dns_geo" => dns_geo::run(lab, out),
        "ablation" => ablation::run(lab, out),
        "kind_confusion" => kind_confusion::run(lab, out),
        "fault_curve" => fault_curve::run(lab, out),
        "disruption_eval" => disruption_eval::run(lab, out),
        other => Err(cfs_types::Error::not_found("experiment", other)),
    }
}

/// All experiment ids in paper order, plus the extension studies.
pub const ALL_IDS: [&str; 14] = [
    "table1",
    "fig2",
    "fig3",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "text_stats",
    "proximity",
    "dns_geo",
    "ablation",
    "kind_confusion",
    "fault_curve",
    "disruption_eval",
];

/// Width of the metrics windows experiment binaries record into.
const EXPERIMENT_WINDOW_NS: u64 = 1_000_000_000;

/// Closed windows kept in the experiment binaries' metrics ring.
const EXPERIMENT_WINDOWS_KEPT: usize = 120;

/// Standard binary entry point shared by all experiment binaries.
///
/// Every run carries a `cfs_obs::WindowedRecorder` (1 s windows) over a
/// `TraceRecorder` on one shared monotonic clock: the windowed
/// `cfs-metrics/1` document — totals *and* the per-window ring — lands
/// next to the experiment's results as `results/<id>.metrics.json`, and
/// the wall-clock duration sidecar as `results/<id>.profile.json` (the
/// `cfs-profile/1` document `cfs profile` renders).
pub fn main_for(id: &str) {
    let (scale, seed) = crate::parse_args();
    let mut lab = Lab::provision(scale, seed).expect("lab provisioning failed");
    let clock = std::sync::Arc::new(cfs_obs::Monotonic::new());
    let inner = std::sync::Arc::new(cfs_obs::TraceRecorder::new(clock.clone()));
    let windows = std::sync::Arc::new(cfs_obs::WindowedRecorder::new(
        inner.clone(),
        clock,
        EXPERIMENT_WINDOW_NS,
        EXPERIMENT_WINDOWS_KEPT,
    ));
    lab.recorder = windows.clone();
    let mut out = Output::new(id, scale.label());
    let json = run_by_id(id, &lab, &mut out).expect("experiment failed");
    let path = out.finish(json).expect("writing results failed");
    let snap = inner.snapshot();
    let metrics_path = crate::results_dir().join(format!("{id}.metrics.json"));
    std::fs::write(&metrics_path, windows.render_metrics_json()).expect("writing metrics failed");
    let profile_path = crate::results_dir().join(format!("{id}.profile.json"));
    std::fs::write(&profile_path, cfs_obs::render_profile_json(&snap))
        .expect("writing profile failed");
    eprintln!("\nwrote {}", path.display());
    eprintln!("wrote {}", metrics_path.display());
    eprintln!("wrote {}", profile_path.display());
    // Tiny scale is for smoke tests only; remind the user.
    if scale == Scale::Tiny {
        eprintln!("note: --scale tiny is a smoke test; use --scale paper for the reproduction");
    }
}
