//! §5/§7 — the geolocation baselines.
//!
//! Paper findings over its 13,889 peering interfaces: 29% had no DNS
//! record; 55% of the named ones carried no location tokens; DRoP could
//! geolocate only 32%, "smaller than the first 5 iterations of the CFS
//! algorithm, and … more coarse-grained". IP geolocation databases are
//! "reliable only at the country or state level".

use cfs_baselines::{CbgGeolocator, DnsGeolocator, IpGeoDb};
use cfs_core::CfsConfig;
use cfs_topology::RouterLocation;
use cfs_traceroute::Engine;
use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let report = lab.run_cfs(None, None, CfsConfig::default());
    let drop = DnsGeolocator::new(&lab.topo.world);
    let ipgeo = IpGeoDb::derive(&lab.topo);
    let engine = Engine::new(&lab.topo);
    let cbg = CbgGeolocator::new(&engine, &lab.vps, 25);

    let mut total = 0usize;
    let mut named = 0usize;
    let mut geo_tokens = 0usize;
    let mut drop_correct_metro = 0usize;
    let mut ipgeo_answers = 0usize;
    let mut ipgeo_correct_metro = 0usize;
    let mut ipgeo_correct_country = 0usize;
    let mut cbg_answers = 0usize;
    let mut cbg_correct_metro = 0usize;
    let mut cbg_within_1000km = 0usize;

    for ip in report.interfaces.keys() {
        let Some(ifid) = lab.topo.iface_by_ip(*ip) else {
            continue;
        };
        let iface = &lab.topo.ifaces[ifid];
        let (truth_metro, truth_country) = match lab.topo.routers[iface.router].location {
            RouterLocation::Facility(f) => {
                let fac = &lab.topo.facilities[f];
                (fac.metro, lab.topo.world.city(fac.city).country.clone())
            }
            RouterLocation::PopCity(c) => (
                lab.topo.world.metro_of(c),
                lab.topo.world.city(c).country.clone(),
            ),
        };
        total += 1;

        if let Some(name) = &iface.dns_name {
            named += 1;
            if let Some(city) = drop.geolocate(name) {
                geo_tokens += 1;
                if lab.topo.world.metro_of(city) == truth_metro {
                    drop_correct_metro += 1;
                }
            }
        }

        if let Some(city) = ipgeo.city(*ip) {
            ipgeo_answers += 1;
            if lab.topo.world.metro_of(city) == truth_metro {
                ipgeo_correct_metro += 1;
            }
            if lab.topo.world.city(city).country == truth_country {
                ipgeo_correct_country += 1;
            }
        }

        // CBG multilateration is expensive; sample one interface in four.
        if total.is_multiple_of(4) {
            if let Some(city) = cbg.geolocate(*ip) {
                cbg_answers += 1;
                if lab.topo.world.metro_of(city) == truth_metro {
                    cbg_correct_metro += 1;
                }
                let truth_loc = lab.topo.world.metro(truth_metro).location;
                if lab.topo.world.city(city).location.distance_km(truth_loc) < 1000.0 {
                    cbg_within_1000km += 1;
                }
            }
        }
    }

    // CFS coverage at iteration 5 for the comparison the paper makes.
    let cfs_at_5 = report
        .iterations
        .iter()
        .find(|s| s.iteration == 5)
        .map(|s| s.resolved as f64 / report.total().max(1) as f64)
        .unwrap_or_else(|| report.resolved_fraction());

    let pct = |n: usize, d: usize| {
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    };

    out.kv("peering interfaces examined", total);
    out.kv(
        "with a PTR record",
        format!("{named} ({:.1}%)", 100.0 * pct(named, total)),
    );
    out.kv(
        "with location tokens (DRoP geolocatable)",
        format!(
            "{geo_tokens} ({:.1}% of all)",
            100.0 * pct(geo_tokens, total)
        ),
    );
    out.kv(
        "DRoP metro accuracy where it answers",
        format!("{:.1}%", 100.0 * pct(drop_correct_metro, geo_tokens.max(1))),
    );
    out.kv(
        "CFS resolved fraction at iteration 5",
        format!("{:.1}%", 100.0 * cfs_at_5),
    );
    out.kv(
        "IP-geolocation metro accuracy",
        format!(
            "{:.1}%",
            100.0 * pct(ipgeo_correct_metro, ipgeo_answers.max(1))
        ),
    );
    out.kv(
        "IP-geolocation country accuracy",
        format!(
            "{:.1}%",
            100.0 * pct(ipgeo_correct_country, ipgeo_answers.max(1))
        ),
    );
    out.kv(
        "CBG (delay) metro accuracy",
        format!("{:.1}%", 100.0 * pct(cbg_correct_metro, cbg_answers.max(1))),
    );
    out.kv(
        "CBG (delay) within-1000km accuracy",
        format!("{:.1}%", 100.0 * pct(cbg_within_1000km, cbg_answers.max(1))),
    );
    out.line("");
    out.line("paper: 29% nameless; 55% of named token-free; 32% DRoP-geolocatable < CFS@5; IP geo reliable only at country level");

    Ok(serde_json::json!({
        "interfaces": total,
        "named": named,
        "named_fraction": pct(named, total),
        "drop_geolocatable": geo_tokens,
        "drop_geolocatable_fraction": pct(geo_tokens, total),
        "drop_metro_accuracy": pct(drop_correct_metro, geo_tokens.max(1)),
        "cfs_resolved_fraction_at_iter5": cfs_at_5,
        "ipgeo_metro_accuracy": pct(ipgeo_correct_metro, ipgeo_answers.max(1)),
        "ipgeo_country_accuracy": pct(ipgeo_correct_country, ipgeo_answers.max(1)),
        "cbg_metro_accuracy": pct(cbg_correct_metro, cbg_answers.max(1)),
        "cbg_regional_accuracy": pct(cbg_within_1000km, cbg_answers.max(1)),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn baselines_are_weaker_than_cfs() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("dns-geo-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let drop_cov = json["drop_geolocatable_fraction"].as_f64().unwrap();
        let cfs5 = json["cfs_resolved_fraction_at_iter5"].as_f64().unwrap();
        assert!(
            drop_cov < 0.9,
            "DRoP coverage suspiciously complete: {drop_cov}"
        );
        assert!(
            cfs5 > drop_cov * 0.8,
            "CFS at iteration 5 ({cfs5}) should rival DRoP coverage ({drop_cov})"
        );
        // Country-level IP geolocation beats its own metro-level answers.
        let country = json["ipgeo_country_accuracy"].as_f64().unwrap();
        let metro = json["ipgeo_metro_accuracy"].as_f64().unwrap();
        assert!(country >= metro);
    }
}
