//! Ablation study (beyond the paper): which design ingredients carry the
//! result? Each variant disables one mechanism of §4 and re-runs the
//! pipeline; the table reports coverage and ground-truth accuracy.
//!
//! * `full`            — the complete algorithm;
//! * `no-alias`        — without Step 3 (alias sets share a facility);
//! * `no-followup`     — without Step 4 (targeted follow-up traceroutes);
//! * `no-reverse`      — without the §4.3 reverse search;
//! * `no-proximity`    — without the §4.4 switch-proximity fallback;
//! * `classic-tracert` — with classic (non-Paris) traceroute artifacts,
//!   quantifying why the paper insists on Paris traceroute \[9\].

use cfs_core::{Cfs, CfsConfig, CfsReport};
use cfs_traceroute::Engine;
use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let base = CfsConfig::default();
    let variants: Vec<(&str, CfsConfig, bool)> = vec![
        ("full", base.clone(), true),
        (
            "no-alias",
            CfsConfig {
                alias_constraints: false,
                ..base.clone()
            },
            true,
        ),
        (
            "no-followup",
            CfsConfig {
                followup_interfaces: 0,
                ..base.clone()
            },
            true,
        ),
        (
            "no-reverse",
            CfsConfig {
                reverse_search: false,
                ..base.clone()
            },
            true,
        ),
        (
            "no-proximity",
            CfsConfig {
                proximity: false,
                ..base.clone()
            },
            true,
        ),
        ("classic-tracert", base.clone(), false),
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, cfg, paris) in variants {
        let report = run_variant(lab, cfg, paris);
        let (correct, wrong) = accuracy(lab, &report);
        let checked = correct + wrong;
        let acc = if checked > 0 {
            correct as f64 / checked as f64
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            report.total().to_string(),
            report.resolved().to_string(),
            format!("{:.1}%", report.resolved_fraction() * 100.0),
            format!("{:.1}%", acc * 100.0),
            report.traces_issued.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "variant": label,
            "tracked": report.total(),
            "resolved": report.resolved(),
            "resolved_fraction": report.resolved_fraction(),
            "accuracy": acc,
            "checked": checked,
            "followup_traces": report.traces_issued,
        }));
    }

    out.table(
        &[
            "variant",
            "tracked",
            "resolved",
            "coverage",
            "accuracy",
            "follow-ups",
        ],
        &rows,
    );
    out.line("");
    out.line("accuracy = resolved verdicts matching hidden ground truth (evaluation-only oracle)");

    Ok(serde_json::json!({ "variants": json_rows }))
}

fn run_variant(lab: &Lab, cfg: CfsConfig, paris: bool) -> CfsReport {
    let engine = if paris {
        Engine::new(&lab.topo)
    } else {
        Engine::new(&lab.topo).without_paris()
    };
    let traces = lab.bootstrap_traces(&engine, None);
    let mut session = Cfs::builder(&engine, &lab.kb)
        .vps(&lab.vps)
        .ipasn(&lab.ipasn)
        .config(cfg)
        .build_session()
        .expect("ablation: CFS dependencies are always set");
    session.ingest(traces);
    session.into_report()
}

fn accuracy(lab: &Lab, report: &CfsReport) -> (usize, usize) {
    let mut correct = 0;
    let mut wrong = 0;
    for iface in report.interfaces.values() {
        let Some(inferred) = iface.facility else {
            continue;
        };
        let Some(ifid) = lab.topo.iface_by_ip(iface.ip) else {
            continue;
        };
        let Some(truth) = lab.topo.router_facility(lab.topo.ifaces[ifid].router) else {
            continue;
        };
        if inferred == truth {
            correct += 1;
        } else {
            wrong += 1;
        }
    }
    (correct, wrong)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn followups_matter() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("ablation-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        let rows = json["variants"].as_array().unwrap();
        assert_eq!(rows.len(), 6);
        let resolved = |label: &str| {
            rows.iter()
                .find(|r| r["variant"] == label)
                .and_then(|r| r["resolved"].as_u64())
                .unwrap()
        };
        // Follow-ups discover new interfaces (the *fraction* may move
        // either way as the denominator grows) but never lose absolute
        // resolutions; the no-followup variant issues zero extra traces.
        assert!(resolved("full") >= resolved("no-followup"));
        let no_followup = rows.iter().find(|r| r["variant"] == "no-followup").unwrap();
        assert_eq!(no_followup["followup_traces"].as_u64().unwrap(), 0);
    }
}
