//! disruption_eval — streaming disruption detection against withheld
//! ground truth (extension study).
//!
//! The Milolidakis-style sequel to the mapping paper: once interfaces
//! are pinned to facilities, a *time-evolving* measurement plane lets a
//! rolling-baseline detector notice when a facility goes dark. This
//! experiment generates a seeded disruption schedule (facility power
//! events, cross-connect cuts, IXP port flaps), wraps the probe engine
//! in [`ScheduledEngine`] so campaigns observe the faults, and streams
//! the epochs through a resident [`CfsSession`] exactly like `cfsd`
//! under `--detect`: bootstrap at epoch 0, one `TracerouteBatch` delta
//! per 2-hour epoch afterwards. The detector never sees the schedule —
//! only traces — and its `cfs-alerts/1` stream is scored against the
//! withheld events: an event counts as detected when an alert lands in
//! its active window (plus one epoch of grace) with a matching facility
//! or exchange locus; an alert counts as a true positive when some
//! scheduled event explains it. The tier-1 test below pins the
//! acceptance floor at the default intensity.

use std::net::Ipv4Addr;
use std::sync::Arc;

use cfs_core::{Cfs, CfsConfig, Delta};
use cfs_detect::{Alert, Detector, DetectorConfig, EpochObservation, LocusNames};
use cfs_obs::{Clock, Virtual};
use cfs_topology::{Disruption, EventSchedule, ScheduleConfig, ScheduleIntensity, EPOCH_MS};
use cfs_traceroute::{run_campaign, CampaignLimits, Engine, ProbeService, ScheduledEngine, Trace};
use cfs_types::Result;

use crate::{Lab, Output};

/// Fault intensities swept (events per schedule: 2 / 4 / 7).
pub const INTENSITIES: [ScheduleIntensity; 3] = [
    ScheduleIntensity::Light,
    ScheduleIntensity::Default,
    ScheduleIntensity::Heavy,
];

/// Acceptance floor on precision at the default intensity.
pub const PRECISION_FLOOR: f64 = 0.8;
/// Acceptance floor on recall at the default intensity.
pub const RECALL_FLOOR: f64 = 0.7;

/// One intensity's scored run.
pub struct EvalPoint {
    /// The intensity's stable label (`light` / `default` / `heavy`).
    pub label: &'static str,
    /// Scheduled disruption events (withheld ground truth).
    pub events: usize,
    /// Events with at least one locus-matching in-window alert.
    pub detected: usize,
    /// Alerts the detector emitted over the whole horizon.
    pub alerts: usize,
    /// Alerts explained by some scheduled event.
    pub true_alerts: usize,
    /// `true_alerts / alerts` (1.0 on a silent run).
    pub precision: f64,
    /// `detected / events`.
    pub recall: f64,
    /// Mean epochs from event start to its first matching alert.
    pub mean_latency: f64,
}

/// The follow-on campaign for epoch `k`: every vantage point probes the
/// standard targets at `k * 2h` — the same pure function of `(world, k)`
/// the daemon uses, so the eval exercises the delta path `cfsd` serves.
fn epoch_campaign(lab: &Lab, engine: &dyn ProbeService, k: u64) -> Vec<Trace> {
    let targets: Vec<Ipv4Addr> = lab
        .targets()
        .iter()
        .filter_map(|a| lab.topo.target_ip(*a).ok())
        .collect();
    let vp_ids: Vec<_> = lab.vps.ids().collect();
    run_campaign(
        engine,
        &lab.vps,
        &vp_ids,
        &targets,
        k * EPOCH_MS,
        &CampaignLimits::default(),
    )
}

/// Does this alert's locus implicate the scheduled event? Facility
/// alerts must name the event's facility; exchange alerts must name the
/// flapped exchange; an unlocalized alert (probe-loss surge, global
/// resolution drop) is compatible with *any* event.
fn locus_matches(alert: &Alert, event: &Disruption) -> bool {
    if let Some((fid, _)) = &alert.facility {
        return *fid == event.facility.raw();
    }
    if let Some((xid, _)) = &alert.ixp {
        return event.ixp.map(|x| x.raw()) == Some(*xid);
    }
    true
}

/// Is the alert inside the event's scoring window — the active epochs
/// plus one epoch of grace for baselines that react on the edge?
fn in_window(alert: &Alert, event: &Disruption) -> bool {
    alert.epoch >= event.start_epoch && alert.epoch <= event.end_epoch()
}

/// Scores one alert stream against the withheld schedule.
fn score(label: &'static str, events: &[Disruption], alerts: &[Alert]) -> EvalPoint {
    let mut detected = 0usize;
    let mut latencies = Vec::new();
    for event in events {
        let first = alerts
            .iter()
            .filter(|a| in_window(a, event) && locus_matches(a, event))
            .map(|a| a.epoch - event.start_epoch)
            .min();
        if let Some(lat) = first {
            detected += 1;
            latencies.push(lat as f64);
        }
    }
    let true_alerts = alerts
        .iter()
        .filter(|a| {
            events
                .iter()
                .any(|e| in_window(a, e) && locus_matches(a, e))
        })
        .count();
    let precision = if alerts.is_empty() {
        1.0
    } else {
        true_alerts as f64 / alerts.len() as f64
    };
    let recall = if events.is_empty() {
        1.0
    } else {
        detected as f64 / events.len() as f64
    };
    let mean_latency = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    EvalPoint {
        label,
        events: events.len(),
        detected,
        alerts: alerts.len(),
        true_alerts,
        precision,
        recall,
        mean_latency,
    }
}

/// Replays one scheduled horizon through a resident session with the
/// detector attached, and scores the alert stream it produced.
pub fn evaluate(lab: &Lab, intensity: ScheduleIntensity) -> Result<EvalPoint> {
    let config = ScheduleConfig::at_intensity(lab.topo.config.seed, intensity);
    let schedule = EventSchedule::generate(&lab.topo, config);
    let engine = ScheduledEngine::new(Engine::new(&lab.topo), schedule);
    let horizon = engine.schedule().config.horizon_epochs;

    let clock = Arc::new(Virtual::new());
    let names = LocusNames {
        facilities: lab
            .topo
            .facilities
            .iter()
            .map(|(id, f)| (id.raw(), f.name.clone()))
            .collect(),
        ixps: lab
            .topo
            .ixps
            .iter()
            .map(|(id, x)| (id.raw(), x.name.clone()))
            .collect(),
    };
    let mut detector = Detector::new(DetectorConfig::default(), names, clock as Arc<dyn Clock>);

    // The daemon's follow-up-less configuration: deltas take the
    // incremental path, mirroring `cfs serve --detect --disrupt`.
    let cfg = CfsConfig {
        followup_interfaces: 0,
        ..CfsConfig::default()
    };
    let mut session = Cfs::builder(&engine, &lab.kb)
        .vps(&lab.vps)
        .ipasn(&lab.ipasn)
        .config(cfg)
        .recorder(lab.recorder.clone())
        .build_session()
        .expect("lab: CFS dependencies are always set");

    // The detector observes only the *periodic* campaigns: the bootstrap
    // mixes targeted probes with archived iPlane/Ark sweeps, whose extra
    // coverage would seed baselines no follow-on campaign can sustain
    // (every facility the sweeps alone reach would read as a permanent
    // outage). Baselines must compare like with like.
    session.ingest(lab.bootstrap_traces(&engine, None));
    lab.feed_bgp_sessions(&mut session, None);
    session.converge();

    for k in 1..horizon {
        let traces = epoch_campaign(lab, &engine, k);
        let obs = EpochObservation::from_traces(k, &traces);
        session.apply_delta(Delta::TracerouteBatch(traces))?;
        detector.observe(&obs, session.report().expect("delta leaves a report"));
    }

    let (alerts, _) = detector.alerts().since(0);
    Ok(score(intensity.label(), &engine.schedule().events, &alerts))
}

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let mut points = Vec::new();
    for intensity in INTENSITIES {
        points.push(evaluate(lab, intensity)?);
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.events.to_string(),
                p.detected.to_string(),
                p.alerts.to_string(),
                p.true_alerts.to_string(),
                format!("{:.3}", p.precision),
                format!("{:.3}", p.recall),
                format!("{:.2}", p.mean_latency),
            ]
        })
        .collect();
    out.kv(
        "epochs per horizon",
        ScheduleConfig::at_intensity(0, ScheduleIntensity::Default).horizon_epochs,
    );
    out.kv("epoch length", "2h (7_200_000 ms)");
    out.line("");
    out.table(
        &[
            "intensity",
            "events",
            "detected",
            "alerts",
            "true alerts",
            "precision",
            "recall",
            "latency (epochs)",
        ],
        &rows,
    );
    out.line("");
    out.line(&format!(
        "expectation: precision >= {PRECISION_FLOOR} and recall >= {RECALL_FLOOR} at the default intensity; detection latency stays within an epoch or two of onset"
    ));

    let json_points: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "intensity": p.label,
                "events": p.events,
                "detected": p.detected,
                "alerts": p.alerts,
                "true_alerts": p.true_alerts,
                "precision": p.precision,
                "recall": p.recall,
                "mean_latency_epochs": p.mean_latency,
            })
        })
        .collect();
    Ok(serde_json::json!({
        "floors": { "precision": PRECISION_FLOOR, "recall": RECALL_FLOOR },
        "points": json_points,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn default_intensity_meets_acceptance_floors() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let p = evaluate(&lab, ScheduleIntensity::Default).expect("eval");
        assert!(
            p.alerts > 0,
            "detector stayed silent over a faulted horizon"
        );
        assert!(
            p.precision >= PRECISION_FLOOR,
            "precision {:.3} below floor {PRECISION_FLOOR}",
            p.precision
        );
        assert!(
            p.recall >= RECALL_FLOOR,
            "recall {:.3} below floor {RECALL_FLOOR}",
            p.recall
        );
    }

    #[test]
    fn quiet_warmup_emits_no_alerts() {
        // Within the warmup prefix no event is active; a detector fed
        // only those epochs must stay silent (no false alarms on a
        // healthy plane).
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let config = ScheduleConfig::at_intensity(lab.topo.config.seed, ScheduleIntensity::Default);
        let warmup = config.warmup_epochs;
        let schedule = EventSchedule::generate(&lab.topo, config);
        assert!(schedule.events.iter().all(|e| e.start_epoch >= warmup));
    }
}
