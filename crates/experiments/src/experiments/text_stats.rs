//! §5 in-text statistics: interfaces resolved, multi-role routers,
//! multi-IXP routers, city-level constraints, missing data.
//!
//! Paper values: 9,704 interfaces mapped after 100 iterations (70.65% of
//! 13,889 peering interfaces); ~9% of unresolved pinned to one city; 33%
//! of unresolved lacked facility data; 39% of observed routers implement
//! both public and private peering; 11.9% of public-peering routers span
//! 2-3 exchanges.

use cfs_core::CfsConfig;
use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let report = lab.run_cfs(None, None, CfsConfig::default());

    let total = report.total();
    let resolved = report.resolved();
    let unresolved = total - resolved;
    let city_constrained = report.city_constrained();
    let missing = report.missing_data();
    let stats = report.router_stats;

    let pct = |num: usize, den: usize| {
        if den == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * num as f64 / den as f64)
        }
    };

    out.kv("peering interfaces tracked", total);
    out.kv(
        "resolved to a single facility",
        format!("{resolved} ({})", pct(resolved, total)),
    );
    out.kv(
        "unresolved but pinned to one city",
        format!(
            "{city_constrained} ({} of unresolved)",
            pct(city_constrained, unresolved.max(1))
        ),
    );
    out.kv(
        "unresolved for lack of facility data",
        format!(
            "{missing} ({} of unresolved)",
            pct(missing, unresolved.max(1))
        ),
    );
    out.kv("observed routers (alias groups)", stats.routers);
    out.kv(
        "multi-role routers (public + private)",
        format!(
            "{} ({})",
            stats.multi_role,
            pct(stats.multi_role, stats.routers)
        ),
    );
    out.kv(
        "public routers spanning >= 2 IXPs",
        format!(
            "{} ({} of public)",
            stats.multi_ixp,
            pct(stats.multi_ixp, stats.routers_public)
        ),
    );
    out.kv("follow-up traceroutes issued", report.traces_issued);
    out.line("");
    out.line("paper: 9,704 resolved (70.65%); ~9% of unresolved city-pinned; 33% missing data; 39% multi-role; 11.9% multi-IXP");

    Ok(serde_json::json!({
        "tracked": total,
        "resolved": resolved,
        "resolved_fraction": report.resolved_fraction(),
        "city_constrained": city_constrained,
        "missing_data": missing,
        "routers": stats.routers,
        "multi_role": stats.multi_role,
        "routers_public": stats.routers_public,
        "multi_ixp": stats.multi_ixp,
        "traces_issued": report.traces_issued,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn stats_are_in_plausible_bands() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("text-stats-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let frac = json["resolved_fraction"].as_f64().unwrap();
        assert!(frac > 0.3 && frac < 1.0, "resolved fraction {frac}");
        assert!(json["multi_role"].as_u64().unwrap() > 0);
        assert!(json["routers"].as_u64().unwrap() > 20);
    }
}
