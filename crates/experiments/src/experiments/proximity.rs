//! §4.4 — evaluation of the switch-proximity heuristic against
//! AMS-IX-style ground truth.
//!
//! The paper's setup: AMS-IX publishes "both the interfaces of the
//! connected members and the corresponding facilities", so for a member
//! connected at *two* facilities the heuristic must pick which of the two
//! known buildings answers a given peering — and gets it right 77% of the
//! time, failing only across facilities that hang off the same backhaul
//! switch (where it abstains or the buildings are effectively one
//! cluster).
//!
//! We replay that exactly on the detailed-site exchanges (the ones whose
//! member directories include port facilities): traceroute campaigns
//! between members, a proximity ranking trained on half the member ports,
//! and held-out two-facility members as the test set.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_core::{extract_observations, ProximityModel, Resolver};
use cfs_types::{Asn, FacilityId, IxpId, Result};

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    // Port-facility truth as published by the detailed sites.
    let mut port_facility: BTreeMap<Ipv4Addr, FacilityId> = BTreeMap::new();
    let mut ports_of: BTreeMap<(IxpId, Asn), Vec<Ipv4Addr>> = BTreeMap::new();
    let mut detailed_ixps: Vec<IxpId> = Vec::new();
    for site in lab.sources.ixp_sites.values().filter(|s| s.detailed) {
        detailed_ixps.push(site.ixp);
        for m in &site.members {
            if let Some(fac) = m.facility {
                port_facility.insert(m.fabric_ip, fac);
                ports_of
                    .entry((site.ixp, m.asn))
                    .or_default()
                    .push(m.fabric_ip);
            }
        }
    }

    // Campaign across the detailed exchanges' members (the 50×50 idea).
    let member_targets: Vec<Asn> = detailed_ixps
        .iter()
        .flat_map(|id| lab.topo.ixps[*id].members.iter().map(|m| m.asn))
        .take(100)
        .collect();
    let engine = cfs_traceroute::Engine::new(&lab.topo);
    let mut traces = lab.bootstrap_traces(&engine, None);
    let ips: Vec<Ipv4Addr> = member_targets
        .iter()
        .filter_map(|a| lab.topo.target_ip(*a).ok())
        .collect();
    let all_vps: Vec<_> = lab.vps.ids().collect();
    traces.extend(cfs_traceroute::run_campaign(
        &engine,
        &lab.vps,
        &all_vps,
        &ips,
        60_000,
        &cfs_traceroute::CampaignLimits::default(),
    ));

    // Public-peering observations across the detailed exchanges, with the
    // raw IP-to-ASN view (alias machinery is irrelevant here: both the
    // near and far addresses of interest are directory-listed).
    let corrected: BTreeMap<Ipv4Addr, Asn> = {
        let mut map = BTreeMap::new();
        for t in &traces {
            for hop in &t.hops {
                if let Some(ip) = hop.ip {
                    if let Some(asn) = lab.ipasn.origin(ip) {
                        map.insert(ip, asn);
                    }
                }
            }
        }
        map
    };
    let resolver = Resolver::new(&lab.kb, &corrected);
    // (near port facility, far fabric ip) pairs: the near end of a fabric
    // crossing is the previous member's port; its facility comes from the
    // directory too (near ends here are members of the same exchange).
    let mut pairs: Vec<(FacilityId, Ipv4Addr)> = Vec::new();
    let mut seen: BTreeSet<(FacilityId, Ipv4Addr)> = BTreeSet::new();
    for t in &traces {
        for obs in extract_observations(t, &resolver) {
            let Some(far_ip) = obs.far_ip else { continue };
            let Some(far_fac) = port_facility.get(&far_ip) else {
                continue;
            };
            let _ = far_fac;
            // Near side: the observing member's port facility — recover
            // it via the near AS's port at this exchange (single-port
            // near members only, like the paper's 50 sources).
            let Some(ixp) = obs.class.ixp() else { continue };
            let near_ports = ports_of.get(&(ixp, obs.near_asn));
            let Some(near_ports) = near_ports else {
                continue;
            };
            if near_ports.len() != 1 {
                continue;
            }
            let near_fac = port_facility[&near_ports[0]];
            if seen.insert((near_fac, far_ip)) {
                pairs.push((near_fac, far_ip));
            }
        }
    }

    // Split far members into train/test by ASN parity (deterministic).
    let is_test = |asn: Asn| asn.raw().is_multiple_of(2);
    let mut model = ProximityModel::new();
    for (near_fac, far_ip) in &pairs {
        let far_fac = port_facility[far_ip];
        let far_asn = lab
            .kb
            .ixp_of_ip(*far_ip)
            .and_then(|ixp| lab.kb.member_of_fabric_ip(ixp, *far_ip))
            .unwrap_or(Asn(0));
        if !is_test(far_asn) {
            model.observe(*near_fac, far_fac);
        }
    }

    // Test: held-out members connected at exactly two facilities.
    let mut checked = 0usize;
    let mut exact = 0usize;
    let mut abstained = 0usize;
    for (near_fac, far_ip) in &pairs {
        let Some(ixp) = lab.kb.ixp_of_ip(*far_ip) else {
            continue;
        };
        let Some(far_asn) = lab.kb.member_of_fabric_ip(ixp, *far_ip) else {
            continue;
        };
        if !is_test(far_asn) {
            continue;
        }
        let member_ports = &ports_of[&(ixp, far_asn)];
        if member_ports.len() != 2 {
            continue;
        }
        let candidates: cfs_types::FacilitySet =
            member_ports.iter().map(|p| port_facility[p]).collect();
        if candidates.len() != 2 {
            continue; // both ports in one building — nothing to decide
        }
        match model.infer(*near_fac, &candidates) {
            Some(predicted) => {
                checked += 1;
                exact += usize::from(predicted == port_facility[far_ip]);
            }
            None => abstained += 1,
        }
    }

    let accuracy = if checked > 0 {
        exact as f64 / checked as f64
    } else {
        0.0
    };
    out.kv("detailed exchanges", detailed_ixps.len());
    out.kv(
        "training pairs (near facility → far port)",
        model.observations(),
    );
    out.kv("two-facility test decisions", checked);
    out.kv(
        "exact facility",
        format!("{exact} ({:.1}%)", accuracy * 100.0),
    );
    out.kv("abstentions (same backhaul/core ties)", abstained);
    out.line("");
    out.line("paper: 77% exact facility on the 50x50 AMS-IX campaign; failures/ties sit behind shared backhaul switches");

    Ok(serde_json::json!({
        "detailed_ixps": detailed_ixps.len(),
        "training_observations": model.observations(),
        "checked": checked,
        "exact": exact,
        "accuracy": accuracy,
        "abstained": abstained,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn heuristic_fires_and_is_mostly_right() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("proximity-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let checked = json["checked"].as_u64().unwrap();
        // With few decisions the estimate is noise; assert only with
        // statistical mass (the paper's campaign had 50×50 pairs).
        if checked >= 15 {
            let accuracy = json["accuracy"].as_f64().unwrap();
            assert!(accuracy > 0.55, "proximity accuracy {accuracy}");
        }
    }
}
