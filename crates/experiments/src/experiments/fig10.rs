//! Figure 10 — "Number of peering interfaces inferred and distribution by
//! peering type for a number of networks in our study around the globe
//! and per region": the ten target networks, total and for Europe / North
//! America / Asia.
//!
//! Paper shape: CDNs establish most of their peerings over public IXP
//! fabrics; Tier-1 transit providers skew heavily toward private
//! cross-connects; Europe shows the most interfaces (vantage-point
//! density), then North America, then Asia.

use std::collections::BTreeMap;

use cfs_core::CfsConfig;
use cfs_types::{PeeringKind, Region, Result};

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let report = lab.run_cfs(None, None, CfsConfig::default());

    let regions = [Region::Europe, Region::NorthAmerica, Region::Asia];
    let mut json_rows = Vec::new();
    let mut rows = Vec::new();

    for target in lab.targets() {
        // Distinct interfaces owned by the target (near or far side of a
        // crossing), by kind, total and per region of the inferred
        // facility.
        let mut total: BTreeMap<PeeringKind, usize> = BTreeMap::new();
        let mut by_region: BTreeMap<Region, BTreeMap<PeeringKind, usize>> = BTreeMap::new();
        for (ip, kind) in report.interfaces_of_owner(target) {
            *total.entry(kind).or_default() += 1;
            let region = report
                .interfaces
                .get(&ip)
                .and_then(|i| i.facility)
                .and_then(|f| lab.kb.region_of_facility(f));
            if let Some(region) = region {
                *by_region
                    .entry(region)
                    .or_default()
                    .entry(kind)
                    .or_default() += 1;
            }
        }

        let class = lab
            .topo
            .ases
            .get(&target)
            .map(|n| n.class.label())
            .unwrap_or("?");
        let fmt = |m: &BTreeMap<PeeringKind, usize>| {
            PeeringKind::ALL
                .iter()
                .map(|k| m.get(k).copied().unwrap_or(0).to_string())
                .collect::<Vec<_>>()
                .join("/")
        };
        let mut row = vec![
            target.to_string(),
            class.to_string(),
            total.values().sum::<usize>().to_string(),
            fmt(&total),
        ];
        for r in regions {
            row.push(fmt(by_region.get(&r).unwrap_or(&BTreeMap::new())));
        }
        rows.push(row);

        json_rows.push(serde_json::json!({
            "asn": target.raw(),
            "class": class,
            "total": total.iter().map(|(k, n)| (k.label(), n)).collect::<BTreeMap<_, _>>(),
            "by_region": regions
                .iter()
                .map(|r| {
                    let m = by_region.get(r).cloned().unwrap_or_default();
                    (r.label(), m.iter().map(|(k, n)| (k.label(), *n)).collect::<BTreeMap<_, _>>())
                })
                .collect::<BTreeMap<_, _>>(),
        }));
    }

    out.line("counts are public-local/public-remote/private-xconnect/tethering/private-remote");
    out.line("");
    out.table(
        &[
            "target",
            "class",
            "interfaces",
            "total",
            "europe",
            "north-america",
            "asia",
        ],
        &rows,
    );
    out.line("");
    out.line("paper shape: CDNs mostly public peering; Tier-1s mostly private; Europe > NA > Asia visibility");

    Ok(serde_json::json!({ "targets": json_rows }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use cfs_types::AsClass;

    #[test]
    fn cdns_skew_public_tier1s_skew_private() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("fig10-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let rows = json["targets"].as_array().unwrap();
        assert_eq!(rows.len(), 10, "ten targets expected");

        let mut cdn_public = 0i64;
        let mut cdn_private = 0i64;
        let mut t1_public = 0i64;
        let mut t1_private = 0i64;
        for row in rows {
            let total = row["total"].as_object().unwrap();
            let get = |k: &str| total.get(k).and_then(|v| v.as_i64()).unwrap_or(0);
            let public = get("public-local") + get("public-remote");
            let private =
                get("private-xconnect") + get("private-tethering") + get("private-remote");
            let asn = cfs_types::Asn(row["asn"].as_u64().unwrap() as u32);
            match lab.topo.ases[&asn].class {
                AsClass::Cdn => {
                    cdn_public += public;
                    cdn_private += private;
                }
                AsClass::Tier1 => {
                    t1_public += public;
                    t1_private += private;
                }
                _ => {}
            }
        }
        assert!(cdn_public + cdn_private > 0, "no CDN interfaces observed");
        assert!(t1_public + t1_private > 0, "no Tier-1 interfaces observed");
        // The qualitative contrast of Figure 10.
        let cdn_frac = cdn_public as f64 / (cdn_public + cdn_private) as f64;
        let t1_frac = t1_public as f64 / (t1_public + t1_private) as f64;
        assert!(
            cdn_frac > t1_frac,
            "CDNs should peer publicly more than Tier-1s ({cdn_frac:.2} vs {t1_frac:.2})"
        );
    }
}
