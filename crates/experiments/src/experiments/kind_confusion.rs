//! Extension: confusion matrix of interconnection-*type* classification.
//!
//! Figure 9 validates CFS's verdicts per inferred type; this experiment
//! asks the complementary question — when ground truth says a link is a
//! cross-connect / tethering VLAN / remote circuit / public peering, what
//! does CFS call it? Misclassification structure matters: the paper's
//! Step 2 cannot distinguish tethering from remote private peering
//! without facility evidence, so those two should confuse *with each
//! other*, not with cross-connects.

use std::collections::BTreeMap;

use cfs_core::CfsConfig;
use cfs_types::{PeeringKind, Result};

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let report = lab.run_cfs(None, None, CfsConfig::default());

    // Ground truth per inferred link: private links are identified by the
    // far (or near) point-to-point interface; public links by the fabric
    // address's membership (local vs remote).
    let mut matrix: BTreeMap<(PeeringKind, PeeringKind), usize> = BTreeMap::new();
    let mut scored = 0usize;

    for link in &report.links {
        let truth = match link.kind.is_public() {
            true => {
                // Fabric address → membership → local or remote.
                let Some(far_ip) = link.far_ip else { continue };
                let Some(ifid) = lab.topo.iface_by_ip(far_ip) else {
                    continue;
                };
                let cfs_topology::IfaceKind::IxpFabric(ixp) = lab.topo.ifaces[ifid].kind else {
                    continue;
                };
                let Some(m) = lab.topo.ixps[ixp]
                    .members
                    .iter()
                    .find(|m| m.fabric_ip == far_ip)
                else {
                    continue;
                };
                if m.remote_via.is_some() {
                    PeeringKind::PublicRemote
                } else {
                    PeeringKind::PublicLocal
                }
            }
            false => {
                // Point-to-point interface → link record → kind.
                let Some(far_ip) = link.far_ip else { continue };
                let Some(ifid) = lab.topo.iface_by_ip(far_ip) else {
                    continue;
                };
                let cfs_topology::IfaceKind::PrivatePtp(lid) = lab.topo.ifaces[ifid].kind else {
                    continue;
                };
                lab.topo.links[lid].kind
            }
        };
        // Compare like with like: the truth above describes the *far*
        // port, so public verdicts must come from the far interface's own
        // remote flag (the near side being local says nothing about the
        // far port).
        let inferred = if link.kind.is_public() {
            let far_remote = link
                .far_ip
                .and_then(|ip| report.interfaces.get(&ip))
                .is_some_and(|i| i.remote);
            if far_remote {
                PeeringKind::PublicRemote
            } else {
                PeeringKind::PublicLocal
            }
        } else {
            link.kind
        };
        *matrix.entry((truth, inferred)).or_default() += 1;
        scored += 1;
    }

    // Render.
    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    let mut diagonal = 0usize;
    for truth in PeeringKind::ALL {
        let mut row = vec![truth.label().to_string()];
        for inferred in PeeringKind::ALL {
            let n = matrix.get(&(truth, inferred)).copied().unwrap_or(0);
            if truth == inferred {
                diagonal += n;
            }
            row.push(n.to_string());
            if n > 0 {
                json_cells.push(serde_json::json!({
                    "truth": truth.label(),
                    "inferred": inferred.label(),
                    "count": n,
                }));
            }
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("truth \\ inferred")
        .chain(PeeringKind::ALL.iter().map(|k| k.label()))
        .collect();
    out.table(&headers, &rows);
    let accuracy = if scored > 0 {
        diagonal as f64 / scored as f64
    } else {
        0.0
    };
    out.line("");
    out.kv("links scored", scored);
    out.kv(
        "type accuracy (diagonal)",
        format!("{:.1}%", accuracy * 100.0),
    );
    out.line("");
    out.line("expectation: tethering and private-remote confuse with each other (Step 2 cannot separate them without facility evidence), not with cross-connects");

    Ok(serde_json::json!({
        "scored": scored,
        "accuracy": accuracy,
        "cells": json_cells,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn type_classification_is_strong_on_the_diagonal() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("kind-confusion-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        assert!(json["scored"].as_u64().unwrap() > 100);
        let acc = json["accuracy"].as_f64().unwrap();
        assert!(acc > 0.7, "type accuracy {acc}");
    }

    #[test]
    fn tethering_confuses_with_remote_not_xconnect() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("kind-confusion-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let count = |truth: &str, inferred: &str| {
            json["cells"]
                .as_array()
                .unwrap()
                .iter()
                .filter(|c| c["truth"] == truth && c["inferred"] == inferred)
                .filter_map(|c| c["count"].as_u64())
                .sum::<u64>()
        };
        // Public links never get called private or vice versa (Step 1 is
        // address-based and unambiguous).
        for public in ["public-local", "public-remote"] {
            for private in ["private-xconnect", "private-tethering", "private-remote"] {
                assert_eq!(count(public, private), 0, "{public} inferred {private}");
                assert_eq!(count(private, public), 0, "{private} inferred {public}");
            }
        }
    }
}
