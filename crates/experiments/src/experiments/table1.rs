//! Table 1 — "Characteristics of the four traceroute measurement
//! platforms we utilized": vantage points, distinct ASNs, countries.

use std::collections::BTreeSet;

use cfs_topology::RouterLocation;
use cfs_traceroute::Platform;
use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let country_of = |router: cfs_types::RouterId| -> String {
        let city = match lab.topo.routers[router].location {
            RouterLocation::Facility(f) => lab.topo.facilities[f].city,
            RouterLocation::PopCity(c) => c,
        };
        lab.topo.world.city(city).country.clone()
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut all_asns: BTreeSet<cfs_types::Asn> = BTreeSet::new();
    let mut all_countries: BTreeSet<String> = BTreeSet::new();
    let mut total_vps = 0usize;

    for platform in Platform::ALL {
        let ids = lab.vps.of_platform(platform);
        let asns: BTreeSet<_> = ids.iter().map(|id| lab.vps.vps[*id].asn).collect();
        let countries: BTreeSet<String> = ids
            .iter()
            .map(|id| country_of(lab.vps.vps[*id].router))
            .collect();
        total_vps += ids.len();
        all_asns.extend(asns.iter().copied());
        all_countries.extend(countries.iter().cloned());
        rows.push(vec![
            platform.label().to_string(),
            ids.len().to_string(),
            asns.len().to_string(),
            countries.len().to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "platform": platform.label(),
            "vantage_points": ids.len(),
            "asns": asns.len(),
            "countries": countries.len(),
        }));
    }
    rows.push(vec![
        "total-unique".into(),
        total_vps.to_string(),
        all_asns.len().to_string(),
        all_countries.len().to_string(),
    ]);

    out.table(&["platform", "vantage points", "asns", "countries"], &rows);
    out.line("");
    out.line("paper: 6385/1877/147/107 VPs; 2410/438/117/71 ASNs; total 8517 VPs, 2638 ASNs, 170 countries");

    Ok(serde_json::json!({
        "platforms": json_rows,
        "total": {
            "vantage_points": total_vps,
            "asns": all_asns.len(),
            "countries": all_countries.len(),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn produces_four_platform_rows() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("table1-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        assert_eq!(json["platforms"].as_array().unwrap().len(), 4);
        let total = json["total"]["vantage_points"].as_u64().unwrap();
        assert!(total > 0);
    }

    #[test]
    fn atlas_is_the_largest_platform() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("table1-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        let rows = json["platforms"].as_array().unwrap();
        let count = |label: &str| {
            rows.iter()
                .find(|r| r["platform"] == label)
                .and_then(|r| r["vantage_points"].as_u64())
                .unwrap()
        };
        assert!(count("ripe-atlas") > count("looking-glass"));
        assert!(count("looking-glass") > count("ark"));
    }
}
