//! Figure 7 — "Fraction of resolved interfaces versus number of CFS
//! iterations when we use all, RIPE Atlas, or LG traceroute platforms."
//!
//! Paper shape: ~40% of interfaces resolve within 10 iterations,
//! diminishing returns after 40, 70.65% at the cap of 100; Atlas resolves
//! about twice as many interfaces per iteration as looking glasses, but
//! 46% of LG-visible interfaces (transit backbones) never appear in Atlas
//! traces.

use cfs_core::CfsConfig;
use cfs_traceroute::Platform;
use cfs_types::Result;

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let configs: [(&str, Option<&[Platform]>); 3] = [
        ("all", None),
        ("ripe-atlas", Some(&[Platform::RipeAtlas])),
        ("looking-glass", Some(&[Platform::LookingGlass])),
    ];

    let mut curves = Vec::new();
    let mut interface_sets: Vec<std::collections::BTreeSet<std::net::Ipv4Addr>> = Vec::new();
    for (label, platforms) in configs {
        let report = lab.run_cfs(platforms, None, CfsConfig::default());
        let curve = report.resolution_curve();
        interface_sets.push(report.interfaces.keys().copied().collect());
        curves.push((label, curve, report.total(), report.resolved()));
    }

    // Cross-platform visibility: LG-only interfaces unseen by Atlas.
    let atlas = &interface_sets[1];
    let lg = &interface_sets[2];
    let lg_only = lg.difference(atlas).count();
    let lg_unseen_fraction = if lg.is_empty() {
        0.0
    } else {
        lg_only as f64 / lg.len() as f64
    };

    let sample_points = [1usize, 5, 10, 20, 40, 60, 80, 100];
    let mut rows = Vec::new();
    for &it in &sample_points {
        let mut row = vec![it.to_string()];
        for (_, curve, _, _) in &curves {
            let v = curve.get(it.saturating_sub(1)).or_else(|| curve.last());
            row.push(v.map(|f| format!("{:.3}", f)).unwrap_or_else(|| "-".into()));
        }
        rows.push(row);
    }
    out.table(&["iteration", "all", "ripe-atlas", "looking-glass"], &rows);
    out.line("");
    for (label, _curve, total, resolved) in &curves {
        out.kv(
            &format!("{label}: final resolved / tracked"),
            format!(
                "{resolved} / {total} ({:.1}%)",
                100.0 * *resolved as f64 / (*total).max(1) as f64
            ),
        );
    }
    out.kv(
        "LG-visible interfaces unseen by Atlas",
        format!("{:.1}%", lg_unseen_fraction * 100.0),
    );
    out.line("");
    out.line("paper: ~40% by iteration 10, 70.65% at 100; Atlas ≈ 2x LG per iteration; 46% of LG interfaces invisible to Atlas");

    Ok(serde_json::json!({
        "curves": curves
            .iter()
            .map(|(label, curve, total, resolved)| serde_json::json!({
                "platforms": label,
                "curve": curve,
                "tracked": total,
                "resolved": resolved,
            }))
            .collect::<Vec<_>>(),
        "lg_unseen_by_atlas_fraction": lg_unseen_fraction,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn curves_are_monotonic_and_all_dominates() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("fig7-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        let curves = json["curves"].as_array().unwrap();
        assert_eq!(curves.len(), 3);
        for c in curves {
            let vals: Vec<f64> = c["curve"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            assert!(!vals.is_empty());
            for w in vals.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
        }
        // The all-platform run tracks at least as many interfaces as
        // either restricted run.
        let tracked = |i: usize| curves[i]["tracked"].as_u64().unwrap();
        assert!(tracked(0) >= tracked(1));
        assert!(tracked(0) >= tracked(2));
    }
}
