//! Figure 3 — "Metropolitan areas with at least 10 interconnection
//! facilities": the heavy-tailed metro distribution, led by the
//! London/New York-class hubs.

use std::collections::BTreeMap;

use cfs_types::{MetroId, Result};

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let mut per_metro: BTreeMap<MetroId, usize> = BTreeMap::new();
    for f in lab.topo.facilities.values() {
        *per_metro.entry(f.metro).or_default() += 1;
    }
    let mut ranked: Vec<(MetroId, usize)> = per_metro.into_iter().collect();
    ranked.sort_by_key(|(m, n)| (std::cmp::Reverse(*n), *m));

    let threshold = 10usize;
    let qualifying: Vec<(String, usize)> = ranked
        .iter()
        .filter(|(_, n)| *n >= threshold)
        .map(|(m, n)| (lab.topo.world.metro(*m).name.clone(), *n))
        .collect();

    out.kv("metros with >= 10 facilities", qualifying.len());
    out.kv(
        "largest metro facility count",
        ranked.first().map(|(_, n)| *n).unwrap_or(0),
    );
    out.kv(
        "facility:ixp ratio",
        format!(
            "{:.1}",
            lab.topo.facilities.len() as f64 / lab.topo.ixps.len().max(1) as f64
        ),
    );
    out.line("");
    out.line("paper: 33 metros >= 10 facilities; London/NYC lead with 40+; ~3 facilities per IXP");
    out.line("");
    let rows: Vec<Vec<String>> = qualifying
        .iter()
        .map(|(name, n)| vec![name.clone(), n.to_string()])
        .collect();
    out.table(&["metro", "facilities"], &rows);

    Ok(serde_json::json!({
        "threshold": threshold,
        "qualifying_metros": qualifying.len(),
        "metros": qualifying
            .iter()
            .map(|(name, n)| serde_json::json!({"metro": name, "facilities": n}))
            .collect::<Vec<_>>(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn hubs_emerge_at_paper_scale_shape() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("fig3-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let metros = json["metros"].as_array().unwrap();
        assert!(!metros.is_empty(), "no metro reaches 10 facilities");
        // Counts are sorted descending.
        let counts: Vec<u64> = metros
            .iter()
            .map(|m| m["facilities"].as_u64().unwrap())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
