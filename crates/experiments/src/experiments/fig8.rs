//! Figure 8 — "Average fraction of unresolved interfaces, and interfaces
//! with erroneous facility inference by iteratively removing 1400
//! facilities" (20 repetitions in the paper).
//!
//! Removing facility knowledge both *unresolves* interfaces (lost
//! constraints) and *changes* inferences (the search converges to a
//! different facility by cross-referencing incomplete data); the changed
//! curve is non-monotonic because heavy damage prevents convergence
//! altogether.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_core::CfsConfig;
use cfs_types::{FacilityId, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use crate::{Lab, Output, Scale};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    // Baseline inference with the full knowledge base.
    let baseline = lab.run_cfs(None, None, fast_cfg());
    let baseline_map: BTreeMap<Ipv4Addr, FacilityId> = baseline
        .interfaces
        .values()
        .filter_map(|i| i.facility.map(|f| (i.ip, f)))
        .collect();
    let baseline_resolved = baseline_map.len().max(1);

    let total_facilities = lab.topo.facilities.len();
    // The paper removes up to 1,400 of 1,694 facilities (~83%).
    let max_removed = (total_facilities as f64 * 0.83) as usize;
    let steps = 7usize;
    let trials = match lab.scale {
        Scale::Paper => 10,
        Scale::Default => 5,
        Scale::Tiny => 2,
    };

    // Each (step, trial) degradation run is independent and deterministic
    // in its derived seed; fan them out over scoped threads.
    let jobs: Vec<(usize, usize)> = (1..=steps)
        .flat_map(|s| (0..trials).map(move |t| (s, t)))
        .collect();
    let run_one = |step: usize, trial: usize| -> (usize, f64, f64) {
        let removed_count = max_removed * step / steps;
        let mut rng =
            ChaCha20Rng::seed_from_u64(lab.topo.config.seed ^ (step as u64) << 8 ^ trial as u64);
        let mut pool: Vec<FacilityId> = lab.topo.facilities.ids().collect();
        pool.shuffle(&mut rng);
        let removed: BTreeSet<FacilityId> = pool.into_iter().take(removed_count).collect();
        let mut kb = lab.kb.clone();
        kb.remove_facilities(&removed);

        let report = lab.run_cfs(None, Some(&kb), fast_cfg());
        let mut lost = 0usize;
        let mut changed = 0usize;
        for (ip, fac) in &baseline_map {
            match report.interfaces.get(ip).and_then(|i| i.facility) {
                None => lost += 1,
                Some(f) if f != *fac => changed += 1,
                Some(_) => {}
            }
        }
        (
            step,
            lost as f64 / baseline_resolved as f64,
            changed as f64 / baseline_resolved as f64,
        )
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let results: Vec<(usize, f64, f64)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in jobs.chunks(jobs.len().div_ceil(workers)) {
            let chunk: Vec<(usize, usize)> = chunk.to_vec();
            let run_one = &run_one;
            handles.push(scope.spawn(move |_| {
                chunk
                    .iter()
                    .map(|(s, t)| run_one(*s, *t))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fig8 worker"))
            .collect()
    })
    .expect("fig8 thread scope");

    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    for step in 1..=steps {
        let removed_count = max_removed * step / steps;
        let step_results: Vec<&(usize, f64, f64)> =
            results.iter().filter(|(s, _, _)| *s == step).collect();
        let lost = step_results.iter().map(|(_, l, _)| l).sum::<f64>() / step_results.len() as f64;
        let changed =
            step_results.iter().map(|(_, _, c)| c).sum::<f64>() / step_results.len() as f64;
        rows.push(vec![
            removed_count.to_string(),
            format!(
                "{:.1}%",
                100.0 * removed_count as f64 / total_facilities as f64
            ),
            format!("{:.3}", lost),
            format!("{:.3}", changed),
        ]);
        json_points.push(serde_json::json!({
            "removed": removed_count,
            "removed_fraction": removed_count as f64 / total_facilities as f64,
            "unresolved_fraction": lost,
            "changed_fraction": changed,
        }));
    }

    out.kv("baseline resolved interfaces", baseline_resolved);
    out.kv("trials per point", trials);
    out.line("");
    out.table(
        &[
            "facilities removed",
            "of dataset",
            "unresolved fraction",
            "changed fraction",
        ],
        &rows,
    );
    out.line("");
    out.line("paper: 50% removal -> ~30% unresolved; 80% -> ~60%; changed peaks ~20% near 30% removal, non-monotonic");

    Ok(serde_json::json!({
        "baseline_resolved": baseline_resolved,
        "trials": trials,
        "points": json_points,
    }))
}

/// A lighter CFS configuration: Figure 8 needs dozens of runs, and the
/// degradation signal saturates well before 100 iterations.
fn fast_cfg() -> CfsConfig {
    CfsConfig {
        max_iterations: 30,
        followup_interfaces: 30,
        ..CfsConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damage_loses_resolutions_monotonically_overall() {
        let lab = Lab::provision(Scale::Tiny, None).unwrap();
        let mut out = Output::new("fig8-test", "tiny").quiet();
        let json = run(&lab, &mut out).unwrap();
        let points = json["points"].as_array().unwrap();
        assert!(points.len() >= 3);
        let first = points.first().unwrap()["unresolved_fraction"]
            .as_f64()
            .unwrap();
        let last = points.last().unwrap()["unresolved_fraction"]
            .as_f64()
            .unwrap();
        assert!(
            last > first,
            "removing most facilities should unresolve more interfaces ({first} -> {last})"
        );
        assert!(last > 0.2, "83% removal lost only {last}");
    }
}
