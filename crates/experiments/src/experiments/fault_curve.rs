//! fault_curve — accuracy versus probe-fault rate (extension study).
//!
//! The paper's pipeline assumes a clean measurement plane; real
//! campaigns lose probes to ICMP rate limiting, vantage-point outages,
//! and plain packet loss. This experiment sweeps the chaos layer's
//! probe-loss dial and plots how the inference degrades: resolved
//! coverage should fall *gradually* (retries and metro widening absorb
//! the early losses), and the facilities that do resolve should stay
//! overwhelmingly consistent with the clean run. A cliff to zero at
//! single-digit loss rates would mean the resilience layer is not doing
//! its job; the test below pins that property.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_chaos::{FaultPlan, FaultProfile};
use cfs_core::{CfsConfig, CfsReport};
use cfs_types::{FacilityId, Result};

use crate::{Lab, Output};

/// Probe-loss rates swept, in per-mille (0 = clean baseline, 100 = 10%).
pub const LOSS_PM: [u32; 5] = [0, 20, 50, 100, 150];

/// Knowledge-plane fault profiles swept alongside the probe-loss curve:
/// uniform staleness versus the torn mid-refresh snapshot.
pub const KB_PROFILES: [&str; 2] = ["stale-kb", "mid-kb-refresh"];

/// KB conflict-contamination rates swept (per-mille of networks whose
/// records self-contradict; 200 = the ISSUE-9 one-in-five scenario).
pub const CONFLICT_PM: [u32; 4] = [0, 50, 100, 200];

/// One point of the degradation curve.
struct Point {
    loss_pm: u32,
    resolved: usize,
    retained: f64,
    consistent: f64,
    retries: u64,
    widened: u64,
}

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let clean = lab.run_cfs(None, None, fast_cfg());
    let clean_map = facility_map(&clean);
    let clean_resolved = clean_map.len().max(1);

    let mut points = Vec::new();
    for pm in LOSS_PM {
        let report = if pm == 0 {
            clean.clone()
        } else {
            let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::probe_loss(pm));
            lab.run_cfs_chaos(plan, fast_cfg())
        };
        let map = facility_map(&report);
        let consistent = map
            .iter()
            .filter(|(ip, fac)| clean_map.get(*ip) == Some(fac))
            .count();
        points.push(Point {
            loss_pm: pm,
            resolved: map.len(),
            retained: map.len() as f64 / clean_resolved as f64,
            consistent: consistent as f64 / map.len().max(1) as f64,
            retries: report.data_quality.probes_retried,
            widened: report.data_quality.widened_interfaces,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}%", p.loss_pm as f64 / 10.0),
                p.resolved.to_string(),
                format!("{:.3}", p.retained),
                format!("{:.3}", p.consistent),
                p.retries.to_string(),
                p.widened.to_string(),
            ]
        })
        .collect();
    out.kv("clean resolved interfaces", clean_resolved);
    out.line("");
    out.table(
        &[
            "probe loss",
            "resolved",
            "retained vs clean",
            "consistent w/ clean",
            "retries",
            "widened",
        ],
        &rows,
    );
    out.line("");
    out.line("expectation: retained coverage decays gradually (no cliff through 10% loss); resolved facilities stay consistent with the clean run");

    // Knowledge-plane scenarios: the same metrics under KB rot, with and
    // without a mid-campaign refresh tearing the snapshot.
    let mut kb_points = Vec::new();
    for name in KB_PROFILES {
        let profile = FaultProfile::parse(name).expect("known kb profile");
        let plan = FaultPlan::new(lab.topo.config.seed, profile);
        let report = lab.run_cfs_chaos(plan, fast_cfg());
        let map = facility_map(&report);
        let consistent = map
            .iter()
            .filter(|(ip, fac)| clean_map.get(*ip) == Some(fac))
            .count();
        kb_points.push((
            name,
            Point {
                loss_pm: 0,
                resolved: map.len(),
                retained: map.len() as f64 / clean_resolved as f64,
                consistent: consistent as f64 / map.len().max(1) as f64,
                retries: report.data_quality.probes_retried,
                widened: report.data_quality.widened_interfaces,
            },
        ));
    }
    let kb_rows: Vec<Vec<String>> = kb_points
        .iter()
        .map(|(name, p)| {
            vec![
                (*name).to_string(),
                p.resolved.to_string(),
                format!("{:.3}", p.retained),
                format!("{:.3}", p.consistent),
                p.retries.to_string(),
                p.widened.to_string(),
            ]
        })
        .collect();
    out.line("");
    out.table(
        &[
            "kb profile",
            "resolved",
            "retained vs clean",
            "consistent w/ clean",
            "retries",
            "widened",
        ],
        &kb_rows,
    );
    out.line("");
    out.line("expectation: mid-kb-refresh (torn snapshot) hurts consistency at most modestly beyond uniform stale-kb rot");

    // Conflicting-KB sweep: sources that *disagree* rather than lag.
    // The reconciliation layer (DESIGN.md §11) classifies the
    // manufactured contradictions as contested and the engine refuses to
    // pin on them — coverage should shrink a little while every surviving
    // pin stays trustworthy.
    let mut conflict_points = Vec::new();
    for pm in CONFLICT_PM {
        let report = if pm == 0 {
            clean.clone()
        } else {
            let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::conflict_rate(pm));
            lab.run_cfs_chaos(plan, fast_cfg())
        };
        let map = facility_map(&report);
        let consistent = map
            .iter()
            .filter(|(ip, fac)| clean_map.get(*ip) == Some(fac))
            .count();
        conflict_points.push((
            pm,
            map.len(),
            map.len() as f64 / clean_resolved as f64,
            consistent as f64 / map.len().max(1) as f64,
            report.kb_quality.contested,
            report.data_quality.contested_pins_refused,
        ));
    }
    let conflict_rows: Vec<Vec<String>> = conflict_points
        .iter()
        .map(|(pm, resolved, retained, consistent, contested, refused)| {
            vec![
                format!("{:.1}%", f64::from(*pm) / 10.0),
                resolved.to_string(),
                format!("{retained:.3}"),
                format!("{consistent:.3}"),
                contested.to_string(),
                refused.to_string(),
            ]
        })
        .collect();
    out.line("");
    out.table(
        &[
            "kb conflict",
            "resolved",
            "retained vs clean",
            "consistent w/ clean",
            "contested claims",
            "pins refused",
        ],
        &conflict_rows,
    );
    out.line("");
    out.line("expectation: retained coverage stays high (>=0.9 at 20% contamination) and no facility pin ever rests on contested provenance — the refused column is the price of that guarantee");

    // Detector ablation at the harshest conflict point: the traIXroute-
    // style multi-rule IXP-hop detector with evidence gating versus the
    // paper's original prefix-only test that trusts every directory row.
    let harsh = FaultPlan::new(
        lab.topo.config.seed,
        FaultProfile::conflict_rate(*CONFLICT_PM.last().expect("non-empty")),
    );
    let multi_rule = lab.run_cfs_chaos(harsh, fast_cfg());
    let prefix_only = lab.run_cfs_chaos(
        harsh,
        CfsConfig {
            evidence_gating: false,
            ..fast_cfg()
        },
    );
    let detector_stats: Vec<(&str, usize, f64, f64, u64)> =
        [("multi-rule", &multi_rule), ("prefix-only", &prefix_only)]
            .into_iter()
            .map(|(name, report)| {
                let map = facility_map(report);
                let consistent = map
                    .iter()
                    .filter(|(ip, fac)| clean_map.get(*ip) == Some(fac))
                    .count();
                (
                    name,
                    map.len(),
                    map.len() as f64 / clean_resolved as f64,
                    consistent as f64 / map.len().max(1) as f64,
                    report.data_quality.contested_pins_refused,
                )
            })
            .collect();
    let detector_points: Vec<serde_json::Value> = detector_stats
        .iter()
        .map(|(name, resolved, retained, consistent, refused)| {
            serde_json::json!({
                "detector": name,
                "resolved": resolved,
                "retained_fraction": retained,
                "consistent_fraction": consistent,
                "contested_pins_refused": refused,
            })
        })
        .collect();
    let detector_table: Vec<Vec<String>> = detector_stats
        .iter()
        .map(|(name, resolved, retained, consistent, refused)| {
            vec![
                (*name).to_string(),
                resolved.to_string(),
                format!("{retained:.3}"),
                format!("{consistent:.3}"),
                refused.to_string(),
            ]
        })
        .collect();
    out.line("");
    out.table(
        &[
            "ixp-hop detector",
            "resolved",
            "retained vs clean",
            "consistent w/ clean",
            "pins refused",
        ],
        &detector_table,
    );
    out.line("");
    out.line("expectation: prefix-only pins more but some of those pins rest on contested claims; multi-rule trades a sliver of coverage for zero contested pins");

    let json_points: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "loss_pm": p.loss_pm,
                "resolved": p.resolved,
                "retained_fraction": p.retained,
                "consistent_fraction": p.consistent,
                "probes_retried": p.retries,
                "widened_interfaces": p.widened,
            })
        })
        .collect();
    let json_kb_points: Vec<serde_json::Value> = kb_points
        .iter()
        .map(|(name, p)| {
            serde_json::json!({
                "profile": name,
                "resolved": p.resolved,
                "retained_fraction": p.retained,
                "consistent_fraction": p.consistent,
                "probes_retried": p.retries,
                "widened_interfaces": p.widened,
            })
        })
        .collect();
    let json_conflict_points: Vec<serde_json::Value> = conflict_points
        .iter()
        .map(|(pm, resolved, retained, consistent, contested, refused)| {
            serde_json::json!({
                "conflict_pm": pm,
                "resolved": resolved,
                "retained_fraction": retained,
                "consistent_fraction": consistent,
                "contested_claims": contested,
                "contested_pins_refused": refused,
            })
        })
        .collect();
    Ok(serde_json::json!({
        "clean_resolved": clean_resolved,
        "points": json_points,
        "kb_points": json_kb_points,
        "conflict_points": json_conflict_points,
        "detector_points": detector_points,
    }))
}

fn facility_map(report: &CfsReport) -> BTreeMap<Ipv4Addr, FacilityId> {
    report
        .interfaces
        .values()
        .filter_map(|i| i.facility.map(|f| (i.ip, f)))
        .collect()
}

/// A lighter configuration: the sweep needs several full runs and the
/// degradation signal does not need 100 iterations to show.
fn fast_cfg() -> CfsConfig {
    CfsConfig {
        max_iterations: 30,
        followup_interfaces: 30,
        ..CfsConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The acceptance property of the resilience layer: at ≤10% probe
    /// loss the pipeline keeps resolving a substantial share of what the
    /// clean run resolves — it degrades, but there is no cliff to zero.
    #[test]
    fn degradation_is_bounded_at_ten_percent_loss() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let clean = lab.run_cfs(None, None, fast_cfg());
        let clean_resolved = facility_map(&clean).len();
        assert!(clean_resolved > 0, "clean run resolved nothing");

        for pm in [50u32, 100] {
            let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::probe_loss(pm));
            let report = lab.run_cfs_chaos(plan, fast_cfg());
            let resolved = facility_map(&report).len();
            assert!(
                resolved * 2 >= clean_resolved,
                "cliff at {pm}‰ loss: {resolved} of {clean_resolved} clean resolutions survive"
            );
        }
    }

    /// The torn snapshot must dirty the data, not kill the pipeline: a
    /// mid-kb-refresh run still resolves interfaces, and the same plan
    /// reproduces byte-identically.
    #[test]
    fn mid_kb_refresh_degrades_gracefully_and_reproduces() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let plan = FaultPlan::new(
            lab.topo.config.seed,
            FaultProfile::parse("mid-kb-refresh").expect("named profile"),
        );
        let a = lab.run_cfs_chaos(plan, fast_cfg());
        assert!(
            !facility_map(&a).is_empty(),
            "torn KB snapshot wiped out all resolutions"
        );
        let b = lab.run_cfs_chaos(plan, fast_cfg());
        assert_eq!(
            serde_json::to_string(&a).expect("render"),
            serde_json::to_string(&b).expect("render")
        );
    }

    /// The ISSUE-9 acceptance property: at 20% contested records the
    /// pipeline keeps ≥90% of its clean coverage, and *no* surviving
    /// facility pin rests on contested provenance — every affected
    /// interface either widened or carries a typed reason instead.
    #[test]
    fn conflict_contamination_retains_coverage_without_contested_pins() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let clean = lab.run_cfs(None, None, fast_cfg());
        let clean_resolved = facility_map(&clean).len();
        assert!(clean_resolved > 0, "clean run resolved nothing");

        let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::conflict_rate(200));
        let report = lab.run_cfs_chaos(plan, fast_cfg());
        let resolved = facility_map(&report).len();
        assert!(
            resolved * 10 >= clean_resolved * 9,
            "coverage retention below 90%: {resolved} of {clean_resolved}"
        );

        // Rebuild the exact degraded KB the run used and check every pin
        // against its reconciled provenance.
        let dirty = cfs_kb::degrade_sources(&lab.sources, &plan);
        let kb = cfs_kb::KnowledgeBase::assemble(&dirty, &lab.topo.world);
        assert!(
            kb.quality().contested > lab.kb.quality().contested,
            "conflict dial manufactured no contested claims"
        );
        for iface in report.interfaces.values() {
            let (Some(owner), Some(f)) = (iface.owner, iface.facility) else {
                continue;
            };
            assert!(
                kb.pin_allowed(owner, f),
                "{} pinned to {f} on contested provenance",
                iface.ip
            );
        }
    }

    /// The detector ablation's direction is pinned: with evidence gating
    /// off (the paper's prefix-only test) the run never refuses a pin,
    /// with the multi-rule detector the refusals are exactly the
    /// `contested_provenance` entries in the unresolved-reason taxonomy.
    #[test]
    fn prefix_only_never_refuses_and_multi_rule_types_its_refusals() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::conflict_rate(200));
        let gated = lab.run_cfs_chaos(plan, fast_cfg());
        let ungated = lab.run_cfs_chaos(
            plan,
            CfsConfig {
                evidence_gating: false,
                ..fast_cfg()
            },
        );
        assert_eq!(
            ungated.data_quality.contested_pins_refused, 0,
            "prefix-only detector has no refusal path"
        );
        // Every refusal surfaces under the typed reason; gated-but-never-
        // pinned interfaces land under the same code, so the tally is a
        // superset of the refusals.
        assert!(
            gated
                .data_quality
                .unresolved_reasons
                .get("contested_provenance")
                .copied()
                .unwrap_or(0)
                >= gated.data_quality.contested_pins_refused,
            "refusals missing from the contested_provenance reason tally"
        );
    }

    /// Same seed, same plan, same answer — chaos is deterministic even
    /// through the full experiment harness.
    #[test]
    fn faulted_runs_are_reproducible() {
        let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
        let plan = FaultPlan::new(lab.topo.config.seed, FaultProfile::standard());
        let a = lab.run_cfs_chaos(plan, fast_cfg());
        let b = lab.run_cfs_chaos(plan, fast_cfg());
        assert_eq!(
            serde_json::to_string(&a).expect("render"),
            serde_json::to_string(&b).expect("render")
        );
    }
}
