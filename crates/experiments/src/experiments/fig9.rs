//! Figure 9 — "Fraction of ground truth locations that match inferred
//! locations, classified by source of ground truth and type of link
//! inferred. CFS achieves 90% accuracy overall."

use cfs_core::CfsConfig;
use cfs_types::{PeeringKind, Result};
use cfs_validate::{score_report, ValidationOracles, ValidationSource};

use crate::{Lab, Output};

/// Runs the experiment.
pub fn run(lab: &Lab, out: &mut Output) -> Result<serde_json::Value> {
    let report = lab.run_cfs(None, None, CfsConfig::default());
    let oracles = ValidationOracles::standard(&lab.topo, &lab.sources);
    let scored = score_report(&report, &oracles, &lab.topo);

    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    for ((source, kind), bucket) in &scored.cells {
        if bucket.checked + bucket.remote_checked == 0 {
            continue;
        }
        let acc = bucket
            .accuracy()
            .map(|a| format!("{:.1}%", a * 100.0))
            .unwrap_or_else(|| "-".into());
        let metro_acc = bucket
            .metro_accuracy()
            .map(|a| format!("{:.1}%", a * 100.0))
            .unwrap_or_else(|| "-".into());
        let remote = if bucket.remote_checked > 0 {
            format!("{}/{}", bucket.remote_matched, bucket.remote_checked)
        } else {
            "-".into()
        };
        rows.push(vec![
            source.label().to_string(),
            kind.label().to_string(),
            format!("{}/{}", bucket.matched, bucket.checked),
            acc,
            metro_acc,
            remote,
        ]);
        json_cells.push(serde_json::json!({
            "source": source.label(),
            "kind": kind.label(),
            "matched": bucket.matched,
            "checked": bucket.checked,
            "metro_matched": bucket.metro_matched,
            "metro_checked": bucket.metro_checked,
            "remote_matched": bucket.remote_matched,
            "remote_checked": bucket.remote_checked,
        }));
    }
    out.table(
        &[
            "source",
            "link type",
            "matched/checked",
            "facility acc",
            "city acc",
            "remote ok",
        ],
        &rows,
    );

    let overall = scored.overall();
    out.line("");
    out.kv(
        "overall facility-level accuracy",
        overall
            .accuracy()
            .map(|a| {
                format!(
                    "{:.1}% ({}/{})",
                    a * 100.0,
                    overall.matched,
                    overall.checked
                )
            })
            .unwrap_or_else(|| "no coverage".into()),
    );
    out.kv(
        "overall city-level accuracy",
        overall
            .metro_accuracy()
            .map(|a| format!("{:.1}%", a * 100.0))
            .unwrap_or_else(|| "no coverage".into()),
    );
    out.line("");
    out.line("paper: 88-99% per bucket (291/330 feedback x-connect, 322/325 site public, 44/48 remote...), >90% overall; misses land in the right city");

    let per_source: Vec<serde_json::Value> = ValidationSource::ALL
        .iter()
        .map(|s| {
            let b = scored.by_source(*s);
            serde_json::json!({
                "source": s.label(),
                "matched": b.matched,
                "checked": b.checked,
                "accuracy": b.accuracy(),
            })
        })
        .collect();

    Ok(serde_json::json!({
        "cells": json_cells,
        "per_source": per_source,
        "overall": {
            "matched": overall.matched,
            "checked": overall.checked,
            "accuracy": overall.accuracy(),
            "metro_accuracy": overall.metro_accuracy(),
        },
        "kinds": PeeringKind::ALL.iter().map(|k| k.label()).collect::<Vec<_>>(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn overall_accuracy_matches_paper_band() {
        let lab = Lab::provision(Scale::Default, None).unwrap();
        let mut out = Output::new("fig9-test", "default").quiet();
        let json = run(&lab, &mut out).unwrap();
        let acc = json["overall"]["accuracy"].as_f64().expect("some coverage");
        assert!(acc > 0.8, "overall validated accuracy {acc}");
        let checked = json["overall"]["checked"].as_u64().unwrap();
        assert!(checked > 20, "coverage too thin: {checked}");
    }
}
