//! Result rendering: aligned tables to stdout, markdown + JSON to
//! `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

use cfs_types::Result;

/// Collects one experiment's output and writes it out.
pub struct Output {
    id: String,
    scale: String,
    md: String,
    quiet: bool,
}

impl Output {
    /// Starts an output document for experiment `id` at a given scale.
    pub fn new(id: &str, scale: &str) -> Self {
        let mut out = Self {
            id: id.to_string(),
            scale: scale.to_string(),
            md: String::new(),
            quiet: false,
        };
        out.heading(&format!("{id} (scale: {scale})"));
        out
    }

    /// Suppresses stdout (used by the `all` runner's inner calls).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Adds a section heading.
    pub fn heading(&mut self, text: &str) {
        self.emit(&format!("\n## {text}\n"));
    }

    /// Adds a free-form line.
    pub fn line(&mut self, text: &str) {
        self.emit(text);
        self.emit("\n");
    }

    /// Adds a `key: value` line.
    pub fn kv(&mut self, key: &str, value: impl std::fmt::Display) {
        self.line(&format!("- {key}: {value}"));
    }

    /// Adds an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut render_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(line, " {cell:<w$} |");
            }
            self.emit(&line);
            self.emit("\n");
        };
        render_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&sep);
        for row in rows {
            render_row(row);
        }
    }

    fn emit(&mut self, text: &str) {
        if !self.quiet {
            print!("{text}");
        }
        self.md.push_str(text);
    }

    /// Writes `results/<id>.md` and `results/<id>.json`; returns the
    /// markdown path.
    pub fn finish(self, json: serde_json::Value) -> Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let md_path = dir.join(format!("{}.md", self.id));
        std::fs::write(&md_path, &self.md)?;
        let wrapped = serde_json::json!({
            "experiment": self.id,
            "scale": self.scale,
            "data": json,
        });
        let json_path = dir.join(format!("{}.json", self.id));
        let rendered = serde_json::to_string_pretty(&wrapped)
            .map_err(|e| cfs_types::Error::invalid(format!("json render: {e}")))?;
        std::fs::write(&json_path, rendered)?;
        Ok(md_path)
    }
}

/// The workspace `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments; results sit at the root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut out = Output::new("test-output", "tiny").quiet();
        out.table(
            &["platform", "vps"],
            &[
                vec!["ripe-atlas".into(), "6385".into()],
                vec!["ark".into(), "107".into()],
            ],
        );
        assert!(out.md.contains("| ripe-atlas | 6385 |"));
        assert!(out.md.contains("| ark        | 107  |"));
    }

    #[test]
    fn finish_writes_files() {
        let out = Output::new("test-output", "tiny").quiet();
        let path = out.finish(serde_json::json!({"ok": true})).unwrap();
        assert!(path.exists());
        let json_path = path.with_extension("json");
        assert!(json_path.exists());
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(json_path).unwrap()).unwrap();
        assert_eq!(parsed["data"]["ok"], serde_json::json!(true));
        // Clean up the scratch files.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("json"));
    }
}
