//! Runs the link-type confusion-matrix extension. See `cfs-experiments`.
fn main() {
    cfs_experiments::experiments::main_for("kind_confusion");
}
