//! Runs the design-choice ablation study. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("ablation");
}
