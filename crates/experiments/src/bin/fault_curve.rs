//! Extension study: accuracy versus probe-fault rate under the chaos layer.

fn main() {
    cfs_experiments::experiments::main_for("fault_curve");
}
