//! Regenerates the paper's `fig10` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("fig10");
}
