//! Regenerates the paper's `proximity` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("proximity");
}
