//! Diagnostic (not a paper artifact): what keeps interfaces unresolved?
//! Prints the outcome mix, candidate-set size histogram, and owner-class
//! breakdown of the unresolved population.

use cfs_core::{CfsConfig, SearchOutcome};
use cfs_experiments::{Lab, Output};

fn main() {
    let (scale, seed) = cfs_experiments::parse_args();
    let lab = Lab::provision(scale, seed).expect("lab");
    let report = lab.run_cfs(None, None, CfsConfig::default());
    let mut out = Output::new("debug_unresolved", scale.label());

    let mut outcomes = std::collections::BTreeMap::new();
    let mut sizes = std::collections::BTreeMap::new();
    let mut classes = std::collections::BTreeMap::new();
    for iface in report.interfaces.values() {
        *outcomes
            .entry(format!("{:?}", iface.outcome))
            .or_insert(0usize) += 1;
        if iface.outcome == SearchOutcome::UnresolvedLocal {
            let bucket = match iface.candidates.len() {
                0..=1 => unreachable!("unresolved-local implies >1"),
                2 => "2",
                3 => "3",
                4..=5 => "4-5",
                6..=10 => "6-10",
                _ => ">10",
            };
            *sizes.entry(bucket).or_insert(0usize) += 1;
            if let Some(owner) = iface.owner {
                if let Ok(node) = lab.topo.as_node(owner) {
                    *classes.entry(node.class.label()).or_insert(0usize) += 1;
                }
            }
        }
    }
    out.kv("tracked", report.total());
    out.kv("resolved", report.resolved());
    for (k, v) in &outcomes {
        out.kv(&format!("outcome {k}"), v);
    }
    out.heading("unresolved-local candidate set sizes");
    for (k, v) in &sizes {
        out.kv(k, v);
    }
    out.heading("unresolved-local owner classes");
    for (k, v) in &classes {
        out.kv(k, v);
    }
    let _ = out.finish(serde_json::json!({}));
}
