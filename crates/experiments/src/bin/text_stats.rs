//! Regenerates the paper's `text_stats` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("text_stats");
}
