//! Extension study: streaming disruption detection scored against a withheld schedule.

fn main() {
    cfs_experiments::experiments::main_for("disruption_eval");
}
