//! Regenerates the paper's `dns_geo` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("dns_geo");
}
