//! Runs every experiment in paper order, sharing one provisioned lab.
use cfs_experiments::{experiments, Lab, Output};

fn main() {
    let (scale, seed) = cfs_experiments::parse_args();
    let lab = Lab::provision(scale, seed).expect("lab provisioning failed");
    for id in experiments::ALL_IDS {
        eprintln!("==> {id}");
        let mut out = Output::new(id, scale.label());
        let json = experiments::run_by_id(id, &lab, &mut out).expect("experiment failed");
        let path = out.finish(json).expect("writing results failed");
        eprintln!("    wrote {}\n", path.display());
    }
}
