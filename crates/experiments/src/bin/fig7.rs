//! Regenerates the paper's `fig7` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("fig7");
}
