//! Regenerates the paper's `table1` artifact. See `cfs-experiments` docs.
fn main() {
    cfs_experiments::experiments::main_for("table1");
}
