//! # cfs-experiments
//!
//! The evaluation harness: one module (and one binary) per table and
//! figure of the paper's evaluation, plus the in-text statistics of §5.
//!
//! | id | artifact | binary |
//! |----|----------|--------|
//! | `table1` | Table 1 — measurement platforms | `cargo run -p cfs-experiments --bin table1` |
//! | `fig2` | Figure 2 — NOC-page facilities vs PeeringDB coverage | `--bin fig2` |
//! | `fig3` | Figure 3 — metros with ≥ 10 facilities | `--bin fig3` |
//! | `fig7` | Figure 7 — CFS convergence, per platform | `--bin fig7` |
//! | `fig8` | Figure 8 — robustness to removed facilities | `--bin fig8` |
//! | `fig9` | Figure 9 — validated accuracy by source × type | `--bin fig9` |
//! | `fig10` | Figure 10 — interfaces by peering type and region | `--bin fig10` |
//! | `text_stats` | §5 in-text statistics | `--bin text_stats` |
//! | `proximity` | §4.4 switch-proximity evaluation | `--bin proximity` |
//! | `dns_geo` | §5/§7 DNS, IP-database & CBG geolocation baselines | `--bin dns_geo` |
//! | `ablation` | extension — disable one §4 mechanism at a time | `--bin ablation` |
//! | `kind_confusion` | extension — peering-type confusion matrix | `--bin kind_confusion` |
//! | `fault_curve` | extension — accuracy vs probe/KB fault rate | `--bin fault_curve` |
//! | `disruption_eval` | extension — streaming disruption detection vs withheld schedule | `--bin disruption_eval` |
//!
//! Every binary accepts `--scale tiny|default|paper` (default: `default`)
//! and `--seed N`, writes `results/<id>.md` and `results/<id>.json`, and
//! prints the table to stdout. `--bin all` runs everything.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
mod lab;
mod output;

pub use lab::{Lab, Scale};
pub use output::{results_dir, Output};

/// Parses the common CLI arguments (`--scale`, `--seed`).
pub fn parse_args() -> (Scale, Option<u64>) {
    let mut scale = Scale::Default;
    let mut seed = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1) {
                    scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "paper" => Scale::Paper,
                        _ => Scale::Default,
                    };
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1) {
                    seed = v.parse().ok();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (scale, seed)
}
