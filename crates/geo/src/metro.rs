//! Metropolitan-area clustering (§3.1.1).
//!
//! "If the distance between two cities is less than 5 miles, we map them to
//! the same metropolitan area." Clustering is transitive (a chain of
//! nearby cities forms one metro), implemented with a union-find over all
//! city pairs within the radius. The output is canonicalized so it does
//! not depend on input order.

use cfs_types::{CityId, MetroId};

use crate::coord::{haversine_km, GeoPoint};

/// The paper's 5-mile metro radius, in kilometres.
pub const METRO_RADIUS_KM: f64 = 5.0 * 1.609_344;

/// Result of clustering: a metro id per input city, plus the member lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetroAssignment {
    /// `metro_of[i]` is the metro of input city `i` (indexed like the
    /// input slice).
    pub metro_of: Vec<MetroId>,
    /// `members[m]` lists the cities of metro `m`, sorted by [`CityId`].
    pub members: Vec<Vec<CityId>>,
}

impl MetroAssignment {
    /// Number of metros produced.
    pub fn metro_count(&self) -> usize {
        self.members.len()
    }
}

/// Clusters cities into metropolitan areas: any two cities within
/// `radius_km` (transitively) share a metro.
///
/// Canonical form: metros are numbered by the smallest [`CityId`] they
/// contain, in ascending order, so the same set of cities always yields
/// the same assignment regardless of slice order.
pub fn cluster_metros(cities: &[(CityId, GeoPoint)], radius_km: f64) -> MetroAssignment {
    let n = cities.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if haversine_km(cities[i].1, cities[j].1) <= radius_km {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }

    // Gather components keyed by their minimum CityId for canonical order.
    let mut components: Vec<(CityId, Vec<usize>)> = Vec::new();
    let mut root_slot: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for (i, (city, _)) in cities.iter().enumerate() {
        let root = find(&mut parent, i);
        let slot = *root_slot.entry(root).or_insert_with(|| {
            components.push((*city, Vec::new()));
            components.len() - 1
        });
        let (min_city, members) = &mut components[slot];
        if *city < *min_city {
            *min_city = *city;
        }
        members.push(i);
    }
    components.sort_by_key(|(min_city, _)| *min_city);

    let mut metro_of = vec![MetroId::new(0); n];
    let mut members = Vec::with_capacity(components.len());
    for (m, (_, idxs)) in components.into_iter().enumerate() {
        let metro = MetroId::new(m as u32);
        let mut cities_in: Vec<CityId> = idxs
            .into_iter()
            .map(|i| {
                metro_of[i] = metro;
                cities[i].0
            })
            .collect();
        cities_in.sort();
        members.push(cities_in);
    }

    MetroAssignment { metro_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn nearby_cities_merge() {
        // NYC and Jersey City (~3 km apart).
        let cities = vec![
            (CityId(0), p(40.7128, -74.0060)),
            (CityId(1), p(40.7178, -74.0431)),
            (CityId(2), p(51.5074, -0.1278)), // London
        ];
        let a = cluster_metros(&cities, METRO_RADIUS_KM);
        assert_eq!(a.metro_count(), 2);
        assert_eq!(a.metro_of[0], a.metro_of[1]);
        assert_ne!(a.metro_of[0], a.metro_of[2]);
        assert_eq!(a.members[0], vec![CityId(0), CityId(1)]);
    }

    #[test]
    fn clustering_is_transitive() {
        // A chain: a-b within radius, b-c within radius, a-c not.
        // 0.06 deg of latitude ~ 6.7 km.
        let cities = vec![
            (CityId(0), p(50.00, 8.0)),
            (CityId(1), p(50.06, 8.0)),
            (CityId(2), p(50.12, 8.0)),
        ];
        let a = cluster_metros(&cities, METRO_RADIUS_KM);
        assert_eq!(a.metro_count(), 1, "chain should collapse into one metro");
    }

    #[test]
    fn canonical_under_input_order() {
        let mut cities = vec![
            (CityId(3), p(40.7128, -74.0060)),
            (CityId(1), p(40.7178, -74.0431)),
            (CityId(2), p(51.5074, -0.1278)),
            (CityId(0), p(35.6762, 139.6503)),
        ];
        let forward = cluster_metros(&cities, METRO_RADIUS_KM);
        cities.reverse();
        let reversed = cluster_metros(&cities, METRO_RADIUS_KM);
        // Member lists must be identical regardless of input order.
        assert_eq!(forward.members, reversed.members);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let a = cluster_metros(&[], METRO_RADIUS_KM);
        assert_eq!(a.metro_count(), 0);

        let a = cluster_metros(&[(CityId(9), p(0.0, 0.0))], METRO_RADIUS_KM);
        assert_eq!(a.metro_count(), 1);
        assert_eq!(a.members[0], vec![CityId(9)]);
    }

    #[test]
    fn all_far_apart_means_one_metro_each() {
        let cities: Vec<(CityId, GeoPoint)> = (0..10)
            .map(|i| (CityId(i), p(f64::from(i) * 2.0, 0.0)))
            .collect();
        let a = cluster_metros(&cities, METRO_RADIUS_KM);
        assert_eq!(a.metro_count(), 10);
    }

    #[test]
    fn metros_numbered_by_smallest_city_id() {
        let cities = vec![
            (CityId(5), p(0.0, 0.0)),
            (CityId(2), p(30.0, 30.0)),
            (CityId(9), p(60.0, 60.0)),
        ];
        let a = cluster_metros(&cities, METRO_RADIUS_KM);
        // metro0 must be the one containing CityId(2).
        assert_eq!(a.members[0], vec![CityId(2)]);
        assert_eq!(a.members[1], vec![CityId(5)]);
        assert_eq!(a.members[2], vec![CityId(9)]);
    }

    proptest::proptest! {
        #[test]
        fn prop_every_city_gets_exactly_one_metro(
            coords in proptest::collection::vec((-60.0f64..60.0, -170.0f64..170.0), 0..40)
        ) {
            let cities: Vec<(CityId, GeoPoint)> = coords
                .iter()
                .enumerate()
                .map(|(i, (lat, lon))| (CityId(i as u32), p(*lat, *lon)))
                .collect();
            let a = cluster_metros(&cities, METRO_RADIUS_KM);
            proptest::prop_assert_eq!(a.metro_of.len(), cities.len());
            let total: usize = a.members.iter().map(Vec::len).sum();
            proptest::prop_assert_eq!(total, cities.len());
            // Each member list is sorted and consistent with metro_of.
            for (m, members) in a.members.iter().enumerate() {
                let mut sorted = members.clone();
                sorted.sort();
                proptest::prop_assert_eq!(&sorted, members);
                for c in members {
                    let idx = cities.iter().position(|(id, _)| id == c).unwrap();
                    proptest::prop_assert_eq!(a.metro_of[idx], MetroId::new(m as u32));
                }
            }
        }

        #[test]
        fn prop_order_independent(
            coords in proptest::collection::vec((-60.0f64..60.0, -170.0f64..170.0), 1..25)
        ) {
            let mut cities: Vec<(CityId, GeoPoint)> = coords
                .iter()
                .enumerate()
                .map(|(i, (lat, lon))| (CityId(i as u32), p(*lat, *lon)))
                .collect();
            let forward = cluster_metros(&cities, METRO_RADIUS_KM);
            cities.rotate_left(coords.len() / 2);
            cities.reverse();
            let shuffled = cluster_metros(&cities, METRO_RADIUS_KM);
            proptest::prop_assert_eq!(forward.members, shuffled.members);
        }
    }
}
