//! Coordinates, great-circle distance, and the fiber delay model.

/// A point on the Earth's surface (WGS-84 degrees).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east. Range `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        haversine_km(self, other)
    }

    /// Round-trip fiber propagation delay to `other` in milliseconds,
    /// using the workspace-wide delay model ([`fiber_rtt_ms`]).
    pub fn rtt_ms(self, other: GeoPoint) -> f64 {
        fiber_rtt_ms(self.distance_km(other))
    }
}

/// Mean Earth radius (IUGG), kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Propagation speed of light in fiber, km per millisecond (~2/3 c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Ratio of realistic fiber-path length to great-circle distance. Real
/// fiber routes follow roads, rails and submarine corridors; 1.5 is a
/// conventional planning figure and keeps the remote-peering RTT test
/// (§4.2 Step 2, after Castro et al.) honest rather than optimistic.
pub const FIBER_PATH_STRETCH: f64 = 1.5;

/// Great-circle (haversine) distance between two points in kilometres.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Round-trip propagation delay over `distance_km` of great-circle
/// distance, in milliseconds, applying [`FIBER_PATH_STRETCH`].
///
/// This is a *floor*: the traceroute simulator adds queueing jitter and
/// congestion on top, and the remote-peering test compares measured RTT
/// minima against this bound.
pub fn fiber_rtt_ms(distance_km: f64) -> f64 {
    2.0 * distance_km * FIBER_PATH_STRETCH / FIBER_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    const LONDON: GeoPoint = GeoPoint::new(51.5074, -0.1278);
    const NEW_YORK: GeoPoint = GeoPoint::new(40.7128, -74.0060);
    const FRANKFURT: GeoPoint = GeoPoint::new(50.1109, 8.6821);
    const SYDNEY: GeoPoint = GeoPoint::new(-33.8688, 151.2093);

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(haversine_km(LONDON, LONDON), 0.0);
        assert_eq!(fiber_rtt_ms(0.0), 0.0);
    }

    #[test]
    fn known_distances_within_one_percent() {
        // Reference great-circle distances.
        let lon_nyc = haversine_km(LONDON, NEW_YORK);
        assert!((lon_nyc - 5570.0).abs() < 56.0, "London-NYC was {lon_nyc}");

        let lon_fra = haversine_km(LONDON, FRANKFURT);
        assert!(
            (lon_fra - 637.0).abs() < 7.0,
            "London-Frankfurt was {lon_fra}"
        );

        let lon_syd = haversine_km(LONDON, SYDNEY);
        assert!(
            (lon_syd - 16994.0).abs() < 170.0,
            "London-Sydney was {lon_syd}"
        );
    }

    #[test]
    fn distance_is_symmetric() {
        assert!((haversine_km(LONDON, SYDNEY) - haversine_km(SYDNEY, LONDON)).abs() < 1e-9);
    }

    #[test]
    fn rtt_floor_is_plausible() {
        // Transatlantic RTT floor should land in the 70-100 ms range that
        // operators see as the practical minimum for London-NYC.
        let rtt = LONDON.rtt_ms(NEW_YORK);
        assert!((70.0..110.0).contains(&rtt), "rtt was {rtt}");

        // Intra-metro RTT is well under a millisecond.
        let near = GeoPoint::new(51.51, -0.12);
        assert!(LONDON.rtt_ms(near) < 1.0);
    }

    #[test]
    fn rtt_scales_linearly() {
        assert!((fiber_rtt_ms(2000.0) - 2.0 * fiber_rtt_ms(1000.0)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_bounded_by_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = haversine_km(a, b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }
}
