//! # cfs-geo
//!
//! Geography substrate for the `cfs` workspace: coordinates and great-circle
//! distance, a fiber propagation-delay model (used by the traceroute
//! simulator and by the remote-peering inference of §4.2), an embedded
//! world-city table, the city-name normalization rules of §3.1.1
//! (ISO country codes, alias folding), and the paper's 5-mile metropolitan
//! clustering ("we group Jersey City and New York City into the NYC
//! metropolitan area").

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cities;
mod coord;
mod metro;
mod normalize;
mod world;

pub use cities::{CityRecord, CITY_TABLE};
pub use coord::{fiber_rtt_ms, haversine_km, GeoPoint, FIBER_KM_PER_MS, FIBER_PATH_STRETCH};
pub use metro::{cluster_metros, MetroAssignment, METRO_RADIUS_KM};
pub use normalize::{normalize_city, normalize_country};
pub use world::{City, Metro, World};
