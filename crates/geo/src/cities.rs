//! The embedded world-city table.
//!
//! The topology generator draws facility and IXP locations from this table;
//! hub tiers encode how large an interconnection hub each city is, so that
//! the generated facility distribution reproduces the heavy-tailed metro
//! skew of Figure 3 (London/New York-class hubs with 30-45 facilities down
//! to a long tail of one-facility cities).
//!
//! A handful of satellite cities sit within the paper's 5-mile radius of a
//! larger neighbour (Jersey City/New York, Clichy/Paris, Diegem/Brussels,
//! Kowloon/Hong Kong) to exercise the metropolitan clustering of §3.1.1.

use cfs_types::Region;

/// One row of the static world-city table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CityRecord {
    /// Canonical city name (already normalized spelling).
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// World region bucket used in the paper's reports.
    pub region: Region,
    /// Latitude, degrees north.
    pub lat: f64,
    /// Longitude, degrees east.
    pub lon: f64,
    /// IATA-style airport code, used by router DNS naming conventions and
    /// by the DRoP-style DNS geolocation baseline.
    pub iata: &'static str,
    /// Interconnection-hub tier: 0 = global hub, 1 = major, 2 = regional,
    /// 3 = small. Drives facility/IXP density in the generator.
    pub hub_tier: u8,
}

const fn city(
    name: &'static str,
    country: &'static str,
    region: Region,
    lat: f64,
    lon: f64,
    iata: &'static str,
    hub_tier: u8,
) -> CityRecord {
    CityRecord {
        name,
        country,
        region,
        lat,
        lon,
        iata,
        hub_tier,
    }
}

use Region::{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica};

/// The static world-city table (152 cities, 6 regions).
pub const CITY_TABLE: &[CityRecord] = &[
    // ---- Europe: global hubs -------------------------------------------
    city("london", "GB", Europe, 51.5074, -0.1278, "LHR", 0),
    city("frankfurt", "DE", Europe, 50.1109, 8.6821, "FRA", 0),
    city("amsterdam", "NL", Europe, 52.3676, 4.9041, "AMS", 0),
    city("paris", "FR", Europe, 48.8566, 2.3522, "CDG", 0),
    // ---- Europe: major hubs --------------------------------------------
    city("moscow", "RU", Europe, 55.7558, 37.6173, "DME", 1),
    city("stockholm", "SE", Europe, 59.3293, 18.0686, "ARN", 1),
    city("manchester", "GB", Europe, 53.4808, -2.2426, "MAN", 1),
    city("berlin", "DE", Europe, 52.5200, 13.4050, "TXL", 1),
    city("kiev", "UA", Europe, 50.4501, 30.5234, "KBP", 1),
    city("vienna", "AT", Europe, 48.2082, 16.3738, "VIE", 1),
    city("zurich", "CH", Europe, 47.3769, 8.5417, "ZRH", 1),
    city("prague", "CZ", Europe, 50.0755, 14.4378, "PRG", 1),
    city("hamburg", "DE", Europe, 53.5511, 9.9937, "HAM", 1),
    city("bucharest", "RO", Europe, 44.4268, 26.1025, "OTP", 1),
    city("madrid", "ES", Europe, 40.4168, -3.7038, "MAD", 1),
    city("milan", "IT", Europe, 45.4642, 9.1900, "MXP", 1),
    city("dusseldorf", "DE", Europe, 51.2277, 6.7735, "DUS", 1),
    city("sofia", "BG", Europe, 42.6977, 23.3219, "SOF", 1),
    city("st petersburg", "RU", Europe, 59.9311, 30.3609, "LED", 1),
    // ---- Europe: regional ----------------------------------------------
    city("dublin", "IE", Europe, 53.3498, -6.2603, "DUB", 2),
    city("brussels", "BE", Europe, 50.8503, 4.3517, "BRU", 2),
    city("munich", "DE", Europe, 48.1351, 11.5820, "MUC", 2),
    city("stuttgart", "DE", Europe, 48.7758, 9.1829, "STR", 2),
    city("cologne", "DE", Europe, 50.9375, 6.9603, "CGN", 2),
    city("rotterdam", "NL", Europe, 51.9244, 4.4777, "RTM", 2),
    city("the hague", "NL", Europe, 52.0705, 4.3007, "HAG", 3),
    city("marseille", "FR", Europe, 43.2965, 5.3698, "MRS", 2),
    city("lyon", "FR", Europe, 45.7640, 4.8357, "LYS", 2),
    city("geneva", "CH", Europe, 46.2044, 6.1432, "GVA", 2),
    city("rome", "IT", Europe, 41.9028, 12.4964, "FCO", 2),
    city("turin", "IT", Europe, 45.0703, 7.6869, "TRN", 3),
    city("barcelona", "ES", Europe, 41.3851, 2.1734, "BCN", 2),
    city("valencia", "ES", Europe, 39.4699, -0.3763, "VLC", 3),
    city("lisbon", "PT", Europe, 38.7223, -9.1393, "LIS", 2),
    city("porto", "PT", Europe, 41.1579, -8.6291, "OPO", 3),
    city("oslo", "NO", Europe, 59.9139, 10.7522, "OSL", 2),
    city("copenhagen", "DK", Europe, 55.6761, 12.5683, "CPH", 2),
    city("helsinki", "FI", Europe, 60.1699, 24.9384, "HEL", 2),
    city("warsaw", "PL", Europe, 52.2297, 21.0122, "WAW", 2),
    city("budapest", "HU", Europe, 47.4979, 19.0402, "BUD", 2),
    city("athens", "GR", Europe, 37.9838, 23.7275, "ATH", 2),
    city("istanbul", "TR", Europe, 41.0082, 28.9784, "IST", 2),
    city("luxembourg", "LU", Europe, 49.6116, 6.1319, "LUX", 2),
    city("riga", "LV", Europe, 56.9496, 24.1052, "RIX", 3),
    city("vilnius", "LT", Europe, 54.6872, 25.2797, "VNO", 3),
    city("tallinn", "EE", Europe, 59.4370, 24.7536, "TLL", 3),
    city("zagreb", "HR", Europe, 45.8150, 15.9819, "ZAG", 3),
    city("belgrade", "RS", Europe, 44.7866, 20.4489, "BEG", 3),
    city("bratislava", "SK", Europe, 48.1486, 17.1077, "BTS", 3),
    city("ljubljana", "SI", Europe, 46.0569, 14.5058, "LJU", 3),
    city("gothenburg", "SE", Europe, 57.7089, 11.9746, "GOT", 3),
    city("malmo", "SE", Europe, 55.6050, 13.0038, "MMX", 3),
    city("edinburgh", "GB", Europe, 55.9533, -3.1883, "EDI", 3),
    city("leeds", "GB", Europe, 53.8008, -1.5491, "LBA", 3),
    city("birmingham", "GB", Europe, 52.4862, -1.8904, "BHX", 3),
    city("nuremberg", "DE", Europe, 49.4521, 11.0767, "NUE", 3),
    city("minsk", "BY", Europe, 53.9006, 27.5590, "MSQ", 3),
    // ---- Europe: satellite cities (exercise 5-mile metro merging) ------
    city("clichy", "FR", Europe, 48.9044, 2.3064, "CDG", 3),
    city("diegem", "BE", Europe, 50.9000, 4.4333, "BRU", 3),
    // ---- North America: global hubs ------------------------------------
    city("new york", "US", NorthAmerica, 40.7128, -74.0060, "JFK", 0),
    city("ashburn", "US", NorthAmerica, 39.0438, -77.4874, "IAD", 1),
    city("san jose", "US", NorthAmerica, 37.3382, -121.8863, "SJC", 1),
    city(
        "los angeles",
        "US",
        NorthAmerica,
        34.0522,
        -118.2437,
        "LAX",
        1,
    ),
    // ---- North America: major ------------------------------------------
    city("miami", "US", NorthAmerica, 25.7617, -80.1918, "MIA", 1),
    city("chicago", "US", NorthAmerica, 41.8781, -87.6298, "ORD", 1),
    city("dallas", "US", NorthAmerica, 32.7767, -96.7970, "DFW", 1),
    city("seattle", "US", NorthAmerica, 47.6062, -122.3321, "SEA", 1),
    city("atlanta", "US", NorthAmerica, 33.7490, -84.3880, "ATL", 1),
    city("montreal", "CA", NorthAmerica, 45.5017, -73.5673, "YUL", 1),
    // ---- North America: regional ---------------------------------------
    city(
        "washington",
        "US",
        NorthAmerica,
        38.9072,
        -77.0369,
        "DCA",
        2,
    ),
    city("boston", "US", NorthAmerica, 42.3601, -71.0589, "BOS", 2),
    city(
        "philadelphia",
        "US",
        NorthAmerica,
        39.9526,
        -75.1652,
        "PHL",
        2,
    ),
    city("tampa", "US", NorthAmerica, 27.9506, -82.4572, "TPA", 3),
    city("houston", "US", NorthAmerica, 29.7604, -95.3698, "IAH", 2),
    city("austin", "US", NorthAmerica, 30.2672, -97.7431, "AUS", 3),
    city("denver", "US", NorthAmerica, 39.7392, -104.9903, "DEN", 2),
    city("phoenix", "US", NorthAmerica, 33.4484, -112.0740, "PHX", 2),
    city(
        "san francisco",
        "US",
        NorthAmerica,
        37.7749,
        -122.4194,
        "SFO",
        2,
    ),
    city(
        "palo alto",
        "US",
        NorthAmerica,
        37.4419,
        -122.1430,
        "PAO",
        2,
    ),
    city("portland", "US", NorthAmerica, 45.5152, -122.6784, "PDX", 2),
    city(
        "las vegas",
        "US",
        NorthAmerica,
        36.1699,
        -115.1398,
        "LAS",
        2,
    ),
    city(
        "salt lake city",
        "US",
        NorthAmerica,
        40.7608,
        -111.8910,
        "SLC",
        3,
    ),
    city(
        "minneapolis",
        "US",
        NorthAmerica,
        44.9778,
        -93.2650,
        "MSP",
        2,
    ),
    city(
        "kansas city",
        "US",
        NorthAmerica,
        39.0997,
        -94.5786,
        "MCI",
        3,
    ),
    city("st louis", "US", NorthAmerica, 38.6270, -90.1994, "STL", 3),
    city("detroit", "US", NorthAmerica, 42.3314, -83.0458, "DTW", 3),
    city("cleveland", "US", NorthAmerica, 41.4993, -81.6944, "CLE", 3),
    city("columbus", "US", NorthAmerica, 39.9612, -82.9988, "CMH", 3),
    city("charlotte", "US", NorthAmerica, 35.2271, -80.8431, "CLT", 3),
    city("nashville", "US", NorthAmerica, 36.1627, -86.7816, "BNA", 3),
    city("toronto", "CA", NorthAmerica, 43.6532, -79.3832, "YYZ", 2),
    city(
        "vancouver",
        "CA",
        NorthAmerica,
        49.2827,
        -123.1207,
        "YVR",
        2,
    ),
    city("calgary", "CA", NorthAmerica, 51.0447, -114.0719, "YYC", 3),
    city(
        "mexico city",
        "MX",
        NorthAmerica,
        19.4326,
        -99.1332,
        "MEX",
        2,
    ),
    city(
        "monterrey",
        "MX",
        NorthAmerica,
        25.6866,
        -100.3161,
        "MTY",
        3,
    ),
    city(
        "queretaro",
        "MX",
        NorthAmerica,
        20.5888,
        -100.3899,
        "QRO",
        3,
    ),
    // ---- North America: satellite city ---------------------------------
    city(
        "jersey city",
        "US",
        NorthAmerica,
        40.7178,
        -74.0431,
        "EWR",
        3,
    ),
    // ---- Asia ------------------------------------------------------------
    city("tokyo", "JP", Asia, 35.6762, 139.6503, "NRT", 0),
    city("singapore", "SG", Asia, 1.3521, 103.8198, "SIN", 0),
    city("hong kong", "HK", Asia, 22.2793, 114.1628, "HKG", 1),
    city("osaka", "JP", Asia, 34.6937, 135.5023, "KIX", 2),
    city("nagoya", "JP", Asia, 35.1815, 136.9066, "NGO", 3),
    city("seoul", "KR", Asia, 37.5665, 126.9780, "ICN", 2),
    city("busan", "KR", Asia, 35.1796, 129.0756, "PUS", 3),
    city("beijing", "CN", Asia, 39.9042, 116.4074, "PEK", 2),
    city("shanghai", "CN", Asia, 31.2304, 121.4737, "PVG", 2),
    city("shenzhen", "CN", Asia, 22.5431, 114.0579, "SZX", 3),
    city("guangzhou", "CN", Asia, 23.1291, 113.2644, "CAN", 3),
    city("taipei", "TW", Asia, 25.0330, 121.5654, "TPE", 2),
    city("kuala lumpur", "MY", Asia, 3.1390, 101.6869, "KUL", 2),
    city("jakarta", "ID", Asia, -6.2088, 106.8456, "CGK", 2),
    city("bangkok", "TH", Asia, 13.7563, 100.5018, "BKK", 2),
    city("manila", "PH", Asia, 14.5995, 120.9842, "MNL", 2),
    city("hanoi", "VN", Asia, 21.0285, 105.8542, "HAN", 3),
    city("ho chi minh city", "VN", Asia, 10.8231, 106.6297, "SGN", 3),
    city("mumbai", "IN", Asia, 19.0760, 72.8777, "BOM", 2),
    city("delhi", "IN", Asia, 28.7041, 77.1025, "DEL", 2),
    city("chennai", "IN", Asia, 13.0827, 80.2707, "MAA", 3),
    city("bangalore", "IN", Asia, 12.9716, 77.5946, "BLR", 3),
    city("karachi", "PK", Asia, 24.8607, 67.0011, "KHI", 3),
    city("dubai", "AE", Asia, 25.2048, 55.2708, "DXB", 2),
    city("tel aviv", "IL", Asia, 32.0853, 34.7818, "TLV", 2),
    city("riyadh", "SA", Asia, 24.7136, 46.6753, "RUH", 3),
    // ---- Asia: satellite city -------------------------------------------
    city("kowloon", "HK", Asia, 22.3167, 114.1815, "HKG", 3),
    // ---- Oceania ----------------------------------------------------------
    city("sydney", "AU", Oceania, -33.8688, 151.2093, "SYD", 1),
    city("melbourne", "AU", Oceania, -37.8136, 144.9631, "MEL", 1),
    city("auckland", "NZ", Oceania, -36.8509, 174.7645, "AKL", 1),
    city("brisbane", "AU", Oceania, -27.4705, 153.0260, "BNE", 2),
    city("perth", "AU", Oceania, -31.9523, 115.8613, "PER", 2),
    city("adelaide", "AU", Oceania, -34.9285, 138.6007, "ADL", 3),
    city("wellington", "NZ", Oceania, -41.2866, 174.7756, "WLG", 3),
    city("christchurch", "NZ", Oceania, -43.5321, 172.6362, "CHC", 3),
    // ---- South America ----------------------------------------------------
    city(
        "sao paulo",
        "BR",
        SouthAmerica,
        -23.5505,
        -46.6333,
        "GRU",
        1,
    ),
    city(
        "rio de janeiro",
        "BR",
        SouthAmerica,
        -22.9068,
        -43.1729,
        "GIG",
        2,
    ),
    city(
        "porto alegre",
        "BR",
        SouthAmerica,
        -30.0346,
        -51.2177,
        "POA",
        3,
    ),
    city("fortaleza", "BR", SouthAmerica, -3.7319, -38.5267, "FOR", 3),
    city(
        "buenos aires",
        "AR",
        SouthAmerica,
        -34.6037,
        -58.3816,
        "EZE",
        2,
    ),
    city("santiago", "CL", SouthAmerica, -33.4489, -70.6693, "SCL", 2),
    city("lima", "PE", SouthAmerica, -12.0464, -77.0428, "LIM", 3),
    city("bogota", "CO", SouthAmerica, 4.7110, -74.0721, "BOG", 2),
    city("medellin", "CO", SouthAmerica, 6.2476, -75.5658, "MDE", 3),
    city("caracas", "VE", SouthAmerica, 10.4806, -66.9036, "CCS", 3),
    city("quito", "EC", SouthAmerica, -0.1807, -78.4678, "UIO", 3),
    city(
        "montevideo",
        "UY",
        SouthAmerica,
        -34.9011,
        -56.1645,
        "MVD",
        3,
    ),
    // ---- Africa -----------------------------------------------------------
    city("johannesburg", "ZA", Africa, -26.2041, 28.0473, "JNB", 2),
    city("cape town", "ZA", Africa, -33.9249, 18.4241, "CPT", 2),
    city("durban", "ZA", Africa, -29.8587, 31.0218, "DUR", 3),
    city("nairobi", "KE", Africa, -1.2921, 36.8219, "NBO", 2),
    city("lagos", "NG", Africa, 6.5244, 3.3792, "LOS", 2),
    city("accra", "GH", Africa, 5.6037, -0.1870, "ACC", 3),
    city("cairo", "EG", Africa, 30.0444, 31.2357, "CAI", 2),
    city("casablanca", "MA", Africa, 33.5731, -7.5898, "CMN", 3),
    city("tunis", "TN", Africa, 36.8065, 10.1815, "TUN", 3),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table_has_reasonable_size() {
        assert!(CITY_TABLE.len() >= 140, "table has {}", CITY_TABLE.len());
    }

    #[test]
    fn all_six_regions_present() {
        let regions: BTreeSet<Region> = CITY_TABLE.iter().map(|c| c.region).collect();
        assert_eq!(regions.len(), 6);
    }

    #[test]
    fn europe_is_densest_region() {
        // The paper's facility dataset is Europe-heavy (860/1694); our city
        // table must support that skew.
        let count = |r: Region| CITY_TABLE.iter().filter(|c| c.region == r).count();
        assert!(count(Region::Europe) > count(Region::NorthAmerica));
        assert!(count(Region::NorthAmerica) > count(Region::Asia));
        assert!(count(Region::Asia) > count(Region::Africa));
    }

    #[test]
    fn names_are_canonical_and_unique_per_country() {
        let mut seen = BTreeSet::new();
        for c in CITY_TABLE {
            assert_eq!(c.name, c.name.to_lowercase(), "{} not lowercase", c.name);
            assert!(
                seen.insert((c.name, c.country)),
                "duplicate {} {}",
                c.name,
                c.country
            );
            assert_eq!(c.country.len(), 2);
            assert_eq!(c.country, c.country.to_uppercase());
            assert_eq!(c.iata.len(), 3);
        }
    }

    #[test]
    fn coordinates_in_range() {
        for c in CITY_TABLE {
            assert!((-90.0..=90.0).contains(&c.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon), "{}", c.name);
            assert!(c.hub_tier <= 3, "{}", c.name);
        }
    }

    #[test]
    fn global_hubs_exist_in_europe_na_asia() {
        // Figure 3's top metros come from these three regions.
        for region in [Region::Europe, Region::NorthAmerica, Region::Asia] {
            assert!(
                CITY_TABLE
                    .iter()
                    .any(|c| c.region == region && c.hub_tier == 0),
                "no tier-0 hub in {region}"
            );
        }
    }

    #[test]
    fn satellite_cities_are_close_to_their_hub() {
        use crate::coord::{haversine_km, GeoPoint};
        use crate::metro::METRO_RADIUS_KM;
        let find = |name: &str| {
            let c = CITY_TABLE.iter().find(|c| c.name == name).unwrap();
            GeoPoint::new(c.lat, c.lon)
        };
        for (sat, hub) in [
            ("jersey city", "new york"),
            ("clichy", "paris"),
            ("diegem", "brussels"),
            ("kowloon", "hong kong"),
        ] {
            let d = haversine_km(find(sat), find(hub));
            assert!(d <= METRO_RADIUS_KM, "{sat} is {d} km from {hub}");
        }
    }
}
