//! City- and country-name normalization (§3.1.1).
//!
//! PeeringDB-style databases are compiled manually, so "different naming
//! schemes are used for the same city or country". The paper removes the
//! discrepancies by converting to standard ISO/UN names; this module is
//! that conversion: case/diacritic folding, punctuation stripping, and an
//! alias table for the variants that actually occur in the wild (and that
//! our synthetic PeeringDB snapshot injects on purpose).

/// Normalizes a city name to its canonical table form.
///
/// Steps: lowercase, fold diacritics to ASCII, strip punctuation, collapse
/// whitespace, then apply the alias table ("frankfurt am main" →
/// "frankfurt", "nyc" → "new york", …).
pub fn normalize_city(raw: &str) -> String {
    let folded = fold(raw);
    match CITY_ALIASES.iter().find(|(a, _)| *a == folded) {
        Some((_, canonical)) => (*canonical).to_string(),
        None => folded,
    }
}

/// Normalizes a country name or code to ISO 3166-1 alpha-2.
///
/// Unknown inputs are returned folded and upper-cased so they can still be
/// compared consistently (the knowledge-base assembler treats them as
/// distinct unknown countries rather than failing).
pub fn normalize_country(raw: &str) -> String {
    let folded = fold(raw);
    if folded.len() == 2 {
        return folded.to_uppercase();
    }
    match COUNTRY_ALIASES.iter().find(|(a, _)| *a == folded) {
        Some((_, iso)) => (*iso).to_string(),
        None => folded.to_uppercase(),
    }
}

/// Lowercases, folds common diacritics, strips punctuation, collapses runs
/// of whitespace into single spaces.
fn fold(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut last_space = true; // trim leading whitespace
    for ch in raw.chars() {
        let mapped: &str = match ch {
            'ä' | 'à' | 'á' | 'â' | 'ã' | 'å' | 'Ä' | 'À' | 'Á' | 'Â' | 'Ã' | 'Å' => {
                "a"
            }
            'ö' | 'ò' | 'ó' | 'ô' | 'õ' | 'ø' | 'Ö' | 'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ø' => {
                "o"
            }
            'ü' | 'ù' | 'ú' | 'û' | 'Ü' | 'Ù' | 'Ú' | 'Û' => "u",
            'é' | 'è' | 'ê' | 'ë' | 'É' | 'È' | 'Ê' | 'Ë' => "e",
            'í' | 'ì' | 'î' | 'ï' | 'Í' | 'Ì' | 'Î' | 'Ï' => "i",
            'ç' | 'Ç' => "c",
            'ñ' | 'Ñ' => "n",
            'ß' => "ss",
            '.' | ',' | '\'' | '’' => "",
            '-' | '_' | '/' => " ",
            _ => {
                if ch.is_whitespace() {
                    " "
                } else {
                    out.extend(ch.to_lowercase());
                    last_space = false;
                    continue;
                }
            }
        };
        if mapped == " " {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push_str(mapped);
            last_space = mapped.is_empty() && last_space;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// City alias → canonical-name table (inputs already folded).
const CITY_ALIASES: &[(&str, &str)] = &[
    ("frankfurt am main", "frankfurt"),
    ("frankfurt main", "frankfurt"),
    ("new york city", "new york"),
    ("nyc", "new york"),
    ("new york ny", "new york"),
    ("duesseldorf", "dusseldorf"),
    ("koln", "cologne"),
    ("koeln", "cologne"),
    ("munchen", "munich"),
    ("muenchen", "munich"),
    ("wien", "vienna"),
    ("praha", "prague"),
    ("warszawa", "warsaw"),
    ("bruxelles", "brussels"),
    ("brussel", "brussels"),
    ("milano", "milan"),
    ("roma", "rome"),
    ("torino", "turin"),
    ("lisboa", "lisbon"),
    ("moskva", "moscow"),
    ("kyiv", "kiev"),
    ("saint petersburg", "st petersburg"),
    ("sankt peterburg", "st petersburg"),
    ("saint louis", "st louis"),
    ("washington dc", "washington"),
    ("washington d c", "washington"),
    ("la", "los angeles"),
    ("sf", "san francisco"),
    ("s jose", "san jose"),
    ("hongkong", "hong kong"),
    ("hcmc", "ho chi minh city"),
    ("saigon", "ho chi minh city"),
    ("kl", "kuala lumpur"),
    ("s paulo", "sao paulo"),
    ("den haag", "the hague"),
    ("s gravenhage", "the hague"),
    ("geneve", "geneva"),
    ("zuerich", "zurich"),
];

/// Country alias → ISO alpha-2 table (inputs already folded).
const COUNTRY_ALIASES: &[(&str, &str)] = &[
    ("united states", "US"),
    ("united states of america", "US"),
    ("usa", "US"),
    ("america", "US"),
    ("united kingdom", "GB"),
    ("great britain", "GB"),
    ("england", "GB"),
    ("uk", "GB"),
    ("germany", "DE"),
    ("deutschland", "DE"),
    ("netherlands", "NL"),
    ("the netherlands", "NL"),
    ("holland", "NL"),
    ("france", "FR"),
    ("spain", "ES"),
    ("espana", "ES"),
    ("italy", "IT"),
    ("italia", "IT"),
    ("switzerland", "CH"),
    ("austria", "AT"),
    ("belgium", "BE"),
    ("ireland", "IE"),
    ("portugal", "PT"),
    ("sweden", "SE"),
    ("norway", "NO"),
    ("denmark", "DK"),
    ("finland", "FI"),
    ("poland", "PL"),
    ("czech republic", "CZ"),
    ("czechia", "CZ"),
    ("hungary", "HU"),
    ("romania", "RO"),
    ("bulgaria", "BG"),
    ("greece", "GR"),
    ("turkey", "TR"),
    ("russia", "RU"),
    ("russian federation", "RU"),
    ("ukraine", "UA"),
    ("luxembourg", "LU"),
    ("japan", "JP"),
    ("south korea", "KR"),
    ("korea", "KR"),
    ("republic of korea", "KR"),
    ("china", "CN"),
    ("peoples republic of china", "CN"),
    ("hong kong", "HK"),
    ("taiwan", "TW"),
    ("singapore", "SG"),
    ("malaysia", "MY"),
    ("indonesia", "ID"),
    ("thailand", "TH"),
    ("philippines", "PH"),
    ("vietnam", "VN"),
    ("viet nam", "VN"),
    ("india", "IN"),
    ("pakistan", "PK"),
    ("united arab emirates", "AE"),
    ("uae", "AE"),
    ("israel", "IL"),
    ("saudi arabia", "SA"),
    ("australia", "AU"),
    ("new zealand", "NZ"),
    ("brazil", "BR"),
    ("brasil", "BR"),
    ("argentina", "AR"),
    ("chile", "CL"),
    ("peru", "PE"),
    ("colombia", "CO"),
    ("venezuela", "VE"),
    ("ecuador", "EC"),
    ("uruguay", "UY"),
    ("mexico", "MX"),
    ("canada", "CA"),
    ("south africa", "ZA"),
    ("kenya", "KE"),
    ("nigeria", "NG"),
    ("ghana", "GH"),
    ("egypt", "EG"),
    ("morocco", "MA"),
    ("tunisia", "TN"),
    ("belarus", "BY"),
    ("croatia", "HR"),
    ("serbia", "RS"),
    ("slovakia", "SK"),
    ("slovenia", "SI"),
    ("estonia", "EE"),
    ("latvia", "LV"),
    ("lithuania", "LT"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_case_and_diacritics() {
        assert_eq!(normalize_city("Düsseldorf"), "dusseldorf");
        assert_eq!(normalize_city("MÜNCHEN"), "munich");
        assert_eq!(normalize_city("São Paulo"), "sao paulo");
        assert_eq!(normalize_city("Zürich"), "zurich");
    }

    #[test]
    fn applies_city_aliases() {
        assert_eq!(normalize_city("Frankfurt am Main"), "frankfurt");
        assert_eq!(normalize_city("NYC"), "new york");
        assert_eq!(normalize_city("New York City"), "new york");
        assert_eq!(normalize_city("Wien"), "vienna");
        assert_eq!(normalize_city("Kyiv"), "kiev");
        assert_eq!(normalize_city("Washington, D.C."), "washington");
    }

    #[test]
    fn idempotent_on_canonical_names() {
        for name in ["london", "new york", "frankfurt", "st petersburg"] {
            assert_eq!(normalize_city(name), name);
        }
    }

    #[test]
    fn strips_punctuation_and_collapses_whitespace() {
        assert_eq!(normalize_city("  St.   Louis "), "st louis");
        assert_eq!(normalize_city("Den-Haag"), "the hague");
    }

    #[test]
    fn country_codes_pass_through() {
        assert_eq!(normalize_country("de"), "DE");
        assert_eq!(normalize_country("DE"), "DE");
        assert_eq!(normalize_country("Us"), "US");
    }

    #[test]
    fn country_names_map_to_iso() {
        assert_eq!(normalize_country("United States"), "US");
        assert_eq!(normalize_country("Deutschland"), "DE");
        assert_eq!(normalize_country("United Kingdom"), "GB");
        assert_eq!(normalize_country("Viet Nam"), "VN");
        assert_eq!(normalize_country("The Netherlands"), "NL");
    }

    #[test]
    fn unknown_country_is_folded_uppercase() {
        assert_eq!(normalize_country("Atlantis"), "ATLANTIS");
    }

    #[test]
    fn every_city_table_entry_is_already_normalized() {
        for c in crate::cities::CITY_TABLE {
            assert_eq!(normalize_city(c.name), c.name, "{} not canonical", c.name);
        }
    }
}
