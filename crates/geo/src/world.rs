//! The assembled world: city arena, metro clustering, and lookups.
//!
//! [`World`] is the geography object every other crate consumes. It is
//! built once from the static [`CITY_TABLE`](crate::cities::CITY_TABLE)
//! (or from a custom list in tests) and is immutable afterwards.

use std::collections::BTreeMap;

use cfs_types::{Arena, CityId, MetroId, Region};

use crate::cities::{CityRecord, CITY_TABLE};
use crate::coord::GeoPoint;
use crate::metro::{cluster_metros, METRO_RADIUS_KM};
use crate::normalize::normalize_city;

/// A city with its resolved metro.
#[derive(Clone, Debug)]
pub struct City {
    /// Canonical (normalized) name.
    pub name: String,
    /// ISO 3166-1 alpha-2 country code.
    pub country: String,
    /// World region.
    pub region: Region,
    /// Coordinates.
    pub location: GeoPoint,
    /// IATA-style airport code (DNS naming / DRoP baseline).
    pub iata: String,
    /// Hub tier (0 = global hub … 3 = small).
    pub hub_tier: u8,
    /// The metropolitan area this city belongs to.
    pub metro: MetroId,
}

/// A metropolitan area: one or more cities within the 5-mile rule.
#[derive(Clone, Debug)]
pub struct Metro {
    /// Member cities, sorted by id. The first member with the lowest hub
    /// tier lends the metro its display name.
    pub cities: Vec<CityId>,
    /// Display name (name of the most significant member city).
    pub name: String,
    /// Region (identical for all members in practice).
    pub region: Region,
    /// Representative coordinates (most significant member city).
    pub location: GeoPoint,
    /// Lowest (most significant) hub tier among the members.
    pub hub_tier: u8,
}

/// The immutable geography database.
#[derive(Clone, Debug)]
pub struct World {
    cities: Arena<CityId, City>,
    metros: Arena<MetroId, Metro>,
    by_name: BTreeMap<(String, String), CityId>,
}

impl World {
    /// Builds the world from the embedded [`CITY_TABLE`].
    pub fn builtin() -> Self {
        Self::from_records(CITY_TABLE)
    }

    /// Builds a world from arbitrary records (used by tests).
    pub fn from_records(records: &[CityRecord]) -> Self {
        let mut cities: Arena<CityId, City> = Arena::with_capacity(records.len());
        for r in records {
            cities.push(City {
                name: r.name.to_string(),
                country: r.country.to_string(),
                region: r.region,
                location: GeoPoint::new(r.lat, r.lon),
                iata: r.iata.to_string(),
                hub_tier: r.hub_tier,
                metro: MetroId::new(0), // fixed up below
            });
        }

        let points: Vec<(CityId, GeoPoint)> =
            cities.iter().map(|(id, c)| (id, c.location)).collect();
        let assignment = cluster_metros(&points, METRO_RADIUS_KM);

        let mut metros: Arena<MetroId, Metro> = Arena::with_capacity(assignment.members.len());
        for member_ids in &assignment.members {
            // Most significant member (lowest hub tier, then lowest id)
            // names the metro: "jersey city" folds into "new york".
            let lead = member_ids
                .iter()
                .copied()
                .min_by_key(|id| (cities[*id].hub_tier, *id))
                .expect("metro has at least one city");
            metros.push(Metro {
                cities: member_ids.clone(),
                name: cities[lead].name.clone(),
                region: cities[lead].region,
                location: cities[lead].location,
                hub_tier: cities[lead].hub_tier,
            });
        }
        for (i, metro) in assignment.metro_of.iter().enumerate() {
            cities[CityId::new(i as u32)].metro = *metro;
        }

        let by_name = cities
            .iter()
            .map(|(id, c)| ((c.name.clone(), c.country.clone()), id))
            .collect();

        Self {
            cities,
            metros,
            by_name,
        }
    }

    /// The city table.
    pub fn cities(&self) -> &Arena<CityId, City> {
        &self.cities
    }

    /// The metro table.
    pub fn metros(&self) -> &Arena<MetroId, Metro> {
        &self.metros
    }

    /// A city by id.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id]
    }

    /// A metro by id.
    pub fn metro(&self, id: MetroId) -> &Metro {
        &self.metros[id]
    }

    /// The metro a city belongs to.
    pub fn metro_of(&self, city: CityId) -> MetroId {
        self.cities[city].metro
    }

    /// Looks up a city by (possibly messy) name and country, applying the
    /// §3.1.1 normalization first.
    pub fn find_city(&self, raw_name: &str, raw_country: &str) -> Option<CityId> {
        let name = normalize_city(raw_name);
        let country = crate::normalize::normalize_country(raw_country);
        self.by_name.get(&(name, country)).copied()
    }

    /// All cities in a region, sorted by id.
    pub fn cities_in_region(&self, region: Region) -> Vec<CityId> {
        self.cities
            .iter()
            .filter(|(_, c)| c.region == region)
            .map(|(id, _)| id)
            .collect()
    }

    /// Great-circle distance between two cities, km.
    pub fn distance_km(&self, a: CityId, b: CityId) -> f64 {
        self.cities[a].location.distance_km(self.cities[b].location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_world_builds() {
        let w = World::builtin();
        assert!(w.cities().len() >= 140);
        // Metros are fewer than cities because of the satellite pairs.
        assert!(w.metros().len() < w.cities().len());
        assert_eq!(
            w.cities().len() - w.metros().len(),
            4,
            "four satellite cities merge"
        );
    }

    #[test]
    fn satellites_share_their_hubs_metro() {
        let w = World::builtin();
        let pairs = [
            ("jersey city", "US", "new york", "US"),
            ("clichy", "FR", "paris", "FR"),
            ("diegem", "BE", "brussels", "BE"),
            ("kowloon", "HK", "hong kong", "HK"),
        ];
        for (sat, sat_cc, hub, hub_cc) in pairs {
            let s = w.find_city(sat, sat_cc).unwrap();
            let h = w.find_city(hub, hub_cc).unwrap();
            assert_eq!(
                w.metro_of(s),
                w.metro_of(h),
                "{sat} should merge into {hub}"
            );
            // The metro is named after the hub, not the satellite.
            assert_eq!(w.metro(w.metro_of(s)).name, hub);
        }
    }

    #[test]
    fn find_city_normalizes() {
        let w = World::builtin();
        let a = w.find_city("Frankfurt am Main", "Deutschland").unwrap();
        let b = w.find_city("frankfurt", "DE").unwrap();
        assert_eq!(a, b);
        assert!(w.find_city("atlantis", "XX").is_none());
    }

    #[test]
    fn regions_partition_cities() {
        let w = World::builtin();
        let total: usize = Region::ALL
            .iter()
            .map(|r| w.cities_in_region(*r).len())
            .sum();
        assert_eq!(total, w.cities().len());
    }

    #[test]
    fn distances_are_sane() {
        let w = World::builtin();
        let lon = w.find_city("london", "GB").unwrap();
        let nyc = w.find_city("new york", "US").unwrap();
        let d = w.distance_km(lon, nyc);
        assert!((5000.0..6000.0).contains(&d));
    }

    #[test]
    fn metro_membership_is_consistent() {
        let w = World::builtin();
        for (mid, metro) in w.metros().iter() {
            for c in &metro.cities {
                assert_eq!(w.metro_of(*c), mid);
            }
        }
    }
}
