//! The rolling-baseline divergence detector.
//!
//! One integer EWMA baseline per feature key (facility visibility,
//! private-subset visibility, IXP fabric visibility, reached fraction,
//! resolution fraction), updated once per epoch. A key whose current
//! value falls far enough below its baseline raises one alert for that
//! epoch; while a key is alerting its baseline ages at a fraction of the
//! normal rate, so a multi-epoch outage cannot talk the baseline down
//! into accepting the degraded level as normal.
//!
//! All arithmetic is integer fixed-point (values per-mille, baselines
//! per-mille ×1000), iteration follows `BTreeMap` order, and timestamps
//! come from the injected clock — the emitted `cfs-alerts/1` bytes are
//! independent of thread count and wall time.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cfs_core::CfsReport;
use cfs_obs::{Clock, Severity};
use cfs_types::{FacilityId, IxpId};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::features::{extract, EpochFeatures, EpochObservation};

/// Detector tuning. Defaults are the evaluated configuration
/// (`disruption_eval`, DESIGN.md §12).
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// EWMA weight of the newest sample, per-mille.
    pub alpha_pm: u64,
    /// Minimum relative drop (per-mille of baseline) that raises a
    /// `warn` alert. 450 catches the structural halvings real faults
    /// produce (a cut dropping one of two link endpoints scores exactly
    /// 500) while staying above campaign jitter.
    pub warn_score_pm: u64,
    /// Drop at or above which the alert escalates to `error`.
    pub error_score_pm: u64,
    /// Minimum tracked members a bucket needs before it may alert —
    /// below this, single-interface probe noise dominates.
    pub min_support: u64,
    /// Baseline samples a key needs before it is scored.
    pub min_samples: u64,
    /// Epochs at the start of the stream that never alert (baseline
    /// formation).
    pub warmup_epochs: u64,
    /// While a key is alerting its baseline ages at
    /// `alpha / aging_slowdown`.
    pub aging_slowdown: u64,
    /// Alert ring capacity.
    pub alert_cap: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            alpha_pm: 300,
            warn_score_pm: 450,
            error_score_pm: 850,
            min_support: 3,
            min_samples: 2,
            warmup_epochs: 2,
            aging_slowdown: 8,
            alert_cap: 256,
        }
    }
}

/// Display names for alert loci, captured from public knowledge (the
/// same names the knowledge base publishes — holding them here does not
/// leak the withheld schedule).
#[derive(Clone, Debug, Default)]
pub struct LocusNames {
    /// Facility display names by raw id.
    pub facilities: BTreeMap<u32, String>,
    /// Exchange display names by raw id.
    pub ixps: BTreeMap<u32, String>,
}

impl LocusNames {
    fn facility(&self, id: FacilityId) -> (u32, String) {
        let raw = id.raw();
        (
            raw,
            self.facilities
                .get(&raw)
                .cloned()
                .unwrap_or_else(|| format!("fac{raw}")),
        )
    }

    fn ixp(&self, id: IxpId) -> (u32, String) {
        let raw = id.raw();
        (
            raw,
            self.ixps
                .get(&raw)
                .cloned()
                .unwrap_or_else(|| format!("ixp{raw}")),
        )
    }
}

/// Baseline key space, ordered (iteration order = alert emission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Facility(FacilityId),
    FacilityPrivate(FacilityId),
    Ixp(IxpId),
    IxpFacility(IxpId, FacilityId),
    Reached,
    Resolution,
}

#[derive(Clone, Copy, Debug)]
struct Baseline {
    /// Per-mille value ×1000 (fixed point).
    value_milli: u64,
    samples: u64,
    alerting: bool,
}

/// One key's scoring outcome against its baseline.
struct Scored {
    score_pm: u64,
    baseline_pm: u64,
}

/// The streaming detector. Feed it one [`EpochObservation`] + report per
/// epoch via [`Detector::observe`]; drain alerts from
/// [`Detector::alerts`].
pub struct Detector {
    config: DetectorConfig,
    names: LocusNames,
    baselines: BTreeMap<Key, Baseline>,
    alerts: AlertLog,
    epochs_seen: u64,
}

impl Detector {
    /// A detector with display names from `names`, stamping alert times
    /// from `clock`.
    pub fn new(config: DetectorConfig, names: LocusNames, clock: Arc<dyn Clock>) -> Self {
        let alerts = AlertLog::new(clock, config.alert_cap);
        Self {
            config,
            names,
            baselines: BTreeMap::new(),
            alerts,
            epochs_seen: 0,
        }
    }

    /// The alert ring (cursor draining for the `alerts` op).
    pub fn alerts(&self) -> &AlertLog {
        &self.alerts
    }

    /// Epochs observed so far.
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// Absorbs one epoch's raw observation bucketed against `report` and
    /// returns the alerts it raised.
    pub fn observe(&mut self, obs: &EpochObservation, report: &CfsReport) -> Vec<Alert> {
        self.observe_features(&extract(obs, report))
    }

    /// Absorbs one epoch's pre-extracted features and returns the alerts
    /// it raised (already sequenced into the ring), in key order.
    pub fn observe_features(&mut self, features: &EpochFeatures) -> Vec<Alert> {
        let mut out = Vec::new();
        let epoch = features.epoch;

        // Whole-building visibility first: the outage kind dominates.
        let mut outage_facs: BTreeSet<u32> = BTreeSet::new();
        for (fac, vis) in &features.facility {
            let locus = self.names.facility(*fac);
            let raised = self.score_key(
                Key::Facility(*fac),
                vis.per_mille(),
                vis.tracked,
                epoch,
                AlertKind::FacilityOutage,
                Some(locus),
                None,
                &mut out,
            );
            if raised {
                outage_facs.insert(fac.raw());
            }
        }

        // The private-peering subset adds signal only when the building
        // as a whole is healthy this epoch (a patch-panel cut, not a
        // power loss); its baseline ages either way.
        for (fac, vis) in &features.facility_private {
            if outage_facs.contains(&fac.raw()) {
                self.update_only(Key::FacilityPrivate(*fac), vis.per_mille());
                continue;
            }
            let locus = self.names.facility(*fac);
            self.score_key(
                Key::FacilityPrivate(*fac),
                vis.per_mille(),
                vis.tracked,
                epoch,
                AlertKind::PrivateLinkLoss,
                Some(locus),
                None,
                &mut out,
            );
        }

        let mut flapped_ixps: BTreeSet<u32> = BTreeSet::new();
        for (ixp, v) in &features.ixp {
            // Candidate-set churn localizes the flap when every missing
            // port pins to one building.
            let fac_locus = if v.missing_facilities.len() == 1 {
                v.missing_facilities
                    .iter()
                    .next()
                    .map(|f| self.names.facility(*f))
            } else {
                None
            };
            let ixp_locus = self.names.ixp(*ixp);
            let raised = self.score_key(
                Key::Ixp(*ixp),
                v.vis.per_mille(),
                v.vis.tracked,
                epoch,
                AlertKind::IxpPortLoss,
                fac_locus,
                Some(ixp_locus),
                &mut out,
            );
            if raised {
                flapped_ixps.insert(ixp.raw());
            }
        }

        // Per-building slices of each fabric: a one-switch flap on a
        // large exchange barely dents the fabric-wide number, but the
        // slice for the switch's building collapses. Skip the slice when
        // the whole exchange already alerted (one alert per locus) or
        // the building itself is out (the outage alert dominates).
        for ((ixp, fac), vis) in &features.ixp_facility {
            if flapped_ixps.contains(&ixp.raw()) || outage_facs.contains(&fac.raw()) {
                self.update_only(Key::IxpFacility(*ixp, *fac), vis.per_mille());
                continue;
            }
            let fac_locus = self.names.facility(*fac);
            let ixp_locus = self.names.ixp(*ixp);
            self.score_key(
                Key::IxpFacility(*ixp, *fac),
                vis.per_mille(),
                vis.tracked,
                epoch,
                AlertKind::IxpPortLoss,
                Some(fac_locus),
                Some(ixp_locus),
                &mut out,
            );
        }

        self.score_key(
            Key::Reached,
            features.reached_pm,
            features.tracked,
            epoch,
            AlertKind::ProbeLossSurge,
            None,
            None,
            &mut out,
        );
        self.score_key(
            Key::Resolution,
            features.resolution_pm,
            features.tracked,
            epoch,
            AlertKind::ResolutionDrop,
            None,
            None,
            &mut out,
        );

        self.epochs_seen += 1;
        out
    }

    /// Scores one key against its baseline, updates the baseline, and
    /// appends an alert when the divergence clears the floor. Returns
    /// whether an alert was raised.
    #[allow(clippy::too_many_arguments)]
    fn score_key(
        &mut self,
        key: Key,
        value_pm: u64,
        support: u64,
        epoch: u64,
        kind: AlertKind,
        facility: Option<(u32, String)>,
        ixp: Option<(u32, String)>,
        out: &mut Vec<Alert>,
    ) -> bool {
        let Some(Scored {
            score_pm,
            baseline_pm,
        }) = self.score_and_update(key, value_pm)
        else {
            return false;
        };
        let eligible = self.epochs_seen >= self.config.warmup_epochs
            && support >= self.config.min_support
            && score_pm >= self.config.warn_score_pm;
        if !eligible {
            return false;
        }
        let severity = if score_pm >= self.config.error_score_pm {
            Severity::Error
        } else {
            Severity::Warn
        };
        out.push(self.alerts.emit(Alert {
            seq: 0,
            t_ns: 0,
            epoch,
            severity,
            kind,
            facility,
            ixp,
            observed_pm: value_pm,
            baseline_pm,
            score_pm,
            support,
        }));
        true
    }

    /// The EWMA + scoring core. Returns `None` while the key is still
    /// collecting its first `min_samples` samples.
    fn score_and_update(&mut self, key: Key, value_pm: u64) -> Option<Scored> {
        let alpha = self.config.alpha_pm.min(1000);
        let slowdown = self.config.aging_slowdown.max(1);
        let min_samples = self.config.min_samples;
        let warn = self.config.warn_score_pm;
        let value_milli = value_pm * 1000;
        let entry = self.baselines.entry(key).or_insert(Baseline {
            value_milli,
            samples: 0,
            alerting: false,
        });
        let ready = entry.samples >= min_samples;
        let baseline_pm = entry.value_milli / 1000;
        let score_pm = if ready {
            let drop = entry.value_milli.saturating_sub(value_milli);
            drop * 1000 / entry.value_milli.max(1)
        } else {
            0
        };
        entry.alerting = ready && score_pm >= warn;
        let a = if entry.alerting {
            alpha / slowdown
        } else {
            alpha
        };
        entry.value_milli = (a * value_milli + (1000 - a) * entry.value_milli) / 1000;
        entry.samples += 1;
        ready.then_some(Scored {
            score_pm,
            baseline_pm,
        })
    }

    /// Ages a key's baseline without alerting (used when a higher-level
    /// alert already covers the locus this epoch).
    fn update_only(&mut self, key: Key, value_pm: u64) {
        let _ = self.score_and_update(key, value_pm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{IxpVisibility, Visibility};
    use cfs_obs::Virtual;

    fn detector() -> Detector {
        Detector::new(
            DetectorConfig::default(),
            LocusNames::default(),
            Arc::new(Virtual::new()),
        )
    }

    /// Features with one facility bucket at `visible`/`tracked` and
    /// healthy scalars.
    fn fac_features(epoch: u64, visible: u64, tracked: u64) -> EpochFeatures {
        let mut facility = BTreeMap::new();
        facility.insert(FacilityId(0), Visibility { visible, tracked });
        EpochFeatures {
            epoch,
            reached_pm: 900,
            resolution_pm: 950,
            tracked: 40,
            facility,
            facility_private: BTreeMap::new(),
            ixp: BTreeMap::new(),
            ixp_facility: BTreeMap::new(),
        }
    }

    #[test]
    fn baseline_forms_then_collapse_alerts() {
        let mut d = detector();
        for epoch in 0..4 {
            assert!(d.observe_features(&fac_features(epoch, 6, 6)).is_empty());
        }
        let alerts = d.observe_features(&fac_features(4, 0, 6));
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!(a.kind, AlertKind::FacilityOutage);
        assert_eq!(a.severity, Severity::Error);
        assert_eq!(a.epoch, 4);
        assert_eq!(a.observed_pm, 0);
        assert!(a.baseline_pm >= 990, "baseline {}", a.baseline_pm);
        assert_eq!(a.score_pm, 1000);
        assert_eq!(a.facility.as_ref().map(|(id, _)| *id), Some(0));
        // Recovery: healthy again, no alert, baseline survived the
        // outage thanks to slowed aging.
        assert!(d.observe_features(&fac_features(5, 6, 6)).is_empty());
    }

    #[test]
    fn slowed_aging_keeps_multi_epoch_outages_alerting() {
        let mut d = detector();
        for epoch in 0..4 {
            d.observe_features(&fac_features(epoch, 6, 6));
        }
        for epoch in 4..7 {
            let alerts = d.observe_features(&fac_features(epoch, 0, 6));
            assert_eq!(alerts.len(), 1, "epoch {epoch} must still alert");
            assert!(alerts[0].score_pm >= 850, "epoch {epoch} score decayed");
        }
    }

    #[test]
    fn warmup_and_support_floors_suppress_noise() {
        let mut d = detector();
        // Collapse during warmup: min_samples not met, no alert.
        d.observe_features(&fac_features(0, 6, 6));
        assert!(d.observe_features(&fac_features(1, 0, 6)).is_empty());
        // Tiny bucket: a 1/2 interface blip never alerts.
        let mut d2 = detector();
        for epoch in 0..4 {
            d2.observe_features(&fac_features(epoch, 2, 2));
        }
        assert!(d2.observe_features(&fac_features(4, 0, 2)).is_empty());
    }

    #[test]
    fn ixp_flap_localizes_via_missing_facilities() {
        let mut d = detector();
        let healthy = |epoch| {
            let mut f = fac_features(epoch, 6, 6);
            f.ixp.insert(
                IxpId(2),
                IxpVisibility {
                    vis: Visibility {
                        visible: 5,
                        tracked: 5,
                    },
                    missing_facilities: BTreeSet::new(),
                },
            );
            f
        };
        for epoch in 0..4 {
            d.observe_features(&healthy(epoch));
        }
        let mut broken = fac_features(4, 6, 6);
        let mut missing = BTreeSet::new();
        missing.insert(FacilityId(7));
        broken.ixp.insert(
            IxpId(2),
            IxpVisibility {
                vis: Visibility {
                    visible: 1,
                    tracked: 5,
                },
                missing_facilities: missing,
            },
        );
        let alerts = d.observe_features(&broken);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::IxpPortLoss);
        assert_eq!(alerts[0].ixp.as_ref().map(|(id, _)| *id), Some(2));
        assert_eq!(alerts[0].facility.as_ref().map(|(id, _)| *id), Some(7));
    }

    #[test]
    fn facility_slice_catches_a_flap_the_fabric_wide_bucket_dilutes() {
        // One access switch (3 ports, all pinned to facility 5) flaps on
        // a 30-port exchange: fabric-wide visibility only dips to 900‰
        // (score 100, far below warn), but the per-building slice
        // collapses outright and must alert with both loci.
        let mut d = detector();
        let features = |epoch, slice_visible: u64| {
            let mut f = fac_features(epoch, 6, 6);
            f.ixp.insert(
                IxpId(2),
                IxpVisibility {
                    vis: Visibility {
                        visible: 27 + slice_visible,
                        tracked: 30,
                    },
                    missing_facilities: BTreeSet::new(),
                },
            );
            f.ixp_facility.insert(
                (IxpId(2), FacilityId(5)),
                Visibility {
                    visible: slice_visible,
                    tracked: 3,
                },
            );
            f
        };
        for epoch in 0..4 {
            assert!(d.observe_features(&features(epoch, 3)).is_empty());
        }
        let alerts = d.observe_features(&features(4, 0));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::IxpPortLoss);
        assert_eq!(alerts[0].ixp.as_ref().map(|(id, _)| *id), Some(2));
        assert_eq!(alerts[0].facility.as_ref().map(|(id, _)| *id), Some(5));
        assert_eq!(alerts[0].score_pm, 1000);
    }

    #[test]
    fn private_subset_suppressed_under_building_outage() {
        let mut d = detector();
        let features = |epoch, visible| {
            let mut f = fac_features(epoch, visible, 6);
            f.facility_private.insert(
                FacilityId(0),
                Visibility {
                    visible,
                    tracked: 6,
                },
            );
            f
        };
        for epoch in 0..4 {
            d.observe_features(&features(epoch, 6));
        }
        let alerts = d.observe_features(&features(4, 0));
        assert_eq!(alerts.len(), 1, "one alert for the building, not two");
        assert_eq!(alerts[0].kind, AlertKind::FacilityOutage);
    }

    #[test]
    fn identical_streams_render_identical_bytes() {
        let run = || {
            let mut d = detector();
            let mut doc = String::new();
            for epoch in 0..4 {
                d.observe_features(&fac_features(epoch, 6, 6));
            }
            for epoch in 4..6 {
                for a in d.observe_features(&fac_features(epoch, 0, 6)) {
                    doc.push_str(&a.render_json());
                    doc.push('\n');
                }
            }
            doc
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run());
    }
}
