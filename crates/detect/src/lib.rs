//! # cfs-detect
//!
//! Streaming disruption detection at colocation facilities — the
//! Milolidakis-et-al. sequel workload on top of the CFS telemetry stack.
//!
//! The resident session's inference state is cumulative, so a facility
//! going dark never *removes* anything from the report; what changes is
//! which tracked interfaces keep answering probes. Each campaign epoch
//! the daemon summarizes its raw traceroute batch as an
//! [`EpochObservation`], buckets it against the current report's
//! inference ([`EpochFeatures`]: per-facility visibility, the
//! private-peering subset, per-IXP fabric visibility, reached and
//! resolution fractions), and feeds it to the [`Detector`] — one integer
//! EWMA baseline per bucket, exponential aging, slowed while alerting.
//! Divergence beyond the configured floor emits severity-typed,
//! facility-localized [`Alert`]s into a cursor-drained ring, rendered as
//! schema-stable `cfs-alerts/1` JSON lines.
//!
//! Determinism: all scoring is integer arithmetic over `BTreeMap`
//! iteration, timestamps come from the injected `cfs-obs` clock, and the
//! detector only ever *reads* session outputs — enabling it cannot touch
//! the canonical `cfs-trace/1` digest, and under a `Virtual` clock the
//! rendered alert bytes are identical at any thread count.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod alert;
mod detector;
mod features;

pub use alert::{validate_alerts, Alert, AlertKind, AlertLog, AlertsSummary, ALERTS_SCHEMA};
pub use detector::{Detector, DetectorConfig, LocusNames};
pub use features::{extract, EpochFeatures, EpochObservation, IxpVisibility, Visibility};
