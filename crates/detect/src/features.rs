//! Per-epoch feature extraction.
//!
//! The session's inference state is cumulative — observations never
//! expire, so `resolved` does not fall when a building goes dark. What
//! *does* change during a disruption is **visibility**: which of the
//! tracked interfaces answered probes this epoch. [`EpochObservation`]
//! captures the raw per-epoch measurement surface (hop addresses,
//! reached fraction) before the batch is consumed by the session, and
//! [`EpochFeatures`] buckets it against the current report: per inferred
//! facility, per private-peering subset, per IXP fabric, plus the
//! campaign-level scalars.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_core::CfsReport;
use cfs_traceroute::Trace;
use cfs_types::{FacilityId, IxpId};

/// The raw measurement surface of one epoch's campaign, captured from
/// the traceroute batch before the session absorbs it.
#[derive(Clone, Debug, Default)]
pub struct EpochObservation {
    /// The disruption epoch (campaign index).
    pub epoch: u64,
    /// Every hop address that answered in the batch.
    pub hop_ips: BTreeSet<Ipv4Addr>,
    /// Number of traces in the batch.
    pub traces: u64,
    /// Number of traces that reached their target.
    pub reached: u64,
}

impl EpochObservation {
    /// Summarizes `traces` as epoch `epoch`'s observation.
    pub fn from_traces(epoch: u64, traces: &[Trace]) -> Self {
        let mut hop_ips = BTreeSet::new();
        let mut reached = 0u64;
        for t in traces {
            if t.reached {
                reached += 1;
            }
            for hop in &t.hops {
                if let Some(ip) = hop.ip {
                    hop_ips.insert(ip);
                }
            }
        }
        Self {
            epoch,
            hop_ips,
            traces: traces.len() as u64,
            reached,
        }
    }
}

/// Visibility of one interface bucket: how many of its tracked members
/// answered this epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Visibility {
    /// Members whose address appeared as a hop this epoch.
    pub visible: u64,
    /// Members in the bucket.
    pub tracked: u64,
}

impl Visibility {
    /// Visibility as per-mille of the bucket (1000 when empty — an
    /// empty bucket is vacuously healthy).
    pub fn per_mille(&self) -> u64 {
        (self.visible * 1000)
            .checked_div(self.tracked)
            .unwrap_or(1000)
    }
}

/// Visibility of one IXP fabric plus the localization hint: the inferred
/// facilities of the member interfaces that went missing.
#[derive(Clone, Debug, Default)]
pub struct IxpVisibility {
    /// The fabric-wide visibility.
    pub vis: Visibility,
    /// Inferred facilities of tracked-but-invisible member interfaces.
    /// When every missing port pins to one facility, the candidate-set
    /// churn localizes the flap to that building.
    pub missing_facilities: BTreeSet<FacilityId>,
}

/// One epoch's detector input: the observation bucketed by the report's
/// current inference.
#[derive(Clone, Debug)]
pub struct EpochFeatures {
    /// The disruption epoch.
    pub epoch: u64,
    /// Fraction of campaign traces that reached their target, per-mille.
    pub reached_pm: u64,
    /// Fraction of tracked interfaces resolved to a facility, per-mille.
    pub resolution_pm: u64,
    /// Interfaces tracked in total (support for the campaign-level
    /// scalars).
    pub tracked: u64,
    /// Per-facility visibility over every interface inferred there.
    pub facility: BTreeMap<FacilityId, Visibility>,
    /// Per-facility visibility over the private-peering subset.
    pub facility_private: BTreeMap<FacilityId, Visibility>,
    /// Per-exchange visibility over member fabric interfaces.
    pub ixp: BTreeMap<IxpId, IxpVisibility>,
    /// Per-exchange visibility sliced by the members' inferred
    /// facilities. A port flap on one access switch darkens the members
    /// patched there — typically pinned to the switch's building — so
    /// this slice collapses outright even when the exchange-wide bucket
    /// barely moves (large fabrics dilute a single switch).
    pub ixp_facility: BTreeMap<(IxpId, FacilityId), Visibility>,
}

/// Buckets `obs` against `report`'s inference state.
pub fn extract(obs: &EpochObservation, report: &CfsReport) -> EpochFeatures {
    let mut facility: BTreeMap<FacilityId, Visibility> = BTreeMap::new();
    let mut facility_private: BTreeMap<FacilityId, Visibility> = BTreeMap::new();
    let mut ixp: BTreeMap<IxpId, IxpVisibility> = BTreeMap::new();
    let mut ixp_facility: BTreeMap<(IxpId, FacilityId), Visibility> = BTreeMap::new();

    for (ip, iface) in &report.interfaces {
        let visible = obs.hop_ips.contains(ip);
        if let Some(fac) = iface.facility {
            let v = facility.entry(fac).or_default();
            v.tracked += 1;
            v.visible += u64::from(visible);
            if iface.seen_private {
                let v = facility_private.entry(fac).or_default();
                v.tracked += 1;
                v.visible += u64::from(visible);
            }
        }
        for x in &iface.public_ixps {
            let v = ixp.entry(*x).or_default();
            v.vis.tracked += 1;
            v.vis.visible += u64::from(visible);
            if !visible {
                if let Some(fac) = iface.facility {
                    v.missing_facilities.insert(fac);
                }
            }
            if let Some(fac) = iface.facility {
                let slice = ixp_facility.entry((*x, fac)).or_default();
                slice.tracked += 1;
                slice.visible += u64::from(visible);
            }
        }
    }

    let reached_pm = (obs.reached * 1000).checked_div(obs.traces).unwrap_or(1000);
    let tracked = report.total() as u64;
    let resolution_pm = (report.resolved() as u64 * 1000)
        .checked_div(tracked)
        .unwrap_or(1000);

    EpochFeatures {
        epoch: obs.epoch,
        reached_pm,
        resolution_pm,
        tracked,
        facility,
        facility_private,
        ixp,
        ixp_facility,
    }
}
