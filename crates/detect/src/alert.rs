//! The `cfs-alerts/1` stream: severity-typed disruption alerts, a
//! bounded cursor-drained ring, and the document validator.
//!
//! Alert lines follow the same discipline as `cfs-log/1`: hand-rendered
//! JSON with a fixed field order, numeric or controlled-vocabulary
//! values, timestamps from the injected clock only. Rendered bytes are a
//! pure function of the detector's inputs (plus `t_ns` from the clock),
//! so two daemons fed the same epochs under a `Virtual` clock emit
//! byte-identical streams at any thread count.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use cfs_obs::{Clock, Severity};

/// Schema identifier stamped into every rendered alert line.
pub const ALERTS_SCHEMA: &str = "cfs-alerts/1";

/// The alert taxonomy: which baseline family diverged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Whole-building visibility collapse: interfaces inferred at one
    /// facility stopped answering across the board.
    FacilityOutage,
    /// The private-peering subset at one facility went dark while the
    /// building itself kept answering — a cross-connect / patch-panel
    /// signature.
    PrivateLinkLoss,
    /// Member ports of one IXP fabric went missing (facility-localized
    /// when every missing port pins to one building).
    IxpPortLoss,
    /// The campaign's reached fraction fell against baseline.
    ProbeLossSurge,
    /// The resolved fraction fell against baseline.
    ResolutionDrop,
}

impl AlertKind {
    /// The stable kind code on the wire.
    pub fn code(self) -> &'static str {
        match self {
            AlertKind::FacilityOutage => "facility-outage",
            AlertKind::PrivateLinkLoss => "private-link-loss",
            AlertKind::IxpPortLoss => "ixp-port-loss",
            AlertKind::ProbeLossSurge => "probe-loss-surge",
            AlertKind::ResolutionDrop => "resolution-drop",
        }
    }

    /// Every kind, in wire order (validator vocabulary).
    pub const ALL: [AlertKind; 5] = [
        AlertKind::FacilityOutage,
        AlertKind::PrivateLinkLoss,
        AlertKind::IxpPortLoss,
        AlertKind::ProbeLossSurge,
        AlertKind::ResolutionDrop,
    ];
}

/// One emitted alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Monotone sequence number, 0-based; the drain cursor's unit.
    pub seq: u64,
    /// Clock nanoseconds at emission.
    pub t_ns: u64,
    /// The epoch whose features diverged.
    pub epoch: u64,
    /// `warn` or `error` (never `info`).
    pub severity: Severity,
    /// Which baseline family diverged.
    pub kind: AlertKind,
    /// Localized facility (raw id + display name), when the divergence
    /// pins to one building.
    pub facility: Option<(u32, String)>,
    /// The affected exchange, for fabric-level alerts.
    pub ixp: Option<(u32, String)>,
    /// The diverged feature this epoch, per-mille.
    pub observed_pm: u64,
    /// The rolling baseline it diverged from, per-mille.
    pub baseline_pm: u64,
    /// Relative drop against baseline, per-mille (1000 = total loss).
    pub score_pm: u64,
    /// Tracked members of the diverged bucket (alerting floor input).
    pub support: u64,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Alert {
    /// Renders the alert as one `cfs-alerts/1` JSON line (no trailing
    /// newline).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{ALERTS_SCHEMA}\",\"seq\":{},\"t_ns\":{},\"epoch\":{},\
             \"severity\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.t_ns,
            self.epoch,
            self.severity.as_str(),
            self.kind.code()
        );
        if let Some((id, name)) = &self.facility {
            out.push_str(&format!(
                ",\"facility_id\":{id},\"facility\":\"{}\"",
                escape(name)
            ));
        }
        if let Some((id, name)) = &self.ixp {
            out.push_str(&format!(",\"ixp_id\":{id},\"ixp\":\"{}\"", escape(name)));
        }
        out.push_str(&format!(
            ",\"observed_pm\":{},\"baseline_pm\":{},\"score_pm\":{},\"support\":{}}}",
            self.observed_pm, self.baseline_pm, self.score_pm, self.support
        ));
        out
    }

    /// Renders a compact human line (`cfs watch` / `cfs top`).
    pub fn render_text(&self) -> String {
        let mut locus = String::new();
        if let Some((_, name)) = &self.facility {
            locus.push_str(&format!(" facility={name}"));
        }
        if let Some((_, name)) = &self.ixp {
            locus.push_str(&format!(" ixp={name}"));
        }
        format!(
            "[{}] #{:<4} epoch={} {}{} observed={}pm baseline={}pm score={}pm support={}",
            self.severity.as_str(),
            self.seq,
            self.epoch,
            self.kind.code(),
            locus,
            self.observed_pm,
            self.baseline_pm,
            self.score_pm,
            self.support
        )
    }
}

struct RingState {
    next_seq: u64,
    ring: VecDeque<Alert>,
}

/// A bounded in-memory alert ring drained by sequence cursor, mirroring
/// `cfs-obs`'s `EventLog` semantics: pollers never see an alert twice,
/// and a first returned `seq` greater than the cursor betrays eviction.
pub struct AlertLog {
    clock: Arc<dyn Clock>,
    cap: usize,
    state: Mutex<RingState>,
}

impl AlertLog {
    /// An alert log keeping the most recent `cap` alerts.
    pub fn new(clock: Arc<dyn Clock>, cap: usize) -> Self {
        Self {
            clock,
            cap: cap.max(1),
            state: Mutex::new(RingState {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut RingState) -> R) -> R {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            // Plain values only: recover from poisoning and keep serving.
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Stamps `seq`/`t_ns` onto `draft` and retains it; returns the
    /// finished alert.
    pub fn emit(&self, mut draft: Alert) -> Alert {
        draft.t_ns = self.clock.now_ns();
        self.with_state(|st| {
            draft.seq = st.next_seq;
            st.next_seq += 1;
            st.ring.push_back(draft.clone());
            while st.ring.len() > self.cap {
                st.ring.pop_front();
            }
        });
        draft
    }

    /// Every retained alert with `seq >= cursor`, oldest first, plus the
    /// next cursor (one past the newest alert ever emitted).
    pub fn since(&self, cursor: u64) -> (Vec<Alert>, u64) {
        self.with_state(|st| {
            let alerts = st
                .ring
                .iter()
                .filter(|a| a.seq >= cursor)
                .cloned()
                .collect();
            (alerts, st.next_seq)
        })
    }

    /// Retained alert count.
    pub fn len(&self) -> usize {
        self.with_state(|st| st.ring.len())
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total alerts ever emitted (the next cursor).
    pub fn total(&self) -> u64 {
        self.with_state(|st| st.next_seq)
    }
}

/// Summary of a validated alert document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertsSummary {
    /// Lines validated.
    pub alerts: usize,
    /// Alerts at `error` severity.
    pub errors: usize,
    /// Alerts carrying a facility localization.
    pub localized: usize,
}

/// Validates a `cfs-alerts/1` document: one JSON line per alert, schema
/// stamp, controlled severity/kind vocabulary, per-mille ranges,
/// locus-field requirements per kind, and strictly increasing `seq`.
/// Blank lines are ignored.
pub fn validate_alerts(text: &str) -> Result<AlertsSummary, String> {
    let mut last_seq: Option<u64> = None;
    let mut summary = AlertsSummary {
        alerts: 0,
        errors: 0,
        localized: 0,
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        let obj = v
            .as_object()
            .ok_or_else(|| format!("line {n}: not a JSON object"))?;
        let schema = obj.get("schema").and_then(|s| s.as_str());
        if schema != Some(ALERTS_SCHEMA) {
            return Err(format!(
                "line {n}: schema is {schema:?}, want {ALERTS_SCHEMA:?}"
            ));
        }
        let num = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("line {n}: missing or non-integer {key:?}"))
        };
        let seq = num("seq")?;
        num("t_ns")?;
        num("epoch")?;
        let support = num("support")?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {n}: seq {seq} not after {prev}"));
            }
        }
        last_seq = Some(seq);
        let severity = obj
            .get("severity")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("line {n}: missing severity"))?;
        if severity != "warn" && severity != "error" {
            return Err(format!(
                "line {n}: severity {severity:?} not in [warn, error]"
            ));
        }
        let kind = obj
            .get("kind")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("line {n}: missing kind"))?;
        if !AlertKind::ALL.iter().any(|k| k.code() == kind) {
            return Err(format!("line {n}: unknown kind {kind:?}"));
        }
        for pm_key in ["observed_pm", "baseline_pm", "score_pm"] {
            let pm = num(pm_key)?;
            if pm > 1000 {
                return Err(format!("line {n}: {pm_key} {pm} out of per-mille range"));
            }
        }
        let has_fac = obj.get("facility_id").is_some() && obj.get("facility").is_some();
        let has_ixp = obj.get("ixp_id").is_some() && obj.get("ixp").is_some();
        match kind {
            "facility-outage" | "private-link-loss" if !has_fac => {
                return Err(format!("line {n}: kind {kind:?} requires a facility locus"));
            }
            "ixp-port-loss" if !has_ixp => {
                return Err(format!("line {n}: kind {kind:?} requires an ixp locus"));
            }
            _ => {}
        }
        if matches!(
            kind,
            "facility-outage" | "private-link-loss" | "ixp-port-loss"
        ) && support == 0
        {
            return Err(format!("line {n}: localized kind with zero support"));
        }
        summary.alerts += 1;
        summary.errors += usize::from(severity == "error");
        summary.localized += usize::from(has_fac);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_obs::Virtual;

    fn draft(epoch: u64) -> Alert {
        Alert {
            seq: 0,
            t_ns: 0,
            epoch,
            severity: Severity::Error,
            kind: AlertKind::FacilityOutage,
            facility: Some((3, "equinix fra3".into())),
            ixp: None,
            observed_pm: 0,
            baseline_pm: 990,
            score_pm: 1000,
            support: 6,
        }
    }

    #[test]
    fn rendered_lines_validate() {
        let clock = Arc::new(Virtual::new());
        let log = AlertLog::new(clock.clone(), 8);
        log.emit(draft(5));
        clock.advance(1_000);
        let mut flap = draft(6);
        flap.kind = AlertKind::IxpPortLoss;
        flap.ixp = Some((1, "fra-ix".into()));
        flap.severity = Severity::Warn;
        log.emit(flap);
        let (alerts, next) = log.since(0);
        assert_eq!(next, 2);
        let doc: String = alerts.iter().map(|a| a.render_json() + "\n").collect();
        let summary = validate_alerts(&doc).expect("valid document");
        assert_eq!(
            summary,
            AlertsSummary {
                alerts: 2,
                errors: 1,
                localized: 2
            }
        );
        assert!(alerts[0].render_json().starts_with(
            "{\"schema\":\"cfs-alerts/1\",\"seq\":0,\"t_ns\":0,\"epoch\":5,\
             \"severity\":\"error\",\"kind\":\"facility-outage\""
        ));
        assert_eq!(alerts[1].t_ns, 1_000);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let ok = draft(1).render_json();
        assert!(validate_alerts(&ok).is_ok());
        // Broken schema stamp.
        assert!(validate_alerts(&ok.replace("cfs-alerts/1", "cfs-alerts/9")).is_err());
        // Unknown kind.
        assert!(validate_alerts(&ok.replace("facility-outage", "volcano")).is_err());
        // Missing locus for a localized kind.
        let mut bare = draft(1);
        bare.facility = None;
        assert!(validate_alerts(&bare.render_json()).is_err());
        // Replayed cursor.
        let twice = format!("{ok}\n{ok}\n");
        assert!(validate_alerts(&twice).is_err());
        // Per-mille overflow.
        let mut hot = draft(1);
        hot.score_pm = 1001;
        assert!(validate_alerts(&hot.render_json()).is_err());
    }

    #[test]
    fn ring_eviction_shows_in_cursor_gap() {
        let log = AlertLog::new(Arc::new(Virtual::new()), 2);
        for epoch in 0..5 {
            log.emit(draft(epoch));
        }
        let (alerts, next) = log.since(0);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].seq, 3);
        assert_eq!(next, 5);
        assert_eq!(log.total(), 5);
    }
}
