//! Fault profiles and the seeded, stateless fault plan.

use crate::splitmix64;

/// Per-mille ceiling: probabilities are expressed as integers in
/// `0..=1000` so profiles stay hashable, exact, and composable without
/// floating point.
const PM: u64 = 1000;

/// Knobs for one fault dimension set, expressed in per-mille (`0..=1000`).
///
/// Profiles are plain data: compose them with [`FaultProfile::merge`],
/// look named ones up with [`FaultProfile::named`], or parse a
/// `+`-separated spec (`"flaky+stale-kb"`) with [`FaultProfile::parse`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    // ---- measurement plane ----
    /// Probability a vantage point is dark for a given outage window.
    pub vp_outage_pm: u32,
    /// Length of a VP outage window in virtual milliseconds.
    pub outage_window_ms: u64,
    /// Per-probe transient timeout probability (the whole probe, not a
    /// single hop, is lost; a retry at a different instant can succeed).
    pub probe_timeout_pm: u32,
    /// Per-router *persistent* silence: the router never answers for the
    /// lifetime of the plan, so retries cannot help.
    pub router_silent_pm: u32,
    /// Probability a router is in an ICMP rate-limiting episode for a
    /// given time slot.
    pub rate_limit_episode_pm: u32,
    /// Fraction of probes dropped while an episode is active (the
    /// slotted token bucket's over-budget share).
    pub rate_limit_drop_pm: u32,
    /// Width of a rate-limit time slot in virtual milliseconds.
    pub rate_limit_slot_ms: u64,
    /// Per-trace probability the path is truncated mid-way.
    pub truncate_pm: u32,
    /// Per-trace probability a forwarding loop repeats the tail hops.
    pub loop_pm: u32,
    // ---- knowledge plane ----
    /// Per-member probability an IXP member row lags out of the KB
    /// snapshot (stale member lists).
    pub kb_member_lag_pm: u32,
    /// Per-facility probability the facility record vanished from the
    /// snapshot.
    pub kb_facility_loss_pm: u32,
    /// Per-network probability the PeeringDB record self-contradicts
    /// (facility list rewritten with plausible-but-wrong entries).
    pub kb_conflict_pm: u32,
    /// Width of the knowledge-plane refresh window in virtual
    /// milliseconds. Zero means the KB snapshot is coherent (every
    /// record fetched at the same instant); non-zero places one seeded
    /// *flip instant* inside the window and assigns every record a
    /// seeded fetch instant, so records land in a pre- or post-refresh
    /// epoch — a torn snapshot, the `mid-kb-refresh` failure mode.
    pub kb_refresh_window_ms: u64,
}

impl FaultProfile {
    /// The all-zero profile: injects nothing.
    #[must_use]
    pub const fn off() -> Self {
        Self {
            vp_outage_pm: 0,
            outage_window_ms: 3_600_000,
            probe_timeout_pm: 0,
            router_silent_pm: 0,
            rate_limit_episode_pm: 0,
            rate_limit_drop_pm: 0,
            rate_limit_slot_ms: 600_000,
            truncate_pm: 0,
            loop_pm: 0,
            kb_member_lag_pm: 0,
            kb_facility_loss_pm: 0,
            kb_conflict_pm: 0,
            kb_refresh_window_ms: 0,
        }
    }

    /// The standard mixed profile (`--faults default`): a little of
    /// everything, calibrated so a tiny-scale run still resolves most
    /// interfaces — dirty data, not a dead measurement plane.
    #[must_use]
    pub const fn standard() -> Self {
        Self {
            vp_outage_pm: 30,
            probe_timeout_pm: 30,
            router_silent_pm: 20,
            rate_limit_episode_pm: 100,
            rate_limit_drop_pm: 400,
            truncate_pm: 20,
            loop_pm: 10,
            kb_member_lag_pm: 30,
            kb_facility_loss_pm: 10,
            kb_conflict_pm: 20,
            ..Self::off()
        }
    }

    /// Measurement-plane-only noise: flapping probes and rate limiting,
    /// clean knowledge base.
    #[must_use]
    pub const fn flaky() -> Self {
        Self {
            vp_outage_pm: 50,
            probe_timeout_pm: 80,
            rate_limit_episode_pm: 200,
            rate_limit_drop_pm: 500,
            truncate_pm: 50,
            loop_pm: 30,
            ..Self::off()
        }
    }

    /// Infrastructure going dark: long VP outages plus persistently
    /// silent routers.
    #[must_use]
    pub const fn blackout() -> Self {
        Self {
            vp_outage_pm: 200,
            outage_window_ms: 7_200_000,
            router_silent_pm: 80,
            ..Self::off()
        }
    }

    /// Knowledge-plane-only rot: stale member lists, vanished
    /// facilities, self-contradicting network records; probes are clean.
    #[must_use]
    pub const fn stale_kb() -> Self {
        Self {
            kb_member_lag_pm: 150,
            kb_facility_loss_pm: 50,
            kb_conflict_pm: 80,
            ..Self::off()
        }
    }

    /// The knowledge plane flipping mid-campaign: the same rot dials as
    /// [`Self::stale_kb`], but with a one-day refresh window, so each
    /// source record is fetched either before or after a seeded flip
    /// instant. IXP-website and PeeringDB views of the same member can
    /// then disagree — the torn-snapshot inconsistency §3 of the paper
    /// warns about, rather than mere uniform staleness.
    #[must_use]
    pub const fn mid_kb_refresh() -> Self {
        Self {
            kb_refresh_window_ms: 86_400_000,
            ..Self::stale_kb()
        }
    }

    /// Contaminated-source pressure: one record in five self-contradicts
    /// (the ISSUE-9 "20% contested records" scenario), with the other
    /// knowledge-plane dials quiet so the reconciliation layer — not the
    /// staleness machinery — is what absorbs the damage. Compose with
    /// `stale-kb` for the full dirty-KB smoke (`stale-kb+conflict`).
    #[must_use]
    pub const fn conflict() -> Self {
        Self {
            kb_conflict_pm: 200,
            ..Self::off()
        }
    }

    /// A pure probe-loss profile at `pm` per-mille, for sweeping
    /// accuracy-vs-fault-rate curves.
    #[must_use]
    pub const fn probe_loss(pm: u32) -> Self {
        Self {
            probe_timeout_pm: pm,
            ..Self::off()
        }
    }

    /// A pure record-conflict profile at `pm` per-mille, for sweeping
    /// coverage-retention-vs-conflict-rate curves.
    #[must_use]
    pub const fn conflict_rate(pm: u32) -> Self {
        Self {
            kb_conflict_pm: pm,
            ..Self::off()
        }
    }

    /// Looks up a named profile: `off`, `default`, `flaky`, `blackout`,
    /// `stale-kb`, `mid-kb-refresh`, `conflict`.
    #[must_use]
    pub fn named(name: &str) -> Option<Self> {
        Some(match name {
            "off" => Self::off(),
            "default" => Self::standard(),
            "flaky" => Self::flaky(),
            "blackout" => Self::blackout(),
            "stale-kb" => Self::stale_kb(),
            "mid-kb-refresh" => Self::mid_kb_refresh(),
            "conflict" => Self::conflict(),
            _ => return None,
        })
    }

    /// Parses a `+`-separated composition of named profiles
    /// (`"flaky+stale-kb"`), merging left to right.
    #[must_use]
    pub fn parse(spec: &str) -> Option<Self> {
        let mut out = Self::off();
        for part in spec.split('+') {
            out = out.merge(&Self::named(part.trim())?);
        }
        Some(out)
    }

    /// Composes two profiles: probabilities add (saturating at 1000, a
    /// certainty), window/slot widths take the more aggressive — larger
    /// outage windows, finer rate-limit slots.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let add = |a: u32, b: u32| (a + b).min(PM as u32);
        Self {
            vp_outage_pm: add(self.vp_outage_pm, other.vp_outage_pm),
            outage_window_ms: self.outage_window_ms.max(other.outage_window_ms),
            probe_timeout_pm: add(self.probe_timeout_pm, other.probe_timeout_pm),
            router_silent_pm: add(self.router_silent_pm, other.router_silent_pm),
            rate_limit_episode_pm: add(self.rate_limit_episode_pm, other.rate_limit_episode_pm),
            rate_limit_drop_pm: add(self.rate_limit_drop_pm, other.rate_limit_drop_pm),
            rate_limit_slot_ms: self.rate_limit_slot_ms.min(other.rate_limit_slot_ms),
            truncate_pm: add(self.truncate_pm, other.truncate_pm),
            loop_pm: add(self.loop_pm, other.loop_pm),
            kb_member_lag_pm: add(self.kb_member_lag_pm, other.kb_member_lag_pm),
            kb_facility_loss_pm: add(self.kb_facility_loss_pm, other.kb_facility_loss_pm),
            kb_conflict_pm: add(self.kb_conflict_pm, other.kb_conflict_pm),
            kb_refresh_window_ms: self.kb_refresh_window_ms.max(other.kb_refresh_window_ms),
        }
    }

    /// Whether this profile injects anything at all.
    #[must_use]
    pub const fn is_off(&self) -> bool {
        self.vp_outage_pm == 0
            && self.probe_timeout_pm == 0
            && self.router_silent_pm == 0
            && self.rate_limit_episode_pm == 0
            && self.truncate_pm == 0
            && self.loop_pm == 0
            && self.kb_member_lag_pm == 0
            && self.kb_facility_loss_pm == 0
            && self.kb_conflict_pm == 0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::off()
    }
}

/// A seeded fault plan: a [`FaultProfile`] bound to a run seed.
///
/// Every query is a pure function of `(seed, identity, time slot)`;
/// see the crate docs for why that is the determinism-preserving shape.
/// Identities are caller-hashed `u64` keys — a VP id, a router's IPv4
/// address as `u32`, an ASN — so the plan stays substrate-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

// Domain-separation constants so the same (entity, slot) pair never
// reuses a hash stream across fault dimensions.
const D_VP_OUTAGE: u64 = 0xc4a0_5001;
const D_PROBE_TIMEOUT: u64 = 0xc4a0_5002;
const D_ROUTER_SILENT: u64 = 0xc4a0_5003;
const D_RATE_EPISODE: u64 = 0xc4a0_5004;
const D_RATE_TICKET: u64 = 0xc4a0_5005;
const D_TRUNCATE: u64 = 0xc4a0_5006;
const D_LOOP: u64 = 0xc4a0_5007;
const D_KB_MEMBER: u64 = 0xc4a0_5008;
const D_KB_FACILITY: u64 = 0xc4a0_5009;
const D_KB_CONFLICT: u64 = 0xc4a0_500a;
const D_KB_PICK: u64 = 0xc4a0_500b;
const D_KB_REFRESH: u64 = 0xc4a0_500c;
const D_KB_FETCH: u64 = 0xc4a0_500d;

/// Mixed into a decision's entity key per post-refresh epoch, so epoch 1
/// rolls fresh dice while epoch 0 is bit-identical to the coherent
/// (no-refresh) snapshot. Golden-ratio constant, same family as
/// `splitmix64`'s increment.
const EPOCH_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Source tag for IXP-website site listings (see [`FaultPlan::kb_fetch_epoch`]).
pub const KB_SOURCE_IXP_SITE: u64 = 1;
/// Source tag for PeeringDB network records.
pub const KB_SOURCE_PDB_NET: u64 = 2;
/// Source tag for PeeringDB facility records.
pub const KB_SOURCE_PDB_FAC: u64 = 3;

impl FaultPlan {
    /// Binds a profile to a run seed.
    #[must_use]
    pub const fn new(seed: u64, profile: FaultProfile) -> Self {
        Self { seed, profile }
    }

    /// Parses a `+`-separated profile spec and binds it to `seed`.
    #[must_use]
    pub fn named(spec: &str, seed: u64) -> Option<Self> {
        FaultProfile::parse(spec).map(|p| Self::new(seed, p))
    }

    /// The profile in effect.
    #[must_use]
    pub const fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The bound seed.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing (fast-path for wrappers).
    #[must_use]
    pub const fn is_off(&self) -> bool {
        self.profile.is_off()
    }

    fn hash(&self, domain: u64, a: u64, b: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(domain ^ splitmix64(a) ^ b.rotate_left(23)))
    }

    fn decide(&self, domain: u64, a: u64, b: u64, pm: u32) -> bool {
        pm > 0 && self.hash(domain, a, b) % PM < u64::from(pm)
    }

    // ---- measurement plane ----

    /// Is vantage point `vp` dark at `at_ms`? Outages come in whole
    /// windows: the same VP is down for every probe inside an affected
    /// window, which is what makes fallback VP selection worthwhile.
    #[must_use]
    pub fn vp_down(&self, vp: u64, at_ms: u64) -> bool {
        let window = at_ms / self.profile.outage_window_ms.max(1);
        self.decide(D_VP_OUTAGE, vp, window, self.profile.vp_outage_pm)
    }

    /// Does the probe `(vp, target)` launched at `at_ms` time out in
    /// transit? Transient: keyed on the exact instant, so a retry at a
    /// backed-off time rolls new dice.
    #[must_use]
    pub fn probe_timeout(&self, vp: u64, target: u64, at_ms: u64) -> bool {
        self.decide(
            D_PROBE_TIMEOUT,
            vp ^ target.rotate_left(32),
            at_ms,
            self.profile.probe_timeout_pm,
        )
    }

    /// Is `router` persistently silent? Time-independent: retries never
    /// help, the search must route around it.
    #[must_use]
    pub fn router_silent(&self, router: u64) -> bool {
        self.decide(D_ROUTER_SILENT, router, 0, self.profile.router_silent_pm)
    }

    /// Does `router` suppress the reply to `probe` at `at_ms`? The
    /// slotted token bucket: the router is in an episode for hash-chosen
    /// slots, and within one, a probe's deterministic ticket decides
    /// whether it falls over the reply budget.
    #[must_use]
    pub fn rate_limited(&self, router: u64, probe: u64, at_ms: u64) -> bool {
        let slot = at_ms / self.profile.rate_limit_slot_ms.max(1);
        self.decide(
            D_RATE_EPISODE,
            router,
            slot,
            self.profile.rate_limit_episode_pm,
        ) && self.decide(
            D_RATE_TICKET,
            router ^ probe.rotate_left(17),
            slot,
            self.profile.rate_limit_drop_pm,
        )
    }

    /// If the trace `(vp, target, at_ms)` is truncated, the hop count to
    /// keep (`1..len`); `None` leaves the path intact.
    #[must_use]
    pub fn truncate_len(&self, vp: u64, target: u64, at_ms: u64, len: usize) -> Option<usize> {
        if len < 2 || !self.decide(D_TRUNCATE, vp ^ target, at_ms, self.profile.truncate_pm) {
            return None;
        }
        let h = self.hash(D_TRUNCATE, vp ^ target ^ 1, at_ms);
        Some(1 + (h as usize) % (len - 1))
    }

    /// If the trace `(vp, target, at_ms)` hits a forwarding loop, the
    /// `(start_hop, repetitions)` of the looping tail; `None` for a
    /// loop-free path.
    #[must_use]
    pub fn loop_segment(
        &self,
        vp: u64,
        target: u64,
        at_ms: u64,
        len: usize,
    ) -> Option<(usize, usize)> {
        if len < 2 || !self.decide(D_LOOP, vp ^ target, at_ms, self.profile.loop_pm) {
            return None;
        }
        let h = self.hash(D_LOOP, vp ^ target ^ 1, at_ms);
        let start = (h as usize) % (len - 1);
        let reps = 2 + ((h >> 32) as usize) % 2;
        Some((start, reps))
    }

    // ---- knowledge plane ----

    /// The seeded instant inside [`FaultProfile::kb_refresh_window_ms`]
    /// at which the upstream knowledge plane flipped, or `None` when the
    /// snapshot is coherent (window is zero).
    #[must_use]
    pub fn kb_refresh_at_ms(&self) -> Option<u64> {
        let window = self.profile.kb_refresh_window_ms;
        (window > 0).then(|| self.hash(D_KB_REFRESH, 0, 0) % window)
    }

    /// The refresh epoch a record was fetched in: 0 before the flip
    /// instant, 1 after. `source` is a [`KB_SOURCE_IXP_SITE`]-style tag
    /// and `entity` the record's key, so different sources fetch the
    /// "same" entity at independent seeded instants — the tear. Always 0
    /// when no refresh is active, keeping every epoch-aware decision
    /// bit-identical to its coherent-snapshot counterpart.
    #[must_use]
    pub fn kb_fetch_epoch(&self, source: u64, entity: u64) -> u64 {
        let Some(flip) = self.kb_refresh_at_ms() else {
            return 0;
        };
        let fetched = self.hash(D_KB_FETCH, source, entity) % self.profile.kb_refresh_window_ms;
        u64::from(fetched >= flip)
    }

    /// Mixes a fetch epoch into an entity key. Epoch 0 is the identity.
    const fn epoch_key(entity: u64, epoch: u64) -> u64 {
        entity ^ epoch.wrapping_mul(EPOCH_MIX)
    }

    /// Did member `member` of exchange `ixp` lag out of the coherent KB
    /// snapshot? Epoch-0 shorthand for [`Self::drop_kb_member_at`].
    #[must_use]
    pub fn drop_kb_member(&self, ixp: u64, member: u64) -> bool {
        self.drop_kb_member_at(ixp, member, 0)
    }

    /// Did member `member` of exchange `ixp` lag out of the snapshot
    /// fetched in `epoch`?
    #[must_use]
    pub fn drop_kb_member_at(&self, ixp: u64, member: u64, epoch: u64) -> bool {
        self.decide(
            D_KB_MEMBER,
            ixp,
            Self::epoch_key(member, epoch),
            self.profile.kb_member_lag_pm,
        )
    }

    /// Did facility `fac` vanish from the coherent snapshot? Epoch-0
    /// shorthand for [`Self::delete_kb_facility_at`].
    #[must_use]
    pub fn delete_kb_facility(&self, fac: u64) -> bool {
        self.delete_kb_facility_at(fac, 0)
    }

    /// Did facility `fac` vanish from the snapshot fetched in `epoch`?
    #[must_use]
    pub fn delete_kb_facility_at(&self, fac: u64, epoch: u64) -> bool {
        self.decide(
            D_KB_FACILITY,
            Self::epoch_key(fac, epoch),
            0,
            self.profile.kb_facility_loss_pm,
        )
    }

    /// Is network `asn`'s record self-contradictory in the coherent
    /// snapshot? Epoch-0 shorthand for [`Self::conflict_kb_network_at`].
    #[must_use]
    pub fn conflict_kb_network(&self, asn: u64) -> bool {
        self.conflict_kb_network_at(asn, 0)
    }

    /// Is network `asn`'s record self-contradictory in the snapshot
    /// fetched in `epoch`?
    #[must_use]
    pub fn conflict_kb_network_at(&self, asn: u64, epoch: u64) -> bool {
        self.decide(
            D_KB_CONFLICT,
            Self::epoch_key(asn, epoch),
            0,
            self.profile.kb_conflict_pm,
        )
    }

    /// Deterministic index into a pool of `n` replacement candidates,
    /// for rewriting a conflicted record's entry `slot`. Returns `None`
    /// for an empty pool. Epoch-0 shorthand for
    /// [`Self::conflict_pick_at`].
    #[must_use]
    pub fn conflict_pick(&self, asn: u64, slot: u64, n: usize) -> Option<usize> {
        self.conflict_pick_at(asn, slot, n, 0)
    }

    /// Deterministic replacement pick for the record fetched in `epoch`.
    #[must_use]
    pub fn conflict_pick_at(&self, asn: u64, slot: u64, n: usize, epoch: u64) -> Option<usize> {
        if n == 0 {
            return None;
        }
        Some((self.hash(D_KB_PICK, Self::epoch_key(asn, epoch), slot) as usize) % n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42, FaultProfile::standard())
    }

    #[test]
    fn decisions_are_pure_functions() {
        let p = plan();
        for vp in 0..16u64 {
            for t in [0u64, 60_000, 3_600_000] {
                assert_eq!(p.vp_down(vp, t), p.vp_down(vp, t));
                assert_eq!(p.probe_timeout(vp, 99, t), p.probe_timeout(vp, 99, t));
                assert_eq!(p.rate_limited(vp, 7, t), p.rate_limited(vp, 7, t));
            }
        }
    }

    #[test]
    fn off_profile_injects_nothing() {
        let p = FaultPlan::new(7, FaultProfile::off());
        assert!(p.is_off());
        for k in 0..500u64 {
            assert!(!p.vp_down(k, k * 1000));
            assert!(!p.probe_timeout(k, k ^ 3, k));
            assert!(!p.router_silent(k));
            assert!(!p.rate_limited(k, k, k));
            assert!(p.truncate_len(k, k, k, 10).is_none());
            assert!(p.loop_segment(k, k, k, 10).is_none());
            assert!(!p.drop_kb_member(k, k));
            assert!(!p.delete_kb_facility(k));
            assert!(!p.conflict_kb_network(k));
        }
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let a = FaultPlan::new(1, FaultProfile::flaky());
        let b = FaultPlan::new(2, FaultProfile::flaky());
        let diverges = (0..4000u64).any(|k| a.probe_timeout(k, 0, 0) != b.probe_timeout(k, 0, 0));
        assert!(diverges, "seeds 1 and 2 produced identical timeout streams");
    }

    #[test]
    fn outages_cover_whole_windows() {
        let p = FaultPlan::new(
            11,
            FaultProfile {
                vp_outage_pm: 500,
                outage_window_ms: 1000,
                ..FaultProfile::off()
            },
        );
        let vp = (0..64).find(|&v| p.vp_down(v, 0)).expect("some VP down");
        for t in 0..1000 {
            assert!(p.vp_down(vp, t), "outage must span its whole window");
        }
    }

    #[test]
    fn truncation_stays_in_bounds() {
        let p = FaultPlan::new(
            3,
            FaultProfile {
                truncate_pm: 1000,
                ..FaultProfile::off()
            },
        );
        for len in 2..40 {
            let k = p.truncate_len(1, 2, 3, len).unwrap();
            assert!(k >= 1 && k < len);
        }
        assert!(p.truncate_len(1, 2, 3, 1).is_none());
    }

    #[test]
    fn probe_loss_rate_tracks_the_knob() {
        let p = FaultPlan::new(5, FaultProfile::probe_loss(100)); // 10%
        let lost = (0..10_000u64)
            .filter(|&k| p.probe_timeout(k, k ^ 0xbeef, 0))
            .count();
        assert!(
            (800..1200).contains(&lost),
            "10% knob produced {lost}/10000"
        );
    }

    #[test]
    fn named_profiles_parse_and_compose() {
        assert_eq!(FaultProfile::parse("off"), Some(FaultProfile::off()));
        assert_eq!(
            FaultProfile::parse("default"),
            Some(FaultProfile::standard())
        );
        assert_eq!(FaultProfile::parse("bogus"), None);
        let both = FaultProfile::parse("flaky+stale-kb").unwrap();
        assert_eq!(
            both.probe_timeout_pm,
            FaultProfile::flaky().probe_timeout_pm
        );
        assert_eq!(
            both.kb_member_lag_pm,
            FaultProfile::stale_kb().kb_member_lag_pm
        );
        assert!(!both.is_off());
    }

    #[test]
    fn conflict_profile_contests_one_in_five_and_composes() {
        let solo = FaultProfile::named("conflict").unwrap();
        assert_eq!(solo.kb_conflict_pm, 200);
        assert!(!solo.is_off());
        let dirty = FaultProfile::parse("stale-kb+conflict").unwrap();
        assert_eq!(
            dirty.kb_conflict_pm,
            FaultProfile::stale_kb().kb_conflict_pm + 200
        );
        assert_eq!(
            dirty.kb_member_lag_pm,
            FaultProfile::stale_kb().kb_member_lag_pm
        );
    }

    #[test]
    fn no_refresh_means_one_epoch_and_unchanged_decisions() {
        let p = FaultPlan::new(42, FaultProfile::stale_kb());
        assert_eq!(p.kb_refresh_at_ms(), None);
        for k in 0..200u64 {
            assert_eq!(p.kb_fetch_epoch(KB_SOURCE_IXP_SITE, k), 0);
            // Epoch-aware calls at epoch 0 are the legacy decisions.
            assert_eq!(p.drop_kb_member_at(7, k, 0), p.drop_kb_member(7, k));
            assert_eq!(p.delete_kb_facility_at(k, 0), p.delete_kb_facility(k));
            assert_eq!(p.conflict_kb_network_at(k, 0), p.conflict_kb_network(k));
        }
    }

    #[test]
    fn mid_refresh_tears_the_snapshot_between_sources() {
        let p = FaultPlan::new(42, FaultProfile::mid_kb_refresh());
        let flip = p.kb_refresh_at_ms().expect("refresh active");
        assert!(flip < FaultProfile::mid_kb_refresh().kb_refresh_window_ms);
        // Both epochs must occur across sources/entities, and the same
        // entity must land in different epochs for some pair of sources
        // — that inter-source disagreement is the failure mode.
        let mut epochs = [false; 2];
        let mut torn = false;
        for k in 0..500u64 {
            let site = p.kb_fetch_epoch(KB_SOURCE_IXP_SITE, k);
            let pdb = p.kb_fetch_epoch(KB_SOURCE_PDB_NET, k);
            epochs[site as usize] = true;
            epochs[pdb as usize] = true;
            torn |= site != pdb;
        }
        assert!(epochs[0] && epochs[1], "flip instant splits the window");
        assert!(torn, "some entity fetched on opposite sides of the flip");
    }

    #[test]
    fn epochs_roll_independent_dice() {
        let p = FaultPlan::new(9, FaultProfile::mid_kb_refresh());
        let disagrees =
            (0..2000u64).any(|m| p.drop_kb_member_at(3, m, 0) != p.drop_kb_member_at(3, m, 1));
        assert!(disagrees, "epoch 1 must not mirror epoch 0");
    }

    #[test]
    fn mid_kb_refresh_parses_and_merges_windows() {
        let p = FaultProfile::parse("mid-kb-refresh").unwrap();
        assert_eq!(p.kb_refresh_window_ms, 86_400_000);
        assert!(!p.is_off());
        let merged = FaultProfile::stale_kb().merge(&p);
        assert_eq!(merged.kb_refresh_window_ms, 86_400_000);
        assert_eq!(
            FaultProfile::off()
                .merge(&FaultProfile::off())
                .kb_refresh_window_ms,
            0
        );
    }

    #[test]
    fn merge_saturates_probabilities() {
        let hot = FaultProfile {
            probe_timeout_pm: 900,
            ..FaultProfile::off()
        };
        assert_eq!(hot.merge(&hot).probe_timeout_pm, 1000);
    }
}
