//! # cfs-chaos
//!
//! Deterministic fault injection for the CFS pipeline: a seeded
//! [`FaultPlan`] that perturbs the measurement plane (ICMP rate-limit
//! episodes, vantage-point outages, transient and persistent timeouts,
//! truncated and looping traces) and the knowledge plane (lagged IXP
//! member lists, deleted facilities, conflicting network records), plus
//! the resilience primitives the search uses to survive it:
//! [`RetryPolicy`], [`RetryBudget`], and a per-key [`CircuitBreaker`].
//!
//! Like `cfs-obs` and `cfs-lint`, this crate is dependency-free: it
//! sits underneath every perturbed crate and must never pull substrate
//! code (or an RNG crate) along.
//!
//! ## Determinism
//!
//! Every fault decision is a **pure hash function** of the plan seed,
//! the entity identity the caller supplies (a `u64` key — a VP id, a
//! router address, an ASN), and, where relevant, a time slot. There is
//! no hidden mutable state, so the same plan gives the same answer for
//! the same probe no matter which worker thread asks, in what order, or
//! how work was chunked — the byte-identical-report guarantee
//! (DESIGN.md §5) holds under chaos. Rate limiting, which in the wild
//! is a stateful token bucket, is modelled as a *slotted* bucket: a
//! router is in a rate-limiting episode for hash-chosen time slots, and
//! within an episode each probe's deterministic ticket decides whether
//! it falls inside the slot's reply budget.
//!
//! Stateful pieces — the retry budget and the circuit breaker — live
//! with the *caller*, which updates them serially in submission order
//! after each fan-out (never from worker threads).
//!
//! ```
//! use cfs_chaos::{FaultPlan, FaultProfile};
//!
//! let plan = FaultPlan::new(7, FaultProfile::named("default").unwrap());
//! // Same question, same answer — forever.
//! assert_eq!(plan.vp_down(3, 60_000), plan.vp_down(3, 60_000));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod plan;
mod retry;

pub use plan::{FaultPlan, FaultProfile, KB_SOURCE_IXP_SITE, KB_SOURCE_PDB_FAC, KB_SOURCE_PDB_NET};
pub use retry::{CircuitBreaker, RetryBudget, RetryPolicy};

/// SplitMix64 — the workspace's standard parameter-mixing hash (the
/// same finalizer `cfs-traceroute` and `cfs-alias` use to derive
/// per-call RNG streams).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// Plans cross the engine's scoped-worker boundary; prove it at compile
// time like cfs-core does for its substrate types.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn sync<T: Sync + Send>() {}
    sync::<FaultPlan>();
    sync::<FaultProfile>();
    sync::<RetryPolicy>();
    sync::<RetryBudget>();
    sync::<CircuitBreaker>();
}
