//! Budgeted retry with deterministic backoff, and the per-key circuit
//! breaker.
//!
//! These are the *stateful* resilience pieces, so they are designed for
//! serial use: the search updates them in submission order after each
//! fan-out completes, never from worker threads. Backoff delays are
//! virtual milliseconds on the caller's campaign clock (the injectable
//! `cfs_obs::Clock` world) — nothing here sleeps.

use std::collections::BTreeMap;

use crate::splitmix64;

/// Deterministic exponential backoff with seeded jitter.
///
/// `delay_ms(seed, attempt)` is a pure function: the jitter comes from
/// hashing the caller-supplied seed (derived from the run seed and the
/// probe identity) with the attempt number — never from ambient RNG —
/// so two runs of the same campaign back off identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Base delay before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single delay, in virtual milliseconds.
    pub max_delay_ms: u64,
    /// Jitter as per-mille of the exponential delay (`250` = up to 25%
    /// added on top).
    pub jitter_pm: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_delay_ms: 2_000,
            max_delay_ms: 60_000,
            jitter_pm: 250,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (1-based), with deterministic
    /// jitter drawn from `seed`.
    #[must_use]
    pub fn delay_ms(&self, seed: u64, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let span = exp * u64::from(self.jitter_pm) / 1000;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(seed ^ (u64::from(attempt) << 56)) % (span + 1)
        };
        (exp + jitter).min(self.max_delay_ms)
    }
}

/// A run-wide retry budget: every retry spends one unit, and once the
/// pool is dry further requests are denied (and counted) instead of
/// issued. Keeps a faulty plane from turning the search into an
/// unbounded probe storm.
#[derive(Clone, Debug)]
pub struct RetryBudget {
    limit: u64,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A budget of `limit` retries.
    #[must_use]
    pub const fn new(limit: u64) -> Self {
        Self {
            limit,
            spent: 0,
            denied: 0,
        }
    }

    /// Takes one unit if any remain; records the denial otherwise.
    pub fn try_spend(&mut self) -> bool {
        if self.spent < self.limit {
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Retries issued so far.
    #[must_use]
    pub const fn spent(&self) -> u64 {
        self.spent
    }

    /// Retry requests denied after exhaustion.
    #[must_use]
    pub const fn denied(&self) -> u64 {
        self.denied
    }

    /// Whether the pool is dry.
    #[must_use]
    pub const fn exhausted(&self) -> bool {
        self.spent >= self.limit
    }
}

/// Per-key failure tracking with open/close hysteresis.
///
/// A key (for the search: a vantage point) trips open after
/// `threshold` *consecutive* failures and stays open for `cooldown_ms`
/// of virtual time, during which the caller should route work to a
/// fallback. A success at any point closes the circuit and resets the
/// streak. `BTreeMap`-backed so iteration (and hence any derived
/// output) is deterministic.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ms: u64,
    state: BTreeMap<u64, Breaker>,
    trips: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Breaker {
    streak: u32,
    open_until_ms: u64,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// holding open for `cooldown_ms`.
    #[must_use]
    pub const fn new(threshold: u32, cooldown_ms: u64) -> Self {
        Self {
            threshold,
            cooldown_ms,
            state: BTreeMap::new(),
            trips: 0,
        }
    }

    /// Records one outcome for `key` at virtual time `at_ms`.
    pub fn record(&mut self, key: u64, ok: bool, at_ms: u64) {
        let entry = self.state.entry(key).or_default();
        if ok {
            entry.streak = 0;
            entry.open_until_ms = 0;
            return;
        }
        entry.streak += 1;
        if self.threshold > 0 && entry.streak == self.threshold {
            entry.open_until_ms = at_ms.saturating_add(self.cooldown_ms);
            entry.streak = 0;
            self.trips += 1;
        }
    }

    /// Whether `key`'s circuit is open at `at_ms`.
    #[must_use]
    pub fn is_open(&self, key: u64, at_ms: u64) -> bool {
        self.state
            .get(&key)
            .is_some_and(|b| at_ms < b.open_until_ms)
    }

    /// Total trips over the breaker's lifetime.
    #[must_use]
    pub const fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_deterministic_and_capped() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay_ms: 1000,
            max_delay_ms: 5000,
            jitter_pm: 0,
        };
        assert_eq!(p.delay_ms(9, 1), 1000);
        assert_eq!(p.delay_ms(9, 2), 2000);
        assert_eq!(p.delay_ms(9, 3), 4000);
        assert_eq!(p.delay_ms(9, 4), 5000); // capped
        let j = RetryPolicy {
            jitter_pm: 500,
            ..p
        };
        assert_eq!(j.delay_ms(1234, 2), j.delay_ms(1234, 2));
        let base = j.delay_ms(1234, 2);
        assert!((2000..=3000).contains(&base), "jittered delay {base}");
    }

    #[test]
    fn jitter_varies_with_seed() {
        let p = RetryPolicy::default();
        let distinct: std::collections::BTreeSet<u64> =
            (0..32u64).map(|s| p.delay_ms(s, 1)).collect();
        assert!(distinct.len() > 1, "jitter never moved");
    }

    #[test]
    fn budget_spends_then_denies() {
        let mut b = RetryBudget::new(2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert!(b.exhausted());
        assert_eq!((b.spent(), b.denied()), (2, 1));
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let mut cb = CircuitBreaker::new(3, 1000);
        for t in 0..3 {
            assert!(!cb.is_open(7, t));
            cb.record(7, false, t);
        }
        assert!(cb.is_open(7, 500), "3 straight failures must trip");
        assert_eq!(cb.trips(), 1);
        assert!(!cb.is_open(7, 1002 + 1), "cooldown must elapse");
        cb.record(7, true, 1100);
        assert!(!cb.is_open(7, 1100));
        // Success reset the streak: two failures are not enough again.
        cb.record(7, false, 1200);
        cb.record(7, false, 1300);
        assert!(!cb.is_open(7, 1300));
    }

    #[test]
    fn breaker_keys_are_independent() {
        let mut cb = CircuitBreaker::new(1, 100);
        cb.record(1, false, 0);
        assert!(cb.is_open(1, 10));
        assert!(!cb.is_open(2, 10));
    }
}
