//! # cfs-traceroute
//!
//! The measurement substrate: a faithful stand-in for the four traceroute
//! platforms of Table 1 (RIPE Atlas, looking glasses, iPlane, CAIDA Ark)
//! and for the Paris-traceroute semantics the paper's inference relies on:
//!
//! * replies come from the **ingress** interface of each router, so IXP
//!   fabric addresses appear on the far-side member's router and private
//!   point-to-point addresses may belong to the neighbour's address space;
//! * per-hop RTTs accumulate geographic fiber delay plus jitter and
//!   occasional congestion episodes (which is why the remote-peering test
//!   takes minima over repeated measurements, §4.2);
//! * some routers never answer (`*` hops), and traces are cut short when
//!   the destination is unrouted.
//!
//! Everything is deterministic: a probe's randomness is derived from
//! `(engine seed, vantage point, target, time)`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod engine;
mod platform;
mod scheduled;
mod service;

pub use campaign::{archived_sweep, run_campaign, run_campaign_parallel, CampaignLimits};
pub use engine::{Engine, Hop, Trace};
pub use platform::{deploy_vantage_points, Platform, VantagePoint, VpConfig, VpSet};
pub use scheduled::ScheduledEngine;
pub use service::{ChaosEngine, ProbeService};
