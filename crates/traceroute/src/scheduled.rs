//! [`ScheduledEngine`]: the time-evolving probe plane.
//!
//! Wraps any [`ProbeService`] and replays a withheld
//! [`EventSchedule`](cfs_topology::EventSchedule): during an event's
//! active epochs the interfaces it silences (facility power loss,
//! cross-connect cuts, IXP port flaps) stop appearing in traceroutes and
//! stop answering pings. The wrapper is the only component that holds the
//! schedule — the engine underneath and every consumer downstream see
//! nothing but the perturbed measurements, which is what makes
//! detection evaluation against the schedule honest.
//!
//! Like [`ChaosEngine`](crate::ChaosEngine), perturbation is a pure
//! function of the probe identity (here: the probe's epoch and the
//! precomputed per-event dark-IP sets), so every determinism guarantee
//! of the wrapped engine survives: same schedule, same probe, same
//! trace, from any thread.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use cfs_topology::{EventSchedule, Topology, EPOCH_MS};

use crate::engine::{Hop, Trace};
use crate::platform::VantagePoint;
use crate::service::ProbeService;

/// How many trailing `*` hops a truncated trace keeps: the probe keeps
/// asking past the dark hop for a few TTLs before giving up, like a real
/// traceroute against a powered-off device.
const DARK_TAIL_HOPS: usize = 3;

/// A disruption-replaying [`ProbeService`] wrapper. See the module docs.
pub struct ScheduledEngine<E> {
    inner: E,
    schedule: EventSchedule,
    /// Per-event dark sets, parallel to `schedule.events`, precomputed
    /// from the ground truth at construction.
    dark: Vec<BTreeSet<Ipv4Addr>>,
}

impl<E: ProbeService> ScheduledEngine<E> {
    /// Wraps `inner`, replaying `schedule` over it.
    pub fn new(inner: E, schedule: EventSchedule) -> Self {
        let dark = schedule
            .events
            .iter()
            .map(|e| e.dark_ips(inner.topology()))
            .collect();
        Self {
            inner,
            schedule,
            dark,
        }
    }

    /// The withheld schedule (evaluation harnesses only; the inference
    /// side never gets a `ScheduledEngine` reference, just the
    /// `ProbeService` trait object).
    pub fn schedule(&self) -> &EventSchedule {
        &self.schedule
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Whether `ip` is dark at virtual time `at_ms`.
    fn is_dark(&self, ip: Ipv4Addr, at_ms: u64) -> bool {
        let epoch = at_ms / EPOCH_MS;
        self.schedule
            .events
            .iter()
            .zip(&self.dark)
            .any(|(e, dark)| e.active(epoch) && dark.contains(&ip))
    }
}

impl<E: ProbeService> ProbeService for ScheduledEngine<E> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn trace(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Trace {
        let mut t = self.inner.trace(vp, target, at_ms);
        let cut = t
            .hops
            .iter()
            .position(|h| h.ip.is_some_and(|ip| self.is_dark(ip, at_ms)));
        if let Some(k) = cut {
            // The dark router neither forwards nor answers: the path dies
            // at the hop before it, then a few TTL probes time out.
            t.hops.truncate(k);
            for _ in 0..DARK_TAIL_HOPS {
                t.hops.push(Hop {
                    ip: None,
                    rtt_ms: 0.0,
                });
            }
            t.reached = false;
        } else if t.reached && self.is_dark(target, at_ms) {
            t.reached = false;
        }
        t
    }

    fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64> {
        if self.is_dark(target, at_ms) {
            return None;
        }
        self.inner.ping(vp, target, at_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::platform::{deploy_vantage_points, VpConfig, VpSet};
    use cfs_topology::{ScheduleConfig, ScheduleIntensity, TopologyConfig};

    fn setup() -> (Topology, VpSet, EventSchedule) {
        let topo = Topology::generate(TopologyConfig::tiny()).expect("tiny topology");
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).expect("vps");
        let schedule = EventSchedule::generate(
            &topo,
            ScheduleConfig::at_intensity(11, ScheduleIntensity::Default),
        );
        (topo, vps, schedule)
    }

    #[test]
    fn quiet_epochs_are_transparent() {
        let (topo, vps, schedule) = setup();
        let clean = Engine::new(&topo);
        let eng = ScheduledEngine::new(Engine::new(&topo), schedule);
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(6)
            .map(|a| topo.target_ip(*a).expect("target"))
            .collect();
        // Epoch 0 is inside the warmup: nothing is active.
        let vp = vps.vps.values().next().expect("vp");
        for target in &targets {
            let a = ProbeService::trace(&clean, vp, *target, 0);
            let b = eng.trace(vp, *target, 0);
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.reached, b.reached);
            assert_eq!(clean.ping(vp, *target, 7), eng.ping(vp, *target, 7));
        }
    }

    #[test]
    fn dark_ips_disappear_during_their_window() {
        let (topo, vps, schedule) = setup();
        let event = schedule.events.first().expect("event").clone();
        let dark = event.dark_ips(&topo);
        let eng = ScheduledEngine::new(Engine::new(&topo), schedule);
        let active_ms = event.start_epoch * EPOCH_MS + 1;
        let after_ms = (event.end_epoch() + 1) * EPOCH_MS + 1;
        let ip = *dark.iter().next().expect("dark ip");
        for vp in vps.vps.values().take(4) {
            assert_eq!(eng.ping(vp, ip, active_ms), None);
        }
        // Traces issued during the window never carry a dark hop.
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(20)
            .map(|a| topo.target_ip(*a).expect("target"))
            .collect();
        for vp in vps.vps.values().take(8) {
            for target in &targets {
                let t = eng.trace(vp, *target, active_ms);
                for hop in &t.hops {
                    if let Some(ip) = hop.ip {
                        assert!(!dark.contains(&ip), "dark hop {ip} leaked");
                    }
                }
                // After the window the engine is transparent again.
                let clean = Engine::new(&topo);
                // Only compare when no OTHER event covers `after_ms`.
                if eng.schedule().active(after_ms / EPOCH_MS).next().is_none() {
                    let a = ProbeService::trace(&clean, vp, *target, after_ms);
                    let b = eng.trace(vp, *target, after_ms);
                    assert_eq!(a.hops, b.hops);
                }
            }
        }
    }

    #[test]
    fn perturbation_is_deterministic() {
        let (topo, vps, schedule) = setup();
        let a_eng = ScheduledEngine::new(Engine::new(&topo), schedule.clone());
        let b_eng = ScheduledEngine::new(Engine::new(&topo), schedule);
        let at = 5 * EPOCH_MS + 3;
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(5)
            .map(|a| topo.target_ip(*a).expect("target"))
            .collect();
        for vp in vps.vps.values().take(6) {
            for target in &targets {
                let a = a_eng.trace(vp, *target, at);
                let b = b_eng.trace(vp, *target, at);
                assert_eq!(a.hops, b.hops);
                assert_eq!(a.reached, b.reached);
            }
        }
    }
}
