//! The traceroute / ping simulation engine.
//!
//! A probe toward a target resolves the destination AS from the (true)
//! BGP announcements, follows the valley-free AS path, and expands it to
//! a router-level path by hot-potato medium selection at each AS boundary
//! (the physically nearest of the adjacency's instantiations). Each
//! traversed router replies from its **ingress** interface — the detail
//! the whole paper hinges on: IXP fabric addresses show up on the
//! far-side member's router, and private point-to-point addresses may
//! belong to the neighbour's address space (§4.1).

use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_bgp::RouteCache;
use cfs_geo::{fiber_rtt_ms, GeoPoint};
use cfs_net::IpAsnDb;
use cfs_topology::{IfaceKind, Medium, Topology};
use cfs_types::{Asn, IfaceId, RouterId};

use crate::platform::VantagePoint;

/// One traceroute hop: a reply source address (or `None` for `*`) and the
/// measured round-trip time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hop {
    /// Reply source, `None` when the router stayed silent or the reply
    /// was lost.
    pub ip: Option<Ipv4Addr>,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// A completed traceroute.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The issuing vantage point.
    pub vp: cfs_types::VantagePointId,
    /// Source AS.
    pub src_asn: Asn,
    /// Probe destination.
    pub target: Ipv4Addr,
    /// Wall-clock of the measurement (drives congestion episodes).
    pub at_ms: u64,
    /// Hop list, nearest first.
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub reached: bool,
}

/// Default probability that an individual reply is lost in transit.
const REPLY_LOSS: f64 = 0.015;

/// Default probability (percent) that a router is inside a congestion
/// episode in a given 10-minute slot.
const CONGESTION_P: u64 = 4;

/// Length of a congestion slot, ms.
const CONGESTION_SLOT_MS: u64 = 600_000;

/// The simulation engine. Cheap to share by reference; all methods take
/// `&self` and derive their randomness from call parameters, so traces
/// are reproducible and the engine is safe to use from many threads.
pub struct Engine<'t> {
    topo: &'t Topology,
    routes: RouteCache,
    db: IpAsnDb,
    seed: u64,
    paris: bool,
    reply_loss: f64,
    congestion_percent: u64,
}

impl<'t> Engine<'t> {
    /// Creates an engine over a topology (Paris traceroute semantics on).
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            routes: RouteCache::new(),
            db: topo.build_ipasn_db(),
            seed: topo.config.seed ^ 0x7ace_7005,
            paris: true,
            reply_loss: REPLY_LOSS,
            congestion_percent: CONGESTION_P,
        }
    }

    /// Overrides the per-reply loss probability (failure injection for
    /// robustness tests; default 1.5%).
    pub fn with_reply_loss(mut self, p: f64) -> Self {
        self.reply_loss = p.clamp(0.0, 1.0);
        self
    }

    /// Overrides the congestion-episode probability in percent (failure
    /// injection; default 4%).
    pub fn with_congestion_percent(mut self, percent: u64) -> Self {
        self.congestion_percent = percent.min(100);
        self
    }

    /// Disables Paris semantics: a fraction of intra-AS hops is replaced
    /// by unrelated interfaces, modelling the load-balancing artifacts
    /// classic traceroute suffers from \[9\]. Used by the ablation bench.
    pub fn without_paris(mut self) -> Self {
        self.paris = false;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Issues one traceroute.
    pub fn trace(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Trace {
        let mut rng = self.call_rng(vp, target, at_ms);
        let mut trace = Trace {
            vp: vp.id,
            src_asn: vp.asn,
            target,
            at_ms,
            hops: Vec::new(),
            reached: false,
        };

        let Some(dest_asn) = self.db.origin(target) else {
            // Unrouted space: probes die somewhere in the core.
            trace.hops.extend(
                [Hop {
                    ip: None,
                    rtt_ms: 0.0,
                }; 3],
            );
            return trace;
        };

        let routes = self.routes.routes(self.topo, dest_asn);
        let Some(as_path) = routes.path(vp.asn) else {
            trace.hops.extend(
                [Hop {
                    ip: None,
                    rtt_ms: 0.0,
                }; 3],
            );
            return trace;
        };

        // Router-level expansion.
        let mut path: Vec<(RouterId, IfaceId)> = Vec::new();
        let mut current = vp.router;
        path.push((current, self.backbone_iface(current)));
        for win in as_path.windows(2) {
            let (x, y) = (win[0], win[1]);
            let Some((egress, ingress, ingress_iface)) =
                self.select_medium(x, y, self.topo.routers[current].coords, &mut rng)
            else {
                // Inconsistent adjacency (should not happen): truncate.
                trace.hops.push(Hop {
                    ip: None,
                    rtt_ms: 0.0,
                });
                return trace;
            };
            if egress != current {
                path.push((egress, self.backbone_iface(egress)));
            }
            path.push((ingress, ingress_iface));
            current = ingress;
        }

        // Emit hops with accumulated delay.
        let mut dist_km = 0.0;
        let mut prev: GeoPoint = vp.coords;
        for (idx, (router, iface)) in path.iter().enumerate() {
            let r = &self.topo.routers[*router];
            dist_km += prev.distance_km(r.coords);
            prev = r.coords;
            let rtt = fiber_rtt_ms(dist_km)
                + 0.05 * (idx + 1) as f64
                + rng.random::<f64>() * 0.8
                + self.congestion_ms(*router, at_ms);
            let responds = r.responds && !rng.random_bool(self.reply_loss);
            let mut ip = responds.then(|| self.topo.ifaces[*iface].ip);
            // Classic traceroute artifact injection (ablation mode).
            if !self.paris && ip.is_some() && rng.random_bool(0.05) {
                ip = Some(self.random_foreign_iface(r.asn, &mut rng));
            }
            trace.hops.push(Hop { ip, rtt_ms: rtt });
        }

        // The destination host itself (targets are verified-active, §5).
        let rtt = fiber_rtt_ms(dist_km) + 0.05 * (path.len() + 1) as f64 + rng.random::<f64>();
        trace.hops.push(Hop {
            ip: Some(target),
            rtt_ms: rtt,
        });
        trace.reached = true;
        trace
    }

    /// Issues one ping, returning the RTT (or `None` when the owner stays
    /// silent). Used by the remote-peering test: fabric addresses of
    /// remote peers answer from far away, and the reseller transport
    /// detours the probe through the exchange first.
    pub fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64> {
        let mut rng = self.call_rng(vp, target, at_ms);
        let iface = self.topo.iface_by_ip(target)?;
        let router_id = self.topo.ifaces[iface].router;
        let router = &self.topo.routers[router_id];
        if !router.responds || rng.random_bool(self.reply_loss) {
            return None;
        }
        // Fabric addresses are reached across the exchange: the probe
        // travels to the IXP first, then over the (possibly long) member
        // access circuit to the router.
        let dist = match self.topo.ifaces[iface].kind {
            IfaceKind::IxpFabric(ixp) => {
                let core_fac = self.topo.switches[self.topo.ixps[ixp].core].facility;
                let core_loc = self.topo.facilities[core_fac].location;
                vp.coords.distance_km(core_loc) + core_loc.distance_km(router.coords)
            }
            _ => vp.coords.distance_km(router.coords),
        };
        Some(
            fiber_rtt_ms(dist)
                + 0.1
                + rng.random::<f64>() * 0.8
                + self.congestion_ms(router_id, at_ms),
        )
    }

    /// The first backbone interface of a router (its intra-AS reply
    /// source).
    fn backbone_iface(&self, router: RouterId) -> IfaceId {
        self.topo.routers[router]
            .ifaces
            .iter()
            .copied()
            .find(|i| self.topo.ifaces[*i].kind == IfaceKind::Backbone)
            .unwrap_or_else(|| self.topo.routers[router].ifaces[0])
    }

    /// Hot-potato medium selection for the AS boundary `x → y`: of all
    /// physical instantiations, take the one whose egress router is
    /// nearest the probe's current position.
    fn select_medium(
        &self,
        x: Asn,
        y: Asn,
        here: GeoPoint,
        _rng: &mut ChaCha20Rng,
    ) -> Option<(RouterId, RouterId, IfaceId)> {
        let adj = self.topo.adjacency(x, y)?;
        let mut best: Option<(f64, (RouterId, RouterId, IfaceId))> = None;
        for medium in &adj.mediums {
            let Some(endpoints) = self.medium_endpoints(*medium, x, y, here) else {
                continue;
            };
            let d = here.distance_km(self.topo.routers[endpoints.0].coords);
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, endpoints));
            }
        }
        best.map(|(_, e)| e)
    }

    /// Endpoints of a medium oriented from `x` into `y`:
    /// `(egress router of x, ingress router of y, ingress interface)`.
    ///
    /// For public peerings, members may hold several ports (dual-homed
    /// presence): `x` exits via the port nearest the probe, and the
    /// traffic enters `y` at the port *closest in the switch hierarchy*
    /// to `x`'s port — members on one access or backhaul switch exchange
    /// traffic locally (§4.4). Which of `y`'s fabric addresses traceroute
    /// reveals therefore encodes the switch topology.
    fn medium_endpoints(
        &self,
        medium: Medium,
        x: Asn,
        y: Asn,
        here: GeoPoint,
    ) -> Option<(RouterId, RouterId, IfaceId)> {
        match medium {
            Medium::Private(lid) => {
                let link = &self.topo.links[lid];
                if link.a.asn == x && link.b.asn == y {
                    Some((link.a.router, link.b.router, link.b.iface))
                } else if link.b.asn == x && link.a.asn == y {
                    Some((link.b.router, link.a.router, link.a.iface))
                } else {
                    None
                }
            }
            Medium::PublicIxp { ixp } => {
                let exchange = &self.topo.ixps[ixp];
                // x's port: hot potato from the probe's position.
                let mx = exchange
                    .members_of(x)
                    .min_by_key(|m| here.distance_km(self.topo.routers[m.router].coords) as u64)?;
                // y's port: switch proximity to x's port, geography as
                // tie-break.
                let my = exchange.members_of(y).min_by_key(|m| {
                    (
                        self.topo.switch_distance(mx.access_switch, m.access_switch),
                        self.topo.routers[mx.router]
                            .coords
                            .distance_km(self.topo.routers[m.router].coords)
                            as u64,
                    )
                })?;
                Some((mx.router, my.router, my.iface))
            }
        }
    }

    /// Congestion delay of a router in the 10-minute slot containing
    /// `at_ms` (0 for routers outside an episode).
    fn congestion_ms(&self, router: RouterId, at_ms: u64) -> f64 {
        let slot = at_ms / CONGESTION_SLOT_MS;
        let h = splitmix64(self.seed ^ (u64::from(router.raw()) << 20) ^ slot);
        if h % 100 < self.congestion_percent {
            5.0 + ((h >> 8) % 55) as f64
        } else {
            0.0
        }
    }

    /// An unrelated interface of the same AS — the classic-traceroute
    /// load-balancer artifact.
    fn random_foreign_iface(&self, asn: Asn, rng: &mut ChaCha20Rng) -> Ipv4Addr {
        let routers = &self.topo.ases[&asn].routers;
        let r = routers[rng.random_range(0..routers.len())];
        let iface = self.backbone_iface(r);
        self.topo.ifaces[iface].ip
    }

    fn call_rng(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> ChaCha20Rng {
        let k = splitmix64(
            self.seed
                ^ (u64::from(vp.id.raw()) << 32)
                ^ u64::from(u32::from(target))
                ^ at_ms.rotate_left(17),
        );
        ChaCha20Rng::seed_from_u64(k)
    }
}

/// SplitMix64 — tiny, well-distributed hash for deriving per-call seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{deploy_vantage_points, VpConfig, VpSet};
    use cfs_topology::TopologyConfig;

    fn setup() -> (Topology, VpSet) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        (topo, vps)
    }

    #[test]
    fn traces_reach_routed_targets() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let target = topo.target_ip(*topo.ases.keys().next().unwrap()).unwrap();
        let mut reached = 0;
        let total = vps.vps.len().min(40);
        for id in vps.ids().take(total) {
            let t = engine.trace(&vps.vps[id], target, 0);
            if t.reached {
                reached += 1;
                assert_eq!(t.hops.last().unwrap().ip, Some(target));
            }
        }
        assert!(reached * 10 >= total * 8, "only {reached}/{total} reached");
    }

    #[test]
    fn traces_are_deterministic() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let vp = &vps.vps[vps.ids().next().unwrap()];
        let target = topo.target_ip(*topo.ases.keys().last().unwrap()).unwrap();
        let a = engine.trace(vp, target, 42);
        let b = engine.trace(vp, target, 42);
        assert_eq!(a.hops, b.hops);
    }

    #[test]
    fn rtt_is_monotonic_without_congestion_modulo_jitter() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let vp = &vps.vps[vps.ids().next().unwrap()];
        let target = topo.target_ip(*topo.ases.keys().last().unwrap()).unwrap();
        let t = engine.trace(vp, target, 7);
        // RTTs grow along the path except for jitter/congestion wiggle.
        let first = t.hops.first().unwrap().rtt_ms;
        let last = t.hops.last().unwrap().rtt_ms;
        assert!(last + 80.0 >= first, "first {first} last {last}");
    }

    #[test]
    fn unrouted_targets_die_with_stars() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let vp = &vps.vps[vps.ids().next().unwrap()];
        let t = engine.trace(vp, "203.0.113.7".parse().unwrap(), 0);
        assert!(!t.reached);
        assert!(t.hops.iter().all(|h| h.ip.is_none()));
    }

    #[test]
    fn fabric_addresses_appear_in_public_crossings() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        // Trace from many VPs to many targets; at least one public
        // crossing must surface an IXP fabric address.
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(30)
            .map(|a| topo.target_ip(*a).unwrap())
            .collect();
        let mut fabric_seen = false;
        'outer: for id in vps.ids() {
            for target in &targets {
                let t = engine.trace(&vps.vps[id], *target, 0);
                if t.hops
                    .iter()
                    .any(|h| h.ip.is_some_and(|ip| topo.ixp_of_ip(ip).is_some()))
                {
                    fabric_seen = true;
                    break 'outer;
                }
            }
        }
        assert!(fabric_seen, "no IXP fabric address ever observed");
    }

    #[test]
    fn ping_remote_member_is_slower_than_local() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let vp = &vps.vps[vps.ids().next().unwrap()];

        let mut local_rtt = None;
        let mut remote_rtt = None;
        for ixp in topo.ixps.values() {
            for m in &ixp.members {
                let min_rtt = (0..5)
                    .filter_map(|i| engine.ping(vp, m.fabric_ip, i * CONGESTION_SLOT_MS))
                    .fold(f64::INFINITY, f64::min);
                if !min_rtt.is_finite() {
                    continue;
                }
                // Compare members of the *same* exchange where possible.
                if m.remote_via.is_some() && remote_rtt.is_none() {
                    let far = topo.routers[m.router].coords;
                    let core_fac = topo.switches[ixp.core].facility;
                    let core = topo.facilities[core_fac].location;
                    if core.distance_km(far) > 500.0 {
                        remote_rtt = Some((min_rtt, core.distance_km(far)));
                    }
                } else if m.remote_via.is_none() && local_rtt.is_none() {
                    local_rtt = Some(min_rtt);
                }
            }
        }
        if let (Some(_), Some((remote, dist))) = (local_rtt, remote_rtt) {
            // The remote detour adds at least the propagation floor.
            assert!(
                remote >= fiber_rtt_ms(dist) * 0.9,
                "remote rtt {remote} for {dist} km"
            );
        }
    }

    #[test]
    fn ping_unknown_address_is_none() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let vp = &vps.vps[vps.ids().next().unwrap()];
        assert_eq!(engine.ping(vp, "198.18.0.1".parse().unwrap(), 0), None);
    }

    #[test]
    fn non_paris_mode_injects_artifacts() {
        let (topo, vps) = setup();
        let paris = Engine::new(&topo);
        let classic = Engine::new(&topo).without_paris();
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(20)
            .map(|a| topo.target_ip(*a).unwrap())
            .collect();
        let mut differs = false;
        for id in vps.ids().take(30) {
            for target in &targets {
                let a = paris.trace(&vps.vps[id], *target, 0);
                let b = classic.trace(&vps.vps[id], *target, 0);
                if a.hops.iter().zip(&b.hops).any(|(x, y)| x.ip != y.ip) {
                    differs = true;
                }
            }
        }
        assert!(differs, "classic mode never produced an artifact");
    }

    #[test]
    fn hop_count_is_bounded() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        for id in vps.ids().take(50) {
            for asn in topo.ases.keys().take(20) {
                let t = engine.trace(&vps.vps[id], topo.target_ip(*asn).unwrap(), 0);
                assert!(t.hops.len() <= 30, "path too long: {}", t.hops.len());
            }
        }
    }
}
