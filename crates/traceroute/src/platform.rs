//! Vantage points and the four measurement platforms of Table 1.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_geo::GeoPoint;
use cfs_topology::Topology;
use cfs_types::{Arena, AsClass, Asn, Region, Result, RouterId, VantagePointId};

/// A measurement platform (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Platform {
    /// RIPE Atlas: thousands of home probes, Europe-heavy footprint.
    RipeAtlas,
    /// Looking glasses: web interfaces on production routers of transit
    /// networks and IXPs; rate-limited, targeted queries only.
    LookingGlass,
    /// iPlane: PlanetLab-hosted daily sweeps.
    IPlane,
    /// CAIDA Archipelago: ~100 monitors sweeping the announced space.
    Ark,
}

impl Platform {
    /// All platforms in Table 1 order.
    pub const ALL: [Platform; 4] = [Self::RipeAtlas, Self::LookingGlass, Self::IPlane, Self::Ark];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::RipeAtlas => "ripe-atlas",
            Self::LookingGlass => "looking-glass",
            Self::IPlane => "iplane",
            Self::Ark => "ark",
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A traceroute origin.
#[derive(Clone, Debug)]
pub struct VantagePoint {
    /// Stable id.
    pub id: VantagePointId,
    /// Hosting platform.
    pub platform: Platform,
    /// The AS the vantage point measures from.
    pub asn: Asn,
    /// The router probes enter the topology through. For looking glasses
    /// this *is* the production router; for Atlas it is the access
    /// router the probe's home connection attaches to.
    pub router: RouterId,
    /// Probe coordinates (the router's).
    pub coords: GeoPoint,
}

/// How many vantage points to deploy per platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VpConfig {
    /// RNG seed for deployment choices.
    pub seed: u64,
    /// RIPE Atlas probe count (paper: 6,385).
    pub atlas: usize,
    /// Looking-glass count (paper: 1,877).
    pub looking_glass: usize,
    /// iPlane vantage points (paper: 147).
    pub iplane: usize,
    /// Ark monitors (paper: 107).
    pub ark: usize,
}

impl Default for VpConfig {
    fn default() -> Self {
        Self {
            seed: 0xA71A5,
            atlas: 1500,
            looking_glass: 450,
            iplane: 60,
            ark: 50,
        }
    }
}

impl VpConfig {
    /// The paper's Table 1 counts.
    pub fn paper() -> Self {
        Self {
            atlas: 6385,
            looking_glass: 1877,
            iplane: 147,
            ark: 107,
            ..Self::default()
        }
    }

    /// A minimal set for unit tests.
    pub fn tiny() -> Self {
        Self {
            atlas: 60,
            looking_glass: 25,
            iplane: 6,
            ark: 5,
            ..Self::default()
        }
    }
}

/// The deployed vantage points with per-platform indices.
#[derive(Clone, Debug)]
pub struct VpSet {
    /// All vantage points.
    pub vps: Arena<VantagePointId, VantagePoint>,
    by_platform: BTreeMap<Platform, Vec<VantagePointId>>,
}

impl VpSet {
    /// Vantage points of one platform.
    pub fn of_platform(&self, platform: Platform) -> &[VantagePointId] {
        self.by_platform
            .get(&platform)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All vantage point ids.
    pub fn ids(&self) -> impl Iterator<Item = VantagePointId> + '_ {
        self.vps.ids()
    }

    /// Number of distinct ASes hosting vantage points (Table 1 row 2).
    pub fn distinct_ases(&self, platform: Option<Platform>) -> usize {
        let mut asns: Vec<Asn> = self
            .vps
            .values()
            .filter(|vp| platform.is_none_or(|p| vp.platform == p))
            .map(|vp| vp.asn)
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }
}

/// Atlas's region skew: over half the probes sit in Europe.
const ATLAS_REGION_WEIGHTS: [(Region, f64); 6] = [
    (Region::Europe, 0.55),
    (Region::NorthAmerica, 0.22),
    (Region::Asia, 0.09),
    (Region::Oceania, 0.05),
    (Region::SouthAmerica, 0.05),
    (Region::Africa, 0.04),
];

/// Deploys vantage points over a topology.
pub fn deploy_vantage_points(topo: &Topology, cfg: &VpConfig) -> Result<VpSet> {
    let mut rng = ChaCha20Rng::seed_from_u64(cfg.seed);
    let mut vps: Arena<VantagePointId, VantagePoint> = Arena::new();
    let mut by_platform: BTreeMap<Platform, Vec<VantagePointId>> = BTreeMap::new();

    // ---- RIPE Atlas: home probes behind access networks ----
    let mut access_by_region: BTreeMap<Region, Vec<Asn>> = BTreeMap::new();
    for node in topo.ases.values() {
        if node.class == AsClass::Access {
            access_by_region
                .entry(node.home_region)
                .or_default()
                .push(node.asn);
        }
    }
    let all_access: Vec<Asn> = topo
        .ases
        .values()
        .filter(|n| n.class == AsClass::Access)
        .map(|n| n.asn)
        .collect();
    for _ in 0..cfg.atlas {
        let x: f64 = rng.random();
        let mut acc = 0.0;
        let mut region = Region::Europe;
        for (r, w) in ATLAS_REGION_WEIGHTS {
            acc += w;
            if x < acc {
                region = r;
                break;
            }
        }
        let pool = access_by_region.get(&region).unwrap_or(&all_access);
        let pool = if pool.is_empty() { &all_access } else { pool };
        let asn = pool[rng.random_range(0..pool.len())];
        let routers = &topo.ases[&asn].routers;
        let router = routers[rng.random_range(0..routers.len())];
        push_vp(
            &mut vps,
            &mut by_platform,
            Platform::RipeAtlas,
            asn,
            router,
            topo,
        );
    }

    // ---- Looking glasses: production routers of transit networks ----
    let mut lg_routers: Vec<(Asn, RouterId)> = topo
        .ases
        .values()
        .filter(|n| matches!(n.class, AsClass::Tier1 | AsClass::Transit))
        .flat_map(|n| n.routers.iter().map(move |r| (n.asn, *r)))
        .collect();
    lg_routers.shuffle(&mut rng);
    for (asn, router) in lg_routers.into_iter().take(cfg.looking_glass) {
        push_vp(
            &mut vps,
            &mut by_platform,
            Platform::LookingGlass,
            asn,
            router,
            topo,
        );
    }

    // ---- iPlane and Ark: small, globally scattered sets ----
    let host_pool: Vec<Asn> = topo
        .ases
        .values()
        .filter(|n| {
            matches!(
                n.class,
                AsClass::Access | AsClass::Content | AsClass::Enterprise
            )
        })
        .map(|n| n.asn)
        .collect();
    for (platform, count) in [(Platform::IPlane, cfg.iplane), (Platform::Ark, cfg.ark)] {
        for _ in 0..count {
            let asn = host_pool[rng.random_range(0..host_pool.len())];
            let routers = &topo.ases[&asn].routers;
            let router = routers[rng.random_range(0..routers.len())];
            push_vp(&mut vps, &mut by_platform, platform, asn, router, topo);
        }
    }

    Ok(VpSet { vps, by_platform })
}

fn push_vp(
    vps: &mut Arena<VantagePointId, VantagePoint>,
    by_platform: &mut BTreeMap<Platform, Vec<VantagePointId>>,
    platform: Platform,
    asn: Asn,
    router: RouterId,
    topo: &Topology,
) {
    let id = vps.next_id();
    vps.push(VantagePoint {
        id,
        platform,
        asn,
        router,
        coords: topo.routers[router].coords,
    });
    by_platform.entry(platform).or_default().push(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;

    fn setup() -> (Topology, VpSet) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        (topo, vps)
    }

    #[test]
    fn counts_match_config() {
        let (_, vps) = setup();
        let cfg = VpConfig::tiny();
        assert_eq!(vps.of_platform(Platform::RipeAtlas).len(), cfg.atlas);
        assert_eq!(vps.of_platform(Platform::IPlane).len(), cfg.iplane);
        assert_eq!(vps.of_platform(Platform::Ark).len(), cfg.ark);
        // LGs are bounded by available transit routers.
        assert!(vps.of_platform(Platform::LookingGlass).len() <= cfg.looking_glass);
        assert!(!vps.of_platform(Platform::LookingGlass).is_empty());
    }

    #[test]
    fn atlas_probes_sit_in_access_networks() {
        let (topo, vps) = setup();
        for id in vps.of_platform(Platform::RipeAtlas) {
            let vp = &vps.vps[*id];
            assert_eq!(topo.ases[&vp.asn].class, AsClass::Access);
            assert_eq!(topo.routers[vp.router].asn, vp.asn);
        }
    }

    #[test]
    fn looking_glasses_sit_on_transit_routers() {
        let (topo, vps) = setup();
        for id in vps.of_platform(Platform::LookingGlass) {
            let vp = &vps.vps[*id];
            assert!(matches!(
                topo.ases[&vp.asn].class,
                AsClass::Tier1 | AsClass::Transit
            ));
        }
    }

    #[test]
    fn lg_routers_are_unique() {
        let (_, vps) = setup();
        let mut routers: Vec<RouterId> = vps
            .of_platform(Platform::LookingGlass)
            .iter()
            .map(|id| vps.vps[*id].router)
            .collect();
        let before = routers.len();
        routers.sort();
        routers.dedup();
        assert_eq!(routers.len(), before);
    }

    #[test]
    fn atlas_skews_european() {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::default()).unwrap();
        let region_of = |id: &VantagePointId| {
            let vp = &vps.vps[*id];
            topo.ases[&vp.asn].home_region
        };
        let atlas = vps.of_platform(Platform::RipeAtlas);
        let eu = atlas
            .iter()
            .filter(|id| region_of(id) == Region::Europe)
            .count();
        let asia = atlas
            .iter()
            .filter(|id| region_of(id) == Region::Asia)
            .count();
        assert!(eu > asia * 2, "eu {eu} asia {asia}");
    }

    #[test]
    fn distinct_as_counting() {
        let (_, vps) = setup();
        let total = vps.distinct_ases(None);
        let atlas_only = vps.distinct_ases(Some(Platform::RipeAtlas));
        assert!(total >= atlas_only);
        assert!(atlas_only > 1);
    }

    #[test]
    fn deployment_is_deterministic() {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let a = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let b = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        for (x, y) in a.vps.values().zip(b.vps.values()) {
            assert_eq!(x.router, y.router);
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.platform, y.platform);
        }
    }
}
