//! The probe-plane abstraction: [`ProbeService`] is the narrow trait the
//! search consumes instead of the concrete [`Engine`], and
//! [`ChaosEngine`] is the fault-injecting implementation that perturbs a
//! clean engine according to a [`FaultPlan`].
//!
//! The search never learns which implementation it is talking to — that
//! is the point. Fault decisions are pure functions of the plan seed and
//! the probe identity (see `cfs-chaos`), so a `ChaosEngine` keeps every
//! determinism guarantee the clean engine makes: same seed, same plan,
//! same trace, from any thread.

use std::net::Ipv4Addr;

use cfs_chaos::FaultPlan;
use cfs_topology::Topology;

use crate::engine::{Engine, Trace};
use crate::platform::VantagePoint;

/// What the measurement plane owes the search: traceroutes, pings, and
/// the topology handle the search uses for geometry (VP distances, IXP
/// coordinates). `Sync` because the search fans probes out over scoped
/// worker threads.
pub trait ProbeService: Sync {
    /// The underlying topology (geometry only — implementations must not
    /// leak measurement shortcuts through it).
    fn topology(&self) -> &Topology;

    /// Issues one traceroute from `vp` toward `target` at virtual time
    /// `at_ms`.
    fn trace(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Trace;

    /// Issues one ping; `None` when no reply came back.
    fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64>;
}

impl ProbeService for Engine<'_> {
    fn topology(&self) -> &Topology {
        Engine::topology(self)
    }

    fn trace(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Trace {
        Engine::trace(self, vp, target, at_ms)
    }

    fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64> {
        Engine::ping(self, vp, target, at_ms)
    }
}

/// A fault-injecting [`ProbeService`]: wraps a clean [`Engine`] and lies
/// to the caller exactly as the [`FaultPlan`] dictates — VP outages and
/// transient timeouts suppress whole probes, persistently silent and
/// rate-limited routers blank individual hops, and a slice of traces is
/// truncated or caught in a forwarding loop.
pub struct ChaosEngine<'t> {
    inner: Engine<'t>,
    plan: FaultPlan,
}

impl<'t> ChaosEngine<'t> {
    /// Wraps `inner`, perturbing it per `plan`.
    pub fn new(inner: Engine<'t>, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped clean engine.
    pub fn inner(&self) -> &Engine<'t> {
        &self.inner
    }

    fn vp_key(vp: &VantagePoint) -> u64 {
        vp.id.raw() as u64
    }

    fn ip_key(ip: Ipv4Addr) -> u64 {
        u64::from(u32::from(ip))
    }
}

impl ProbeService for ChaosEngine<'_> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn trace(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Trace {
        if self.plan.is_off() {
            return self.inner.trace(vp, target, at_ms);
        }
        let vpk = Self::vp_key(vp);
        let tk = Self::ip_key(target);
        if self.plan.vp_down(vpk, at_ms) || self.plan.probe_timeout(vpk, tk, at_ms) {
            // The probe never produced data: a dark VP or a lost probe
            // both look like an empty, unreached trace to the caller.
            return Trace {
                vp: vp.id,
                src_asn: vp.asn,
                target,
                at_ms,
                hops: Vec::new(),
                reached: false,
            };
        }
        let mut t = self.inner.trace(vp, target, at_ms);
        for (i, hop) in t.hops.iter_mut().enumerate() {
            let Some(ip) = hop.ip else { continue };
            let rk = Self::ip_key(ip);
            let probe = vpk ^ tk.rotate_left(21) ^ ((i as u64) << 40) ^ at_ms;
            if self.plan.router_silent(rk) || self.plan.rate_limited(rk, probe, at_ms) {
                hop.ip = None;
                hop.rtt_ms = 0.0;
            }
        }
        if let Some(k) = self.plan.truncate_len(vpk, tk, at_ms, t.hops.len()) {
            t.hops.truncate(k);
            t.reached = false;
        } else if let Some((start, reps)) = self.plan.loop_segment(vpk, tk, at_ms, t.hops.len()) {
            // A forwarding loop: the tail past `start` repeats until the
            // probe's TTL budget runs out; the destination never answers.
            let end = (start + 4).min(t.hops.len());
            let seg: Vec<_> = t.hops[start..end].to_vec();
            t.hops.truncate(end);
            for _ in 0..reps {
                t.hops.extend_from_slice(&seg);
            }
            t.reached = false;
        }
        t
    }

    fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64> {
        if !self.plan.is_off() {
            let vpk = Self::vp_key(vp);
            let tk = Self::ip_key(target);
            if self.plan.vp_down(vpk, at_ms) || self.plan.probe_timeout(vpk, tk, at_ms) {
                return None;
            }
            // The reply source is the target's router (fabric detours
            // included): persistent silence and rate limiting key on it.
            if self.plan.router_silent(tk) || self.plan.rate_limited(tk, vpk ^ at_ms, at_ms) {
                return None;
            }
        }
        self.inner.ping(vp, target, at_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{deploy_vantage_points, VpConfig, VpSet};
    use cfs_chaos::FaultProfile;
    use cfs_topology::TopologyConfig;

    fn setup() -> (Topology, VpSet) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        (topo, vps)
    }

    fn targets(topo: &Topology, n: usize) -> Vec<Ipv4Addr> {
        topo.ases
            .keys()
            .take(n)
            .map(|a| topo.target_ip(*a).unwrap())
            .collect()
    }

    #[test]
    fn off_plan_is_transparent() {
        let (topo, vps) = setup();
        let clean = Engine::new(&topo);
        let chaos = ChaosEngine::new(Engine::new(&topo), FaultPlan::new(1, FaultProfile::off()));
        let vp = vps.vps.values().next().unwrap();
        for target in targets(&topo, 5) {
            let a = ProbeService::trace(&clean, vp, target, 0);
            let b = chaos.trace(vp, target, 0);
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.reached, b.reached);
            assert_eq!(clean.ping(vp, target, 7), chaos.ping(vp, target, 7));
        }
    }

    #[test]
    fn chaos_traces_are_deterministic() {
        let (topo, vps) = setup();
        let plan = FaultPlan::new(9, FaultProfile::flaky());
        let a_eng = ChaosEngine::new(Engine::new(&topo), plan);
        let b_eng = ChaosEngine::new(Engine::new(&topo), plan);
        for vp in vps.vps.values().take(8) {
            for target in targets(&topo, 4) {
                let a = a_eng.trace(vp, target, 1234);
                let b = b_eng.trace(vp, target, 1234);
                assert_eq!(a.hops, b.hops);
                assert_eq!(a.reached, b.reached);
            }
        }
    }

    #[test]
    fn heavy_loss_suppresses_most_probes() {
        let (topo, vps) = setup();
        let plan = FaultPlan::new(3, FaultProfile::probe_loss(950));
        let eng = ChaosEngine::new(Engine::new(&topo), plan);
        let mut empty = 0usize;
        let mut total = 0usize;
        for vp in vps.vps.values().take(10) {
            for target in targets(&topo, 5) {
                total += 1;
                if eng.trace(vp, target, 0).hops.is_empty() {
                    empty += 1;
                }
            }
        }
        assert!(empty * 10 > total * 8, "{empty}/{total} empty at 95% loss");
    }

    #[test]
    fn persistent_silence_blanks_the_same_router_everywhere() {
        let (topo, vps) = setup();
        let plan = FaultPlan::new(
            5,
            FaultProfile {
                router_silent_pm: 300,
                ..FaultProfile::off()
            },
        );
        let eng = ChaosEngine::new(Engine::new(&topo), plan);
        // Every surviving hop IP must be one the plan considers alive.
        for vp in vps.vps.values().take(10) {
            for target in targets(&topo, 5) {
                for hop in eng.trace(vp, target, 99).hops {
                    if let Some(ip) = hop.ip {
                        assert!(!plan.router_silent(u64::from(u32::from(ip))));
                    }
                }
            }
        }
    }

    #[test]
    fn dark_vp_stays_dark_for_the_whole_window() {
        let (topo, vps) = setup();
        let plan = FaultPlan::new(
            2,
            FaultProfile {
                vp_outage_pm: 400,
                outage_window_ms: 100_000,
                ..FaultProfile::off()
            },
        );
        let eng = ChaosEngine::new(Engine::new(&topo), plan);
        let target = targets(&topo, 1)[0];
        let dark = vps
            .vps
            .values()
            .find(|vp| plan.vp_down(vp.id.raw() as u64, 0))
            .expect("some VP in outage");
        for at in [0, 10_000, 99_999] {
            assert!(eng.trace(dark, target, at).hops.is_empty());
            assert_eq!(eng.ping(dark, target, at), None);
        }
    }
}
