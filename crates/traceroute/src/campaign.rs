//! Campaign scheduling: fan a set of targets out over vantage points,
//! respecting the practical limits of each platform (§3.2).
//!
//! Looking glasses enforce probing timeouts ("we used a timeout of 60
//! seconds between each query to the same looking glass"), so campaigns
//! cap per-LG query counts; Atlas runs a full campaign in ~5 minutes.
//! iPlane and Ark contribute *archived* daily sweeps toward random
//! prefixes rather than targeted queries.

use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_types::VantagePointId;

use crate::engine::Trace;
use crate::platform::{Platform, VpSet};
use crate::service::ProbeService;

/// Like [`run_campaign`], fanned out over scoped threads. Traces are
/// deterministic per `(vantage point, target, time)`, so the result is
/// identical to the sequential runner (same order, same hops) — only the
/// wall-clock differs. Useful for paper-scale campaigns (8.5k vantage
/// points × targets).
pub fn run_campaign_parallel(
    engine: &dyn ProbeService,
    vps: &VpSet,
    vp_ids: &[VantagePointId],
    targets: &[Ipv4Addr],
    at_ms: u64,
    limits: &CampaignLimits,
) -> Vec<Trace> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    if workers <= 1 || vp_ids.len() < 64 {
        return run_campaign(engine, vps, vp_ids, targets, at_ms, limits);
    }
    let chunk_size = vp_ids.len().div_ceil(workers);
    let chunks: Vec<Vec<Trace>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = vp_ids
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move |_| run_campaign(engine, vps, chunk, targets, at_ms, limits))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker"))
            .collect()
    })
    .expect("campaign thread scope");
    chunks.into_iter().flatten().collect()
}

/// Per-campaign scheduling limits.
#[derive(Clone, Debug)]
pub struct CampaignLimits {
    /// Maximum targeted queries per looking glass per campaign (rate
    /// limiting makes LGs unsuitable for scans, §3.2).
    pub lg_queries: usize,
    /// Maximum targeted queries per Atlas/iPlane/Ark vantage point.
    pub open_queries: usize,
}

impl Default for CampaignLimits {
    fn default() -> Self {
        Self {
            lg_queries: 25,
            open_queries: 500,
        }
    }
}

/// Runs a targeted campaign: every vantage point probes every target (up
/// to its platform's limit), at the given measurement time.
pub fn run_campaign(
    engine: &dyn ProbeService,
    vps: &VpSet,
    vp_ids: &[VantagePointId],
    targets: &[Ipv4Addr],
    at_ms: u64,
    limits: &CampaignLimits,
) -> Vec<Trace> {
    let mut out = Vec::with_capacity(vp_ids.len() * targets.len().min(limits.open_queries));
    for id in vp_ids {
        let vp = &vps.vps[*id];
        let cap = match vp.platform {
            Platform::LookingGlass => limits.lg_queries,
            _ => limits.open_queries,
        };
        for target in targets.iter().take(cap) {
            out.push(engine.trace(vp, *target, at_ms));
        }
    }
    out
}

/// Simulates the archived daily sweeps of iPlane and Ark: each vantage
/// point traces toward `per_vp` random routed targets.
pub fn archived_sweep(
    engine: &dyn ProbeService,
    vps: &VpSet,
    platform: Platform,
    per_vp: usize,
    seed: u64,
) -> Vec<Trace> {
    let topo = engine.topology();
    let asns: Vec<_> = topo.ases.keys().copied().collect();
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for id in vps.of_platform(platform) {
        let vp = &vps.vps[*id];
        for _ in 0..per_vp {
            let asn = asns[rng.random_range(0..asns.len())];
            let Ok(target) = topo.target_ip(asn) else {
                continue;
            };
            let at_ms = rng.random_range(0..86_400_000);
            out.push(engine.trace(vp, target, at_ms));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::platform::{deploy_vantage_points, VpConfig};
    use cfs_topology::{Topology, TopologyConfig};

    fn setup() -> (Topology, VpSet) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        (topo, vps)
    }

    #[test]
    fn campaign_produces_trace_per_vp_target_pair() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let targets = vec![topo.target_ip(*topo.ases.keys().next().unwrap()).unwrap()];
        let atlas: Vec<_> = vps.of_platform(Platform::RipeAtlas).to_vec();
        let traces = run_campaign(
            &engine,
            &vps,
            &atlas,
            &targets,
            0,
            &CampaignLimits::default(),
        );
        assert_eq!(traces.len(), atlas.len());
    }

    #[test]
    fn lg_rate_limit_caps_queries() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(40)
            .map(|a| topo.target_ip(*a).unwrap())
            .collect();
        let lgs: Vec<_> = vps.of_platform(Platform::LookingGlass).to_vec();
        let limits = CampaignLimits {
            lg_queries: 5,
            open_queries: 100,
        };
        let traces = run_campaign(&engine, &vps, &lgs, &targets, 0, &limits);
        assert_eq!(traces.len(), lgs.len() * 5);
    }

    #[test]
    fn archived_sweep_covers_many_targets() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let traces = archived_sweep(&engine, &vps, Platform::Ark, 10, 1);
        assert_eq!(traces.len(), vps.of_platform(Platform::Ark).len() * 10);
        let distinct: std::collections::BTreeSet<_> = traces.iter().map(|t| t.target).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let (topo, vps) = setup();
        let engine = Engine::new(&topo);
        let a = archived_sweep(&engine, &vps, Platform::IPlane, 5, 9);
        let b = archived_sweep(&engine, &vps, Platform::IPlane, 5, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.hops, y.hops);
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::engine::Engine;
    use crate::platform::{deploy_vantage_points, VpConfig};
    use cfs_topology::{Topology, TopologyConfig};

    #[test]
    fn parallel_campaign_matches_sequential_exactly() {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let targets: Vec<Ipv4Addr> = topo
            .ases
            .keys()
            .take(3)
            .map(|a| topo.target_ip(*a).unwrap())
            .collect();
        let ids: Vec<_> = vps.ids().collect();
        let limits = CampaignLimits::default();
        let seq = run_campaign(&engine, &vps, &ids, &targets, 5, &limits);
        let par = run_campaign_parallel(&engine, &vps, &ids, &targets, 5, &limits);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.vp, b.vp);
            assert_eq!(a.target, b.target);
            assert_eq!(a.hops, b.hops);
        }
    }
}
