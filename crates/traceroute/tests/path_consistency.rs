//! Consistency between the traceroute engine and the routing/topology
//! substrates: simulated paths must walk the valley-free AS path, cross
//! boundaries on real mediums, and expose exactly the ingress-interface
//! semantics the CFS algorithm depends on.

use std::collections::BTreeSet;

use cfs_bgp::compute_routes;
use cfs_topology::{IfaceKind, Topology, TopologyConfig};
use cfs_traceroute::{deploy_vantage_points, Engine, VpConfig};
use cfs_types::Asn;

fn setup() -> Topology {
    Topology::generate(TopologyConfig::tiny()).unwrap()
}

/// Maps a hop to its ground-truth owner AS (via the interface table).
fn owner(topo: &Topology, ip: std::net::Ipv4Addr) -> Option<Asn> {
    topo.iface_by_ip(ip).map(|ifid| topo.ifaces[ifid].asn)
}

#[test]
fn hops_follow_the_bgp_as_path() {
    let topo = setup();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);

    let mut verified = 0usize;
    for (i, asn) in topo.ases.keys().enumerate().take(15) {
        let target = topo.target_ip(*asn).unwrap();
        let routes = compute_routes(&topo, *asn);
        for id in vps.ids().step_by(7) {
            let vp = &vps.vps[id];
            let Some(as_path) = routes.path(vp.asn) else {
                continue;
            };
            let trace = engine.trace(vp, target, i as u64);
            if !trace.reached {
                continue;
            }
            // The sequence of hop owner ASes must be a subsequence of the
            // AS path (hops can be silent, never out of order).
            let as_path_set: Vec<Asn> = as_path.clone();
            let mut pos = 0usize;
            for hop in &trace.hops[..trace.hops.len() - 1] {
                let Some(ip) = hop.ip else { continue };
                let Some(hop_as) = owner(&topo, ip) else {
                    continue;
                };
                // Advance along the AS path until we find this AS.
                while pos < as_path_set.len() && as_path_set[pos] != hop_as {
                    pos += 1;
                }
                assert!(
                    pos < as_path_set.len(),
                    "hop AS {hop_as} not on (or out of order in) path {as_path_set:?}"
                );
            }
            verified += 1;
        }
    }
    assert!(verified > 20, "too few traces verified: {verified}");
}

#[test]
fn boundary_hops_reply_from_fabric_or_ptp_interfaces() {
    let topo = setup();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);

    let mut crossings = 0usize;
    for asn in topo.ases.keys().take(20) {
        let target = topo.target_ip(*asn).unwrap();
        for id in vps.ids().step_by(5) {
            let trace = engine.trace(&vps.vps[id], target, 0);
            // Only truly adjacent responsive pairs: a silent router in
            // between would make unrelated hops look adjacent.
            let hops: Vec<Option<std::net::Ipv4Addr>> = trace.hops.iter().map(|h| h.ip).collect();
            for w in hops.windows(2) {
                let (Some(h0), Some(h1)) = (w[0], w[1]) else {
                    continue;
                };
                let w = [h0, h1];
                let (a, b) = (owner(&topo, w[0]), owner(&topo, w[1]));
                let (Some(a), Some(b)) = (a, b) else { continue };
                if a == b {
                    continue;
                }
                // An AS boundary: the far hop must be a fabric or ptp
                // interface (ingress semantics), never a loopback.
                let ifid = topo.iface_by_ip(w[1]).unwrap();
                match topo.ifaces[ifid].kind {
                    IfaceKind::IxpFabric(_) | IfaceKind::PrivatePtp(_) => crossings += 1,
                    IfaceKind::Backbone => {
                        // Possible: the ptp interface was allocated from
                        // the *other* AS's space, so the ownership flip
                        // happens one hop late. The previous hop must
                        // then be the contaminated ptp interface.
                        let prev = topo.iface_by_ip(w[0]).unwrap();
                        assert!(
                            matches!(topo.ifaces[prev].kind, IfaceKind::PrivatePtp(_)),
                            "boundary into backbone without ptp contamination"
                        );
                        crossings += 1;
                    }
                    IfaceKind::Loopback => panic!("loopback replied in traceroute"),
                }
            }
        }
    }
    assert!(
        crossings > 30,
        "too few boundary crossings observed: {crossings}"
    );
}

#[test]
fn fabric_hop_belongs_to_the_far_member_router() {
    let topo = setup();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);

    let mut checked = 0usize;
    for asn in topo.ases.keys().take(25) {
        let target = topo.target_ip(*asn).unwrap();
        for id in vps.ids().step_by(9) {
            let trace = engine.trace(&vps.vps[id], target, 0);
            for hop in trace.hops.iter().filter_map(|h| h.ip) {
                let Some(ixp) = topo.ixp_of_ip(hop) else {
                    continue;
                };
                // The fabric address must be a member's port at that IXP,
                // configured on that member's router.
                let m = topo.ixps[ixp]
                    .members
                    .iter()
                    .find(|m| m.fabric_ip == hop)
                    .expect("fabric hop is a member port");
                let ifid = topo.iface_by_ip(hop).unwrap();
                assert_eq!(topo.ifaces[ifid].router, m.router);
                checked += 1;
            }
        }
    }
    assert!(checked > 5, "no fabric hops observed: {checked}");
}

#[test]
fn distinct_vantage_points_expose_distinct_boundary_routers() {
    // Hot-potato selection: for a multi-location adjacency, probes from
    // different continents should cross at different facilities. The
    // tiny world is too sparse for this to be reliable; use the default
    // one.
    let topo = Topology::generate(TopologyConfig::default()).unwrap();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);

    let mut multi_location_seen = false;
    'outer: for adj in &topo.adjacencies {
        if adj.mediums.len() < 2 {
            continue;
        }
        let target = topo.target_ip(adj.a).unwrap();
        let mut boundary_ifaces: BTreeSet<std::net::Ipv4Addr> = BTreeSet::new();
        for id in vps.ids() {
            let trace = engine.trace(&vps.vps[id], target, 0);
            let hops: Vec<_> = trace.hops.iter().filter_map(|h| h.ip).collect();
            for w in hops.windows(2) {
                let (Some(x), Some(y)) = (owner(&topo, w[0]), owner(&topo, w[1])) else {
                    continue;
                };
                if (x, y) == (adj.b, adj.a) {
                    boundary_ifaces.insert(w[1]);
                }
            }
        }
        if boundary_ifaces.len() >= 2 {
            multi_location_seen = true;
            break 'outer;
        }
    }
    assert!(
        multi_location_seen,
        "no multi-location adjacency ever crossed at two different interfaces"
    );
}
