//! A minimal JSON reader and string writer for the `cfs-api/1` wire
//! protocol.
//!
//! `cfs-svc` is dependency-free (crate docs), so it reads requests with
//! the same hand-rolled parser shape `cfs-obs` uses for trace diffing:
//! objects keep member order, numbers keep their source text so integer
//! round-trips are exact, and errors carry a byte offset — which the
//! daemon forwards verbatim inside its `bad_request` responses.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (exact u64 round-trips).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on other variants.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an unsigned integer.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (the writer half:
/// responses are assembled by [`crate::proto::Reply`]).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nesting ceiling: requests are ≤ 3 levels deep; anything past this is
/// hostile or corrupt input, not an API call.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(b))))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("number bytes are not ASCII"))?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number {raw:?} at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(&b) => {
                    // Copy the whole UTF-8 sequence through untouched.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let doc = Json::parse(r#"{"schema":"cfs-api/1","op":"query","iface":"10.0.0.1"}"#).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("cfs-api/1"));
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(doc.get("iface").and_then(Json::as_str), Some("10.0.0.1"));
    }

    #[test]
    fn malformed_documents_say_where() {
        for (src, needle) in [
            ("{\"a\":}", "expected a JSON value"),
            ("[1,2", "expected ',' or ']'"),
            ("{\"a\":1}x", "trailing data"),
            ("\"unterminated", "unterminated string"),
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(err.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting too deep"));
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = Json::parse(&format!("\"{}\"", escape(nasty))).unwrap();
        assert_eq!(doc.as_str(), Some(nasty));
    }
}
