//! The `cfs-api/1` wire protocol: versioned request parsing and
//! response assembly with typed errors.
//!
//! Every message — request and response — is one line of JSON whose
//! first obligation is `"schema":"cfs-api/1"`. A client talking a future
//! `cfs-api/2` gets a clean `unknown_schema` error instead of silent
//! misinterpretation, exactly how `cfs trace-validate` treats trace
//! documents it does not speak.
//!
//! ## Requests
//!
//! | `op`       | members                                  | meaning                              |
//! |------------|------------------------------------------|--------------------------------------|
//! | `status`   | —                                        | session stats + epoch                |
//! | `query`    | `iface: "a.b.c.d"`                       | facility/method/confidence lookup    |
//! | `delta`    | `kind: "kb-flip"`, `asn`, `facility`, `present` | flip one AS↔facility listing  |
//! | `delta`    | `kind: "campaign"`, `campaign`           | ingest deterministic campaign *k*    |
//! | `delta`    | `kind: "vp-status"`, `vp`, `up`          | mark a vantage point down/up         |
//! | `trace`    | —                                        | canonical `cfs-trace/1` document     |
//! | `metrics`  | —                                        | `cfs-metrics/1` window snapshot      |
//! | `events`   | `since` (optional, default 0), `min_severity` (optional: `info`\|`warn`\|`error`) | drain `cfs-log/1` events from cursor |
//! | `alerts`   | `since` (optional, default 0), `min_severity` (optional: `info`\|`warn`\|`error`) | drain `cfs-alerts/1` alerts from cursor |
//! | `shutdown` | —                                        | stop the daemon after responding     |
//!
//! ## Error codes
//!
//! `unknown_schema`, `bad_request`, `unknown_op`, `bad_iface`,
//! `unknown_iface`, `bad_delta`, `internal` — stable strings pinned by
//! the CLI tests; new codes may be added, existing ones never change
//! meaning.

use crate::json::{escape, Json};

/// The protocol version tag every request and response carries.
pub const SCHEMA: &str = "cfs-api/1";

/// A parsed `cfs-api/1` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Session statistics and the current report epoch.
    Status,
    /// Single-interface lookup. The address stays a string here; the
    /// engine side parses it and answers `bad_iface` when it is not an
    /// IPv4 address.
    Query {
        /// The queried interface address, verbatim from the wire.
        iface: String,
    },
    /// Knowledge-base delta: add (`present: true`) or remove one
    /// AS → facility listing, then flip the epoch.
    DeltaKbFlip {
        /// The AS whose footprint changes.
        asn: u32,
        /// The facility being listed or delisted.
        facility: u32,
        /// Whether the listing exists in the new epoch.
        present: bool,
    },
    /// Traceroute delta: ingest the daemon's deterministic campaign
    /// number `campaign` (campaigns are a pure function of the world
    /// seed, so two daemons fed the same numbers hold the same inputs).
    DeltaCampaign {
        /// 1-based campaign number.
        campaign: u64,
    },
    /// Vantage-point status delta.
    DeltaVpStatus {
        /// The platform whose status changes.
        vp: u32,
        /// `true` when it comes back up.
        up: bool,
    },
    /// The canonical trace document for the current report.
    Trace,
    /// The live `cfs-metrics/1` snapshot: rolling windows of counters,
    /// histograms, and request latencies, plus merged totals.
    Metrics,
    /// Drain structured `cfs-log/1` events with sequence ≥ `since`.
    Events {
        /// The client's cursor: the first sequence number it has not
        /// seen. `0` (the wire default) drains everything retained.
        since: u64,
        /// Severity floor: only events at or above this level are
        /// returned. `None` (absent on the wire) means everything.
        /// Validated at parse — only `"info"`, `"warn"`, `"error"` pass.
        min_severity: Option<String>,
    },
    /// Drain `cfs-alerts/1` disruption alerts with sequence ≥ `since`.
    /// A daemon running without `--detect` answers with an empty list
    /// and an unmoved cursor rather than an error, so pollers need no
    /// capability probe.
    Alerts {
        /// The client's cursor: the first sequence number it has not
        /// seen. `0` (the wire default) drains everything retained.
        since: u64,
        /// Severity floor, same pinned vocabulary as `events`.
        min_severity: Option<String>,
    },
    /// Stop the daemon after acknowledging.
    Shutdown,
}

/// A typed protocol error: a stable machine-readable code plus a human
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// Stable error code (module docs list the vocabulary).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Builds an error with the given stable code.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Renders the error as a `cfs-api/1` response line.
    pub fn to_response(&self) -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
            self.code,
            escape(&self.message)
        )
    }
}

fn require_u64(doc: &Json, key: &str, code: &'static str) -> Result<u64, ApiError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::new(code, format!("missing or non-integer member {key:?}")))
}

fn require_bool(doc: &Json, key: &str, code: &'static str) -> Result<bool, ApiError> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ApiError::new(code, format!("missing or non-boolean member {key:?}")))
}

/// The shared cursor-drain members of `events` and `alerts`: `since` is
/// optional (absent means "from the beginning") but when present must
/// be an unsigned integer; `min_severity`'s vocabulary is pinned here
/// (parser authority) so the dispatch side never sees an unknown level.
fn cursor_members(doc: &Json) -> Result<(u64, Option<String>), ApiError> {
    let since = match doc.get("since") {
        None => 0,
        Some(v) => v.as_u64().ok_or_else(|| {
            ApiError::new(
                "bad_request",
                "member \"since\" must be an unsigned integer",
            )
        })?,
    };
    let min_severity = match doc.get("min_severity") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s @ ("info" | "warn" | "error")) => Some(s.to_string()),
            _ => {
                return Err(ApiError::new(
                    "bad_request",
                    "member \"min_severity\" must be \"info\", \"warn\", or \"error\"",
                ));
            }
        },
    };
    Ok((since, min_severity))
}

/// Parses one request line. Schema validation comes first: a missing or
/// foreign `schema` member is `unknown_schema` no matter what else the
/// document says.
pub fn parse_request(line: &str) -> Result<Request, ApiError> {
    let doc = Json::parse(line).map_err(|e| ApiError::new("bad_request", e))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(other) => {
            return Err(ApiError::new(
                "unknown_schema",
                format!("unsupported schema {other:?} (this daemon speaks {SCHEMA:?})"),
            ));
        }
        None => {
            return Err(ApiError::new(
                "unknown_schema",
                format!("request carries no \"schema\" member (expected {SCHEMA:?})"),
            ));
        }
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("bad_request", "missing or non-string member \"op\""))?;
    match op {
        "status" => Ok(Request::Status),
        "trace" => Ok(Request::Trace),
        "metrics" => Ok(Request::Metrics),
        "events" => {
            let (since, min_severity) = cursor_members(&doc)?;
            Ok(Request::Events {
                since,
                min_severity,
            })
        }
        "alerts" => {
            let (since, min_severity) = cursor_members(&doc)?;
            Ok(Request::Alerts {
                since,
                min_severity,
            })
        }
        "shutdown" => Ok(Request::Shutdown),
        "query" => {
            let iface = doc.get("iface").and_then(Json::as_str).ok_or_else(|| {
                ApiError::new("bad_request", "query requires a string member \"iface\"")
            })?;
            Ok(Request::Query {
                iface: iface.to_string(),
            })
        }
        "delta" => {
            let kind = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
                ApiError::new("bad_delta", "delta requires a string member \"kind\"")
            })?;
            match kind {
                "kb-flip" => Ok(Request::DeltaKbFlip {
                    asn: require_u64(&doc, "asn", "bad_delta")? as u32,
                    facility: require_u64(&doc, "facility", "bad_delta")? as u32,
                    present: require_bool(&doc, "present", "bad_delta")?,
                }),
                "campaign" => Ok(Request::DeltaCampaign {
                    campaign: require_u64(&doc, "campaign", "bad_delta")?,
                }),
                "vp-status" => Ok(Request::DeltaVpStatus {
                    vp: require_u64(&doc, "vp", "bad_delta")? as u32,
                    up: require_bool(&doc, "up", "bad_delta")?,
                }),
                other => Err(ApiError::new(
                    "bad_delta",
                    format!("unknown delta kind {other:?}"),
                )),
            }
        }
        other => Err(ApiError::new("unknown_op", format!("unknown op {other:?}"))),
    }
}

/// Assembles a successful response line member by member.
///
/// ```
/// use cfs_svc::Reply;
/// let line = Reply::ok().str("verdict", "resolved").u64("epoch", 3).finish();
/// assert_eq!(line, r#"{"schema":"cfs-api/1","ok":true,"verdict":"resolved","epoch":3}"#);
/// ```
#[must_use = "call .finish() to obtain the response line"]
pub struct Reply {
    body: String,
}

impl Reply {
    /// Starts an `ok: true` response.
    pub fn ok() -> Self {
        Self {
            body: format!("{{\"schema\":\"{SCHEMA}\",\"ok\":true"),
        }
    }

    /// Appends a string member.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.body
            .push_str(&format!(",\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Appends an optional string member (`null` when absent).
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Appends an unsigned integer member.
    pub fn u64(self, key: &str, value: u64) -> Self {
        let rendered = value.to_string();
        self.raw(key, &rendered)
    }

    /// Appends an optional unsigned integer member (`null` when absent).
    pub fn opt_u64(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Appends a float member (shortest round-trip formatting).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let rendered = format!("{value}");
        self.raw(key, &rendered)
    }

    /// Appends a boolean member.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Appends a pre-rendered JSON value member.
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.body
            .push_str(&format!(",\"{}\":{}", escape(key), rendered));
        self
    }

    /// Closes the response line.
    pub fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_requests_parse() {
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"status"}"#),
            Ok(Request::Status)
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"query","iface":"10.1.2.3"}"#),
            Ok(Request::Query {
                iface: "10.1.2.3".into()
            })
        );
        assert_eq!(
            parse_request(
                r#"{"schema":"cfs-api/1","op":"delta","kind":"kb-flip","asn":64500,"facility":7,"present":false}"#
            ),
            Ok(Request::DeltaKbFlip {
                asn: 64500,
                facility: 7,
                present: false
            })
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"delta","kind":"campaign","campaign":2}"#),
            Ok(Request::DeltaCampaign { campaign: 2 })
        );
        assert_eq!(
            parse_request(
                r#"{"schema":"cfs-api/1","op":"delta","kind":"vp-status","vp":4,"up":true}"#
            ),
            Ok(Request::DeltaVpStatus { vp: 4, up: true })
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"metrics"}"#),
            Ok(Request::Metrics)
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"events"}"#),
            Ok(Request::Events {
                since: 0,
                min_severity: None
            })
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"events","since":41}"#),
            Ok(Request::Events {
                since: 41,
                min_severity: None
            })
        );
        assert_eq!(
            parse_request(
                r#"{"schema":"cfs-api/1","op":"events","since":7,"min_severity":"warn"}"#
            ),
            Ok(Request::Events {
                since: 7,
                min_severity: Some("warn".to_string())
            })
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"alerts"}"#),
            Ok(Request::Alerts {
                since: 0,
                min_severity: None
            })
        );
        assert_eq!(
            parse_request(
                r#"{"schema":"cfs-api/1","op":"alerts","since":3,"min_severity":"error"}"#
            ),
            Ok(Request::Alerts {
                since: 3,
                min_severity: Some("error".to_string())
            })
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
    }

    #[test]
    fn schema_discipline_mirrors_trace_validate() {
        // Missing schema and foreign schema are both unknown_schema; the
        // op is never even inspected.
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap_err().code,
            "unknown_schema"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/2","op":"nonsense"}"#)
                .unwrap_err()
                .code,
            "unknown_schema"
        );
    }

    #[test]
    fn typed_errors_cover_the_failure_modes() {
        assert_eq!(parse_request("{oops").unwrap_err().code, "bad_request");
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1"}"#).unwrap_err().code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"frobnicate"}"#)
                .unwrap_err()
                .code,
            "unknown_op"
        );
        // The severity vocabulary is pinned at parse time: anything
        // outside info|warn|error is refused here, never dispatched.
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"events","min_severity":"debug"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"events","min_severity":3}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"query"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"delta","kind":"kb-flip","asn":"x"}"#)
                .unwrap_err()
                .code,
            "bad_delta"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"delta","kind":"mystery"}"#)
                .unwrap_err()
                .code,
            "bad_delta"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"events","since":"yesterday"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        // The alerts op shares the cursor-member validation.
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"alerts","since":"now"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"schema":"cfs-api/1","op":"alerts","min_severity":"loud"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
    }

    #[test]
    fn error_responses_are_schema_stamped() {
        let line = ApiError::new("bad_iface", "not an IPv4 address: \"x\"").to_response();
        assert!(line.starts_with("{\"schema\":\"cfs-api/1\",\"ok\":false,"));
        assert!(line.contains("\"code\":\"bad_iface\""));
        assert!(line.contains("\\\"x\\\""));
    }

    #[test]
    fn reply_builder_renders_members_in_order() {
        let line = Reply::ok()
            .str("a", "x")
            .u64("b", 7)
            .opt_u64("c", None)
            .bool("d", false)
            .f64("e", 0.25)
            .finish();
        assert_eq!(
            line,
            r#"{"schema":"cfs-api/1","ok":true,"a":"x","b":7,"c":null,"d":false,"e":0.25}"#
        );
    }
}
