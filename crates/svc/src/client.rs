//! The blocking line-oriented client `cfs query` and the tests use.
//!
//! Living here keeps raw socket use single-homed in `crates/svc`
//! (`cfs-lint`'s `raw-socket` rule): everything else in the workspace
//! talks to a daemon through [`Client`], never through `std::net`
//! directly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4015`.
    Tcp(String),
    /// A Unix socket path.
    Unix(PathBuf),
}

enum Stream {
    Tcp(BufReader<TcpStream>, TcpStream),
    Unix(BufReader<UnixStream>, UnixStream),
}

/// A connected `cfs-api/1` client.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Self> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                Stream::Tcp(BufReader::new(s.try_clone()?), s)
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                Stream::Unix(BufReader::new(s.try_clone()?), s)
            }
        };
        Ok(Self { stream })
    }

    /// Sends one request line and reads one response line. The newline
    /// is appended here; `request` must not contain one.
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        let mut line = String::new();
        match &mut self.stream {
            Stream::Tcp(reader, writer) => {
                writer.write_all(request.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                reader.read_line(&mut line)?;
            }
            Stream::Unix(reader, writer) => {
                writer.write_all(request.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                reader.read_line(&mut line)?;
            }
        }
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without responding",
            ));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Reply, Request};
    use crate::server::{Outcome, Server};

    /// End-to-end over a real Unix socket: daemon thread + client
    /// roundtrips, including a malformed line and a shutdown.
    #[test]
    fn client_and_server_speak_over_a_unix_socket() {
        let dir = std::env::temp_dir().join(format!("cfs-svc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfsd.sock");
        let server = Server::bind_unix(&path).unwrap();
        #[allow(clippy::disallowed_methods)] // test-only daemon thread, joined before exit
        let handle = std::thread::spawn(move || {
            server
                .serve(|req| match req {
                    Request::Status => Outcome::reply(Reply::ok().str("state", "serving").finish()),
                    Request::Shutdown => {
                        Outcome::last(Reply::ok().str("state", "stopping").finish())
                    }
                    _ => Outcome::reply(Reply::ok().finish()),
                })
                .unwrap();
        });

        let mut client = Client::connect(&Endpoint::Unix(path.clone())).unwrap();
        let status = client
            .roundtrip("{\"schema\":\"cfs-api/1\",\"op\":\"status\"}")
            .unwrap();
        assert!(status.contains("\"state\":\"serving\""));
        let bad = client.roundtrip("{broken").unwrap();
        assert!(bad.contains("\"ok\":false"));
        assert!(bad.contains("\"code\":\"bad_request\""));
        let bye = client
            .roundtrip("{\"schema\":\"cfs-api/1\",\"op\":\"shutdown\"}")
            .unwrap();
        assert!(bye.contains("\"state\":\"stopping\""));
        handle.join().unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn client_and_server_speak_over_tcp() {
        let server = Server::bind_tcp("127.0.0.1:0").unwrap();
        let addr = server.tcp_addr().unwrap().to_string();
        #[allow(clippy::disallowed_methods)] // test-only daemon thread, joined before exit
        let handle = std::thread::spawn(move || {
            server
                .serve(|req| match req {
                    Request::Shutdown => Outcome::last(Reply::ok().finish()),
                    _ => Outcome::reply(Reply::ok().u64("answer", 42).finish()),
                })
                .unwrap();
        });
        let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
        let reply = client
            .roundtrip("{\"schema\":\"cfs-api/1\",\"op\":\"status\"}")
            .unwrap();
        assert!(reply.contains("\"answer\":42"));
        client
            .roundtrip("{\"schema\":\"cfs-api/1\",\"op\":\"shutdown\"}")
            .unwrap();
        handle.join().unwrap();
    }
}
