//! # cfs-svc
//!
//! The service layer of `cfsd`: a dependency-free transport and wire
//! protocol for querying a resident CFS session.
//!
//! The crate deliberately knows nothing about the engine. It owns three
//! things:
//!
//! 1. **`cfs-api/1`** ([`proto`]): a versioned, line-delimited JSON
//!    request/response schema with typed errors, following the
//!    `cfs-trace/1` schema-stability discipline — every message carries
//!    `"schema":"cfs-api/1"`, unknown schemas are rejected the way
//!    `cfs trace-validate` rejects them, and error responses carry a
//!    stable machine-readable code.
//! 2. **The daemon loop** ([`server`]): a single-threaded accept loop
//!    over a TCP or Unix socket. One request line in, one response line
//!    out; malformed lines are answered with a typed error without
//!    involving the embedder's dispatch function.
//! 3. **The client** ([`client`]): a blocking line-oriented roundtrip
//!    used by `cfs query`, the CI smoke job, and the CLI tests — so raw
//!    socket use stays single-homed in this crate (`cfs-lint`'s
//!    `raw-socket` rule sanctions it anywhere else).
//!
//! JSON parsing is hand-rolled in [`json`], mirroring the reader
//! `cfs-obs` uses for trace diffing: member order preserved, numbers
//! kept as source text, byte-offset error messages.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
mod json;
pub mod proto;
pub mod server;

pub use client::{Client, Endpoint};
pub use proto::{parse_request, ApiError, Reply, Request, SCHEMA};
pub use server::{Outcome, Server, MAX_REQUEST_LINE};
