//! The `cfsd` daemon loop: a deliberately single-threaded accept loop
//! over a TCP or Unix socket.
//!
//! One thread, one connection at a time, one request line → one response
//! line. The session behind the dispatch function is `&mut` state with
//! no locks — serialization *is* the concurrency model, exactly like the
//! engine's submission-order merges: answers depend only on the order
//! requests arrive, never on scheduling.
//!
//! Malformed or unversioned lines are answered in the loop with the
//! typed errors of [`crate::proto`]; the embedder's dispatch function
//! only ever sees well-formed [`Request`]s.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::Path;

use crate::proto::{parse_request, Request};

/// What the dispatch function returns: the response line (without
/// newline) and whether the daemon should stop after sending it.
pub struct Outcome {
    /// The `cfs-api/1` response line.
    pub response: String,
    /// `true` to stop accepting after this response ([`Request::Shutdown`]).
    pub shutdown: bool,
}

impl Outcome {
    /// A keep-serving outcome.
    pub fn reply(response: String) -> Self {
        Self {
            response,
            shutdown: false,
        }
    }

    /// A stop-after-this outcome.
    pub fn last(response: String) -> Self {
        Self {
            response,
            shutdown: true,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// The daemon's listening socket.
pub struct Server {
    listener: Listener,
}

impl Server {
    /// Binds a TCP listener (e.g. `127.0.0.1:4015`).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
        })
    }

    /// Binds a Unix socket, replacing a stale socket file from a
    /// previous daemon if one is in the way.
    pub fn bind_unix(path: &Path) -> std::io::Result<Self> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(Self {
            listener: Listener::Unix(UnixListener::bind(path)?),
        })
    }

    /// The bound TCP address, when listening on TCP (useful with port 0).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// Runs the accept loop until a dispatch returns
    /// [`Outcome::shutdown`] or accepting fails. Connection-level I/O
    /// errors (a client hanging up mid-line) drop that connection and
    /// keep serving.
    pub fn serve(self, mut dispatch: impl FnMut(Request) -> Outcome) -> std::io::Result<()> {
        match self.listener {
            Listener::Tcp(listener) => {
                for stream in listener.incoming() {
                    let stream = stream?;
                    let reader = BufReader::new(stream.try_clone()?);
                    if serve_connection(reader, stream, &mut dispatch)? {
                        return Ok(());
                    }
                }
                Ok(())
            }
            Listener::Unix(listener) => {
                for stream in listener.incoming() {
                    let stream = stream?;
                    let reader = BufReader::new(stream.try_clone()?);
                    if serve_connection(reader, stream, &mut dispatch)? {
                        return Ok(());
                    }
                }
                Ok(())
            }
        }
    }
}

/// Serves one connection; returns `Ok(true)` when a shutdown was
/// requested and acknowledged.
fn serve_connection<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    dispatch: &mut impl FnMut(Request) -> Outcome,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let Ok(line) = line else {
            return Ok(false); // client hung up mid-line; keep serving
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match parse_request(&line) {
            Err(e) => (e.to_response(), false),
            Ok(req) => {
                let outcome = dispatch(req);
                (outcome.response, outcome.shutdown)
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return Ok(false); // client gone before the answer; keep serving
        }
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Reply;

    #[test]
    fn connection_loop_answers_parse_errors_without_dispatch() {
        let input = b"{nonsense\n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n".to_vec();
        let mut out = Vec::new();
        let mut dispatched = 0;
        let done = serve_connection(&input[..], &mut out, &mut |req| {
            dispatched += 1;
            assert_eq!(req, Request::Status);
            Outcome::reply(Reply::ok().str("state", "serving").finish())
        })
        .unwrap();
        assert!(!done);
        assert_eq!(dispatched, 1, "malformed line must not reach dispatch");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"code\":\"bad_request\""));
        assert!(lines[1].contains("\"state\":\"serving\""));
    }

    #[test]
    fn shutdown_outcome_ends_the_loop_after_responding() {
        let input =
            b"{\"schema\":\"cfs-api/1\",\"op\":\"shutdown\"}\n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n"
                .to_vec();
        let mut out = Vec::new();
        let mut dispatched = 0;
        let done = serve_connection(&input[..], &mut out, &mut |req| {
            dispatched += 1;
            match req {
                Request::Shutdown => Outcome::last(Reply::ok().str("state", "stopping").finish()),
                _ => Outcome::reply(Reply::ok().finish()),
            }
        })
        .unwrap();
        assert!(done);
        assert_eq!(dispatched, 1, "requests after shutdown must not dispatch");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = b"\n  \n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&input[..], &mut out, &mut |_| {
            Outcome::reply(Reply::ok().finish())
        })
        .unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }
}
