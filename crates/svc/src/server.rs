//! The `cfsd` daemon loop: a deliberately single-threaded accept loop
//! over a TCP or Unix socket.
//!
//! One thread, one connection at a time, one request line → one response
//! line. The session behind the dispatch function is `&mut` state with
//! no locks — serialization *is* the concurrency model, exactly like the
//! engine's submission-order merges: answers depend only on the order
//! requests arrive, never on scheduling.
//!
//! Because one connection at a time is the whole model, one *client* can
//! wedge the daemon in two ways a multi-threaded server shrugs off:
//! holding the connection open without ever finishing a line (the read
//! deadline drops it), or streaming an unbounded line that would grow
//! the daemon's buffer without limit (the request-line cap answers
//! `bad_request` and drops it). Both bounds live here in the transport;
//! dispatch never sees the abuse.
//!
//! Malformed or unversioned lines are answered in the loop with the
//! typed errors of [`crate::proto`]; the embedder's dispatch function
//! only ever sees well-formed [`Request`]s.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::time::Duration;

use crate::proto::{parse_request, ApiError, Request};

/// Hard cap on one request line, bytes (newline excluded). `cfs-api/1`
/// requests are a few hundred bytes; anything past this is a runaway or
/// hostile client, not a request.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// What the dispatch function returns: the response line (without
/// newline) and whether the daemon should stop after sending it.
pub struct Outcome {
    /// The `cfs-api/1` response line.
    pub response: String,
    /// `true` to stop accepting after this response ([`Request::Shutdown`]).
    pub shutdown: bool,
}

impl Outcome {
    /// A keep-serving outcome.
    pub fn reply(response: String) -> Self {
        Self {
            response,
            shutdown: false,
        }
    }

    /// A stop-after-this outcome.
    pub fn last(response: String) -> Self {
        Self {
            response,
            shutdown: true,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// The daemon's listening socket.
pub struct Server {
    listener: Listener,
    read_deadline: Option<Duration>,
}

impl Server {
    /// Binds a TCP listener (e.g. `127.0.0.1:4015`).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            read_deadline: None,
        })
    }

    /// Binds a Unix socket, replacing a stale socket file from a
    /// previous daemon if one is in the way.
    pub fn bind_unix(path: &Path) -> std::io::Result<Self> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(Self {
            listener: Listener::Unix(UnixListener::bind(path)?),
            read_deadline: None,
        })
    }

    /// Sets the per-connection read deadline: a connection that goes
    /// this long without completing a request line is dropped (the
    /// daemon keeps accepting). `None` — the default — waits forever,
    /// which is fine for trusted local sockets.
    pub fn with_read_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.read_deadline = deadline.filter(|d| !d.is_zero());
        self
    }

    /// The bound TCP address, when listening on TCP (useful with port 0).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// Runs the accept loop until a dispatch returns
    /// [`Outcome::shutdown`] or accepting fails. Connection-level I/O
    /// errors (a client hanging up mid-line, a read past the deadline)
    /// drop that connection and keep serving.
    pub fn serve(self, mut dispatch: impl FnMut(Request) -> Outcome) -> std::io::Result<()> {
        let deadline = self.read_deadline;
        match self.listener {
            Listener::Tcp(listener) => {
                for stream in listener.incoming() {
                    let stream = stream?;
                    stream.set_read_timeout(deadline)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    if serve_connection(reader, stream, &mut dispatch)? {
                        return Ok(());
                    }
                }
                Ok(())
            }
            Listener::Unix(listener) => {
                for stream in listener.incoming() {
                    let stream = stream?;
                    stream.set_read_timeout(deadline)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    if serve_connection(reader, stream, &mut dispatch)? {
                        return Ok(());
                    }
                }
                Ok(())
            }
        }
    }
}

/// Reads one `\n`-terminated line of at most [`MAX_REQUEST_LINE`] bytes.
///
/// * `Ok(Some(line))` — a complete line (newline stripped).
/// * `Ok(None)` — clean end of stream before any byte of a new line.
/// * `Err(Overflow)` — the cap was hit before a newline arrived.
/// * `Err(Io)` — the client hung up mid-line or a read timed out.
enum LineError {
    Overflow,
    Io,
}

fn read_bounded_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(_) => return Err(LineError::Io),
        };
        if chunk.is_empty() {
            // EOF: a partial unterminated line is I/O noise, a clean
            // boundary is end-of-connection.
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(LineError::Io)
            };
        }
        match chunk.iter().position(|b| *b == b'\n') {
            Some(newline) => {
                if buf.len() + newline > MAX_REQUEST_LINE {
                    return Err(LineError::Overflow);
                }
                buf.extend_from_slice(&chunk[..newline]);
                reader.consume(newline + 1);
                return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > MAX_REQUEST_LINE {
                    return Err(LineError::Overflow);
                }
                buf.extend_from_slice(chunk);
                reader.consume(take);
            }
        }
    }
}

/// Serves one connection; returns `Ok(true)` when a shutdown was
/// requested and acknowledged.
fn serve_connection<R: BufRead, W: Write>(
    mut reader: R,
    mut writer: W,
    dispatch: &mut impl FnMut(Request) -> Outcome,
) -> std::io::Result<bool> {
    loop {
        let line = match read_bounded_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(false), // clean end of connection
            Err(LineError::Io) => return Ok(false), // hang-up or deadline; keep serving
            Err(LineError::Overflow) => {
                // Tell the client why before cutting it loose; the rest
                // of its stream is undelimited garbage by definition.
                let e = ApiError::new(
                    "bad_request",
                    format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                );
                let _ = writer
                    .write_all(e.to_response().as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                return Ok(false);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match parse_request(&line) {
            Err(e) => (e.to_response(), false),
            Ok(req) => {
                let outcome = dispatch(req);
                (outcome.response, outcome.shutdown)
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return Ok(false); // client gone before the answer; keep serving
        }
        if shutdown {
            return Ok(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Reply;

    #[test]
    fn connection_loop_answers_parse_errors_without_dispatch() {
        let input = b"{nonsense\n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n".to_vec();
        let mut out = Vec::new();
        let mut dispatched = 0;
        let done = serve_connection(&input[..], &mut out, &mut |req| {
            dispatched += 1;
            assert_eq!(req, Request::Status);
            Outcome::reply(Reply::ok().str("state", "serving").finish())
        })
        .unwrap();
        assert!(!done);
        assert_eq!(dispatched, 1, "malformed line must not reach dispatch");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"code\":\"bad_request\""));
        assert!(lines[1].contains("\"state\":\"serving\""));
    }

    #[test]
    fn shutdown_outcome_ends_the_loop_after_responding() {
        let input =
            b"{\"schema\":\"cfs-api/1\",\"op\":\"shutdown\"}\n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n"
                .to_vec();
        let mut out = Vec::new();
        let mut dispatched = 0;
        let done = serve_connection(&input[..], &mut out, &mut |req| {
            dispatched += 1;
            match req {
                Request::Shutdown => Outcome::last(Reply::ok().str("state", "stopping").finish()),
                _ => Outcome::reply(Reply::ok().finish()),
            }
        })
        .unwrap();
        assert!(done);
        assert_eq!(dispatched, 1, "requests after shutdown must not dispatch");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = b"\n  \n{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&input[..], &mut out, &mut |_| {
            Outcome::reply(Reply::ok().finish())
        })
        .unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }

    #[test]
    fn oversized_request_line_is_refused_without_dispatch() {
        // A line one byte past the cap, then a well-formed request the
        // connection never gets to: overflow drops the connection.
        let mut input = vec![b'x'; MAX_REQUEST_LINE + 1];
        input.push(b'\n');
        input.extend_from_slice(b"{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n");
        let mut out = Vec::new();
        let mut dispatched = 0;
        let done = serve_connection(&input[..], &mut out, &mut |_| {
            dispatched += 1;
            Outcome::reply(Reply::ok().finish())
        })
        .unwrap();
        assert!(!done);
        assert_eq!(dispatched, 0, "overflow must never reach dispatch");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"code\":\"bad_request\""), "{text}");
        assert!(text.contains("exceeds"), "{text}");
    }

    #[test]
    fn lines_at_the_cap_still_parse() {
        // Exactly MAX_REQUEST_LINE bytes: refused by the parser (it is
        // not valid JSON) but NOT by the length guard — the error code
        // still flows back and the connection stays up for the next
        // request.
        let mut input = vec![b'y'; MAX_REQUEST_LINE];
        input.push(b'\n');
        input.extend_from_slice(b"{\"schema\":\"cfs-api/1\",\"op\":\"status\"}\n");
        let mut out = Vec::new();
        let mut dispatched = 0;
        serve_connection(&input[..], &mut out, &mut |_| {
            dispatched += 1;
            Outcome::reply(Reply::ok().finish())
        })
        .unwrap();
        assert_eq!(dispatched, 1, "the follow-up request must dispatch");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn mid_line_hangup_keeps_the_loop_alive() {
        let input = b"{\"schema\":\"cfs-api/1\"".to_vec(); // no newline, then EOF
        let mut out = Vec::new();
        let done = serve_connection(&input[..], &mut out, &mut |_| {
            Outcome::reply(Reply::ok().finish())
        })
        .unwrap();
        assert!(!done);
        assert!(out.is_empty());
    }
}
