//! The `cfs-profile/1` contract from the outside: a recorded snapshot
//! renders to a document that parses back and re-renders byte-identical
//! (the golden-file property the CI gate leans on), and the diff engine
//! sees through the whole loop.

use std::sync::Arc;

use cfs_obs::{
    diff_docs, DocDiff, ProfileDoc, Recorder, TraceRecorder, Virtual, PROFILE_BOUNDS_NS,
    PROFILE_SCHEMA,
};

/// A recorder that walked through a plausible run shape: nested stages
/// with distinct, scripted durations.
fn recorded() -> TraceRecorder {
    let clock = Arc::new(Virtual::new());
    let rec = TraceRecorder::new(clock.clone());
    let run = rec.span_start();
    for i in 0..5u64 {
        let iter = rec.span_start();
        let constrain = rec.span_start();
        clock.advance(1_000_000 + i * 250_000);
        rec.span_end("stage.constrain", constrain);
        let followup = rec.span_start();
        clock.advance(400_000);
        rec.span_end("stage.followup", followup);
        rec.span_end("cfs.iteration", iter);
    }
    clock.advance(2_000_000);
    rec.span_end("cfs.run", run);
    rec
}

#[test]
fn serialize_parse_reserialize_is_byte_identical() {
    let doc = cfs_obs::render_profile_json(&recorded().snapshot());
    assert!(doc.starts_with(&format!("{{\"schema\":\"{PROFILE_SCHEMA}\"")));
    let parsed = ProfileDoc::parse(&doc).expect("own export parses");
    assert_eq!(parsed.bounds, PROFILE_BOUNDS_NS.to_vec());
    assert_eq!(
        parsed.render(),
        doc,
        "parse → render must round-trip byte-identically"
    );
    // And once more, through a second generation.
    let again = ProfileDoc::parse(&parsed.render()).expect("reparse");
    assert_eq!(again.render(), doc);
}

#[test]
fn recorded_quantiles_are_sane() {
    let snap = recorded().snapshot();
    let constrain = &snap.durations["stage.constrain"];
    assert_eq!(constrain.count, 5);
    assert_eq!(constrain.min_ns, 1_000_000);
    assert_eq!(constrain.max_ns, 2_000_000);
    let p50 = constrain.quantile_ns(50);
    let p99 = constrain.quantile_ns(99);
    assert!(
        (constrain.min_ns..=constrain.max_ns).contains(&p50),
        "p50 {p50} outside extrema"
    );
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    // cfs.run wraps everything: its one entry spans the whole tape.
    assert_eq!(snap.durations["cfs.run"].count, 1);
    assert!(snap.durations["cfs.run"].total_ns > constrain.total_ns);
}

#[test]
fn profile_self_diff_is_clean_and_slowdown_is_flagged() {
    let doc = cfs_obs::render_profile_json(&recorded().snapshot());
    let clean = diff_docs(&doc, &doc, 25).expect("well-formed pair");
    assert!(!clean.is_drift(), "self-compare drifted");

    // A second run, 3× slower per stage: beyond any reasonable tolerance.
    let clock = Arc::new(Virtual::new());
    let slow = TraceRecorder::new(clock.clone());
    let run = slow.span_start();
    for i in 0..5u64 {
        let iter = slow.span_start();
        let constrain = slow.span_start();
        clock.advance(3 * (1_000_000 + i * 250_000));
        slow.span_end("stage.constrain", constrain);
        let followup = slow.span_start();
        clock.advance(3 * 400_000);
        slow.span_end("stage.followup", followup);
        slow.span_end("cfs.iteration", iter);
    }
    clock.advance(6_000_000);
    slow.span_end("cfs.run", run);
    let slow_doc = cfs_obs::render_profile_json(&slow.snapshot());

    let diff = diff_docs(&doc, &slow_doc, 25).expect("well-formed pair");
    assert!(diff.is_drift(), "3× slowdown within 25% tolerance?");
    let DocDiff::Profile(p) = &diff else {
        panic!("profile pair must produce a profile diff");
    };
    assert!(
        p.duration_changed
            .iter()
            .any(|d| d.name == "stage.constrain"),
        "slow stage not named: {}",
        diff.render_text()
    );
    assert!(p.counts_changed.is_empty(), "same shape, counts equal");

    // A generous tolerance swallows it again.
    assert!(!diff_docs(&doc, &slow_doc, 500).unwrap().is_drift());
}

#[test]
fn profile_report_renders_the_tree() {
    let doc_raw = cfs_obs::render_profile_json(&recorded().snapshot());
    let doc = ProfileDoc::parse(&doc_raw).unwrap();
    let report = cfs_obs::render_profile_report(&doc, 3);
    assert!(report.contains("cfs.run"), "{report}");
    assert!(report.contains("stage.constrain"), "{report}");
    assert!(report.contains("bottlenecks"), "{report}");
}
