//! The collecting recorder and its deterministic aggregation.
//!
//! [`TraceRecorder`] buffers signals into a fixed array of shards, each
//! behind its own mutex; a thread writes to the shard assigned to it on
//! first use (a process-wide round-robin), so the engine's scoped
//! workers rarely contend. [`TraceRecorder::snapshot`] merges the shards
//! **in shard-index order** into `BTreeMap`s.
//!
//! ## Determinism contract
//!
//! A snapshot is byte-stable across worker counts because every merged
//! quantity is a sum of per-*item* integer contributions, and the item
//! set (traces extracted, remote tests run, constraints applied…) is
//! itself independent of how work was chunked across threads. Which
//! shard a contribution lands in varies run to run; the fixed-order
//! merge over commutative sums erases that. The only thread-sensitive
//! quantities are span durations, which is why the stable export
//! ([`crate::export::stable_body`]) carries span *counts* but never
//! nanoseconds. Durations still accumulate — per-span min/max and
//! log-scaled distributions in [`TraceSnapshot::durations`] — but they
//! leave the process only through the non-digested `cfs-profile/1`
//! sidecar ([`crate::profile`]) and the human `--metrics` summary.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, Virtual};
use crate::profile::DurationStats;
use crate::recorder::Recorder;

/// Number of shards: matches the engine's worker clamp (≤ 16), so at
/// full fan-out each worker usually owns a shard.
const SHARDS: usize = 16;

/// Upper (inclusive) bucket bounds of every histogram: powers of two up
/// to 32768, plus an overflow bucket. Fixed bounds keep merged
/// histograms exact and the export schema stable.
pub const HISTOGRAM_BOUNDS: [u64; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// A monotonic histogram over [`HISTOGRAM_BOUNDS`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// One counter per bound, plus the trailing overflow bucket.
    pub buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[idx] += 1;
    }

    /// Adds another histogram into this one (exact: bounds are shared).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample value, when any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Aggregated timing of one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed entries.
    pub count: u64,
    /// Total time spent inside, in clock nanoseconds. Excluded from the
    /// stable export (see module docs).
    pub total_ns: u64,
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
    durations: BTreeMap<&'static str, DurationStats>,
}

/// A merged, immutable view of everything recorded so far.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Span statistics by name.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// The duration sidecar: per-span wall-clock distributions. Only the
    /// `cfs-profile/1` export and `--metrics` read these; the stable
    /// trace body never does (module docs).
    pub durations: BTreeMap<&'static str, DurationStats>,
    /// The same duration statistics before merging, keyed by shard
    /// index — the `cfs-profile/1` `threads` map. Which shard a thread
    /// landed on is a process-wide round-robin artifact, so this map is
    /// as thread-sensitive as the durations themselves: sidecar only,
    /// never compared, never digested. Shards that timed nothing are
    /// omitted.
    pub duration_shards: BTreeMap<usize, BTreeMap<&'static str, DurationStats>>,
}

/// Process-wide round-robin of thread → shard assignments.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard this thread writes to, assigned on first record.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The collecting [`Recorder`]: sharded buffers, injectable clock,
/// deterministic snapshots.
pub struct TraceRecorder {
    clock: Arc<dyn Clock>,
    shards: Vec<Mutex<Shard>>,
}

impl TraceRecorder {
    /// A recorder timing spans with the given clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// A recorder on a [`Virtual`] clock at time zero: span durations
    /// are all zero, so even the unstable export surface is
    /// deterministic. The choice for tests and CI.
    pub fn deterministic() -> Self {
        Self::new(Arc::new(Virtual::new()))
    }

    fn with_shard<R>(&self, f: impl FnOnce(&mut Shard) -> R) -> R {
        let idx = MY_SHARD.with(|s| *s);
        let mut shard = self.shards[idx]
            .lock()
            .expect("obs shard mutex poisoned by a panicking recorder call");
        f(&mut shard)
    }

    /// Merges every shard, in shard-index order, into one snapshot.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut out = TraceSnapshot::default();
        for (idx, shard) in self.shards.iter().enumerate() {
            let shard = shard
                .lock()
                .expect("obs shard mutex poisoned by a panicking recorder call");
            if !shard.durations.is_empty() {
                out.duration_shards.insert(idx, shard.durations.clone());
            }
            for (name, v) in &shard.counters {
                *out.counters.entry(name).or_insert(0) += v;
            }
            for (name, h) in &shard.histograms {
                out.histograms.entry(name).or_default().merge(h);
            }
            for (name, s) in &shard.spans {
                let agg = out.spans.entry(name).or_default();
                agg.count += s.count;
                agg.total_ns += s.total_ns;
            }
            for (name, d) in &shard.durations {
                out.durations.entry(name).or_default().merge(d);
            }
        }
        out
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.with_shard(|s| *s.counters.entry(name).or_insert(0) += delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.with_shard(|s| s.histograms.entry(name).or_default().record(value));
    }

    fn span_start(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span_end(&self, name: &'static str, start_ns: u64) {
        let elapsed = self.clock.now_ns().saturating_sub(start_ns);
        self.with_shard(|s| {
            let stats = s.spans.entry(name).or_default();
            stats.count += 1;
            stats.total_ns += elapsed;
            s.durations.entry(name).or_default().record(elapsed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::span;

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 32768, 32769] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 2, "0 and 1 share the ≤1 bucket");
        assert_eq!(h.buckets[1], 1, "2 lands in ≤2");
        assert_eq!(h.buckets[2], 1, "3 lands in ≤4");
        assert_eq!(h.buckets[15], 1, "32768 is the last finite bound");
        assert_eq!(h.buckets[16], 1, "32769 overflows");
    }

    #[test]
    fn spans_are_timed_by_the_injected_clock() {
        let clock = Arc::new(Virtual::new());
        let rec = Arc::new(TraceRecorder::new(clock.clone()));
        {
            let _g = span(rec.clone(), "stage");
            clock.advance(1_000);
        }
        let snap = rec.snapshot();
        assert_eq!(
            snap.spans["stage"],
            SpanStats {
                count: 1,
                total_ns: 1_000
            }
        );
    }

    #[test]
    fn concurrent_recording_merges_to_the_serial_snapshot() {
        // The same 400 per-item contributions, recorded serially and
        // split over 4 threads, must merge to identical snapshots —
        // the property the engine's trace-JSON determinism rests on.
        let serial = TraceRecorder::deterministic();
        for i in 0..400u64 {
            serial.counter("items", 1);
            serial.observe("sizes", i % 37);
        }

        let sharded = TraceRecorder::deterministic();
        #[allow(clippy::disallowed_methods)] // test-only thread fan-out, no determinism at stake
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = &sharded;
                scope.spawn(move || {
                    for i in (t * 100)..((t + 1) * 100) {
                        rec.counter("items", 1);
                        rec.observe("sizes", i % 37);
                    }
                });
            }
        });

        assert_eq!(serial.snapshot(), sharded.snapshot());
    }
}
