//! A minimal JSON reader for the diff/profile side of the crate.
//!
//! `cfs-obs` is deliberately dependency-free (crate docs), but the diff
//! engine has to *consume* the documents the export side produces. This
//! module is the smallest parser that covers them: objects keep member
//! order (the exports are already `BTreeMap`-sorted), numbers keep their
//! source text so integer round-trips are exact, and the error messages
//! carry a byte offset for `trace-diff`'s malformed-input reporting.
//!
//! It is a *reader*, not a general-purpose JSON library: no
//! serialization (the exports hand-roll their own rendering), and
//! surrogate-pair escapes decode to the replacement character — the
//! export vocabulary is plain ASCII identifiers and IPv4 strings.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (exact u64 round-trips).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on other variants.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an unsigned integer.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub(crate) fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// An object's `name → u64` members, for counter-style maps.
    pub(crate) fn to_u64_map(&self) -> Option<BTreeMap<String, u64>> {
        let mut out = BTreeMap::new();
        for (k, v) in self.as_obj()? {
            out.insert(k.clone(), v.as_u64()?);
        }
        Some(out)
    }

    /// An array of `u64`, for bucket lists.
    pub(crate) fn to_u64_vec(&self) -> Option<Vec<u64>> {
        self.as_arr()?.iter().map(Json::as_u64).collect()
    }
}

/// Nesting ceiling: the exports are ≤ 5 levels deep; anything past this
/// is hostile or corrupt input, not a trace.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(b))))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are a subset of ASCII");
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number {raw:?} at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(&b) => {
                    // Copy the whole UTF-8 sequence through untouched.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_export_shapes() {
        let doc = Json::parse(
            r#"{"schema":"cfs-trace/1","counters":{"a.x":3,"b":0},"curve":[0.25,1],"flag":true,"none":null}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("cfs-trace/1")
        );
        let counters = doc.get("counters").and_then(Json::to_u64_map).unwrap();
        assert_eq!(counters["a.x"], 3);
        let curve = doc.get("curve").and_then(Json::as_arr).unwrap();
        assert_eq!(curve[0].as_f64(), Some(0.25));
        assert_eq!(curve[1].as_u64(), Some(1));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("none"), Some(&Json::Null));
    }

    #[test]
    fn numbers_keep_their_source_text() {
        // u64 values past 2^53 would be mangled by an f64 round-trip;
        // the raw text keeps them exact (digests, ns totals).
        let doc = Json::parse("{\"big\":18446744073709551615}").unwrap();
        assert_eq!(doc.get("big").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let doc = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn string_escapes_decode() {
        let doc = Json::parse(r#"["a\"b\\c\nA"]"#).unwrap();
        assert_eq!(doc.as_arr().unwrap()[0].as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn malformed_documents_say_where() {
        for (src, needle) in [
            ("{\"a\":}", "expected a JSON value"),
            ("[1,2", "expected ',' or ']'"),
            ("{\"a\":1}x", "trailing data"),
            ("01a", "trailing data"),
            ("\"unterminated", "unterminated string"),
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(err.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting too deep"));
    }
}
