//! # cfs-obs
//!
//! Deterministic observability for the CFS pipeline: structured spans,
//! counters, and monotonic histograms behind a [`Recorder`] trait, with
//! an injectable [`Clock`] and thread-count-independent aggregation.
//!
//! Like `cfs-lint`, this crate is dependency-free: it sits underneath
//! every instrumented crate and must never pull substrate code along.
//!
//! The three guarantees instrumented code leans on (DESIGN.md §7):
//!
//! 1. **Free when off** — the default [`NoopRecorder`] turns every
//!    signal into an empty virtual call.
//! 2. **No wall time in the pipeline** — timing goes through [`Clock`];
//!    [`Monotonic`] is the workspace's one sanctioned `Instant::now`
//!    caller, [`Virtual`] is scripted time for tests.
//! 3. **Deterministic aggregation** — [`TraceRecorder`] shards per
//!    thread and merges in fixed order; a snapshot's stable export is
//!    byte-identical however work was chunked, because durations are
//!    kept out of it.
//!
//! ```
//! use std::sync::Arc;
//! use cfs_obs::{Recorder, TraceRecorder};
//!
//! let rec = Arc::new(TraceRecorder::deterministic());
//! {
//!     cfs_obs::span!(rec, "stage.extract");
//!     rec.counter("observations", 42);
//!     rec.observe("candidates.per_iface", 3);
//! }
//! let snap = rec.snapshot();
//! # let _ = snap;
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
pub mod diff;
mod events;
pub mod export;
mod json;
pub mod profile;
mod recorder;
mod trace;
mod window;

pub use clock::{pace, Clock, Monotonic, Virtual};
pub use diff::{diff_docs, DiffError, DocDiff, ProfileDiff, TraceDiff};
pub use events::{Event, EventKind, EventLog, Severity, LOG_SCHEMA};
pub use profile::{
    render_profile_folded, render_profile_json, render_profile_report, DurationStats, ProfileDoc,
    PROFILE_BOUNDS_NS, PROFILE_SCHEMA,
};
pub use recorder::{span, NoopRecorder, Recorder, SpanGuard, NOOP};
pub use trace::{Histogram, SpanStats, TraceRecorder, TraceSnapshot, HISTOGRAM_BOUNDS};
pub use window::{MetricsDoc, MetricsHistogram, MetricsWindow, WindowedRecorder, METRICS_SCHEMA};

// The recorder crosses the engine's scoped-worker boundary; prove it at
// compile time like `cfs-core` does for its substrate types.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn sync<T: Sync + Send>() {}
    sync::<NoopRecorder>();
    sync::<TraceRecorder>();
    sync::<WindowedRecorder>();
    sync::<EventLog>();
    sync::<Monotonic>();
    sync::<Virtual>();
}
