//! The structured event log: `cfs-log/1`.
//!
//! Counters say *how much*; events say *what happened*. A resident
//! daemon emits one [`Event`] per state transition worth telling an
//! operator about — the session converged, a delta landed, a circuit
//! breaker tripped, the knowledge base flipped epochs, an interface had
//! to be metro-widened — into a bounded in-memory ring that the
//! `events` op drains by cursor, and optionally onto a line-delimited
//! file sink for tailing.
//!
//! Events are typed ([`EventKind`]) rather than free-form strings, so
//! consumers can filter mechanically, and each kind carries a default
//! [`Severity`]. Timestamps come from the injected [`Clock`] — the log
//! follows the same no-wall-time discipline as every other obs surface,
//! and none of it ever enters the trace digest.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// Schema identifier stamped into every rendered event line.
pub const LOG_SCHEMA: &str = "cfs-log/1";

/// How loudly an event should be surfaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine lifecycle: convergence, applied deltas.
    Info,
    /// Degradation the service absorbed: breaker trips, widening.
    Warn,
    /// A failure the service could not absorb.
    Error,
}

impl Severity {
    /// The stable lowercase label (`info` / `warn` / `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// What happened. Each variant carries the facts an operator (or the
/// future disruption detector) needs without re-querying the session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The session finished (re)converging a report.
    SessionConverged {
        /// Report epoch after convergence.
        epoch: u64,
        /// Interfaces resolved to a facility.
        resolved: u64,
        /// Interfaces tracked in total.
        total: u64,
    },
    /// A delta was applied and the dirty frontier re-converged.
    DeltaApplied {
        /// The wire kind (`campaign`, `kb-flip`, `vp-status`).
        kind: &'static str,
        /// Report epoch after the delta.
        epoch: u64,
        /// Interfaces invalidated by the delta.
        dirty: u64,
        /// Interfaces re-converged (dirty frontier closure).
        reconverged: u64,
    },
    /// Vantage-point circuit breakers tripped during re-convergence.
    BreakerTrip {
        /// Newly observed trips (not the lifetime total).
        trips: u64,
    },
    /// One AS↔facility listing flipped in the knowledge base.
    KbFlip {
        /// The AS whose footprint changed.
        asn: u32,
        /// The facility listed or delisted.
        facility: u32,
        /// Whether the listing exists in the new epoch.
        present: bool,
    },
    /// Interfaces fell back to metro-widened candidate sets.
    WidenedInterfaces {
        /// Newly widened interfaces (not the lifetime total).
        count: u64,
    },
}

impl EventKind {
    /// The stable event-kind code on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            EventKind::SessionConverged { .. } => "session-converged",
            EventKind::DeltaApplied { .. } => "delta-applied",
            EventKind::BreakerTrip { .. } => "breaker-trip",
            EventKind::KbFlip { .. } => "kb-flip",
            EventKind::WidenedInterfaces { .. } => "widened-interfaces",
        }
    }

    /// The severity this kind defaults to.
    pub fn severity(&self) -> Severity {
        match self {
            EventKind::BreakerTrip { .. } | EventKind::WidenedInterfaces { .. } => Severity::Warn,
            _ => Severity::Info,
        }
    }

    fn push_fields(&self, out: &mut String) {
        match self {
            EventKind::SessionConverged {
                epoch,
                resolved,
                total,
            } => out.push_str(&format!(
                ",\"epoch\":{epoch},\"resolved\":{resolved},\"total\":{total}"
            )),
            EventKind::DeltaApplied {
                kind,
                epoch,
                dirty,
                reconverged,
            } => out.push_str(&format!(
                ",\"kind\":\"{kind}\",\"epoch\":{epoch},\"dirty\":{dirty},\
                 \"reconverged\":{reconverged}"
            )),
            EventKind::BreakerTrip { trips } => out.push_str(&format!(",\"trips\":{trips}")),
            EventKind::KbFlip {
                asn,
                facility,
                present,
            } => out.push_str(&format!(
                ",\"asn\":{asn},\"facility\":{facility},\"present\":{present}"
            )),
            EventKind::WidenedInterfaces { count } => out.push_str(&format!(",\"count\":{count}")),
        }
    }
}

/// One logged event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number, 0-based; the drain cursor's unit.
    pub seq: u64,
    /// Clock nanoseconds at emission.
    pub t_ns: u64,
    /// Surfacing level.
    pub severity: Severity,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one `cfs-log/1` JSON line (no trailing
    /// newline). All field values are numeric or controlled literals,
    /// so no escaping is needed.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{LOG_SCHEMA}\",\"seq\":{},\"t_ns\":{},\"severity\":\"{}\",\
             \"event\":\"{}\"",
            self.seq,
            self.t_ns,
            self.severity.as_str(),
            self.kind.code()
        );
        self.kind.push_fields(&mut out);
        out.push('}');
        out
    }

    /// Renders a compact human line (`cfs top`'s event feed).
    pub fn render_text(&self) -> String {
        let mut detail = String::new();
        self.kind.push_fields(&mut detail);
        // The JSON field tail reads fine as a detail string once the
        // punctuation is relaxed.
        let detail = detail
            .trim_start_matches(',')
            .replace("\",\"", "\" \"")
            .replace(',', " ")
            .replace('"', "");
        format!(
            "[{}] #{:<4} t={:.3}s {} {}",
            self.severity.as_str(),
            self.seq,
            self.t_ns as f64 / 1e9,
            self.kind.code(),
            detail
        )
    }
}

struct LogState {
    next_seq: u64,
    ring: VecDeque<Event>,
}

/// A bounded in-memory event ring with an optional file sink.
///
/// The ring keeps the most recent `cap` events; older ones are evicted
/// (but remain on the sink, if any). [`EventLog::since`] drains by
/// sequence cursor, so pollers never see an event twice and can detect
/// eviction gaps by comparing cursors.
pub struct EventLog {
    clock: Arc<dyn Clock>,
    cap: usize,
    state: Mutex<LogState>,
    sink: Option<Mutex<std::fs::File>>,
}

impl EventLog {
    /// An event log keeping the most recent `cap` events.
    pub fn new(clock: Arc<dyn Clock>, cap: usize) -> Self {
        Self {
            clock,
            cap: cap.max(1),
            state: Mutex::new(LogState {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
            sink: None,
        }
    }

    /// Additionally streams every event to `file` as `cfs-log/1` JSON
    /// lines. Write failures are swallowed: the sink is best-effort,
    /// telemetry must never take the service down.
    pub fn with_sink(mut self, file: std::fs::File) -> Self {
        self.sink = Some(Mutex::new(file));
        self
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut LogState) -> R) -> R {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            // Same poisoning stance as the windowed recorder: the ring
            // holds plain values, recover and keep serving.
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Emits an event at its kind's default severity; returns its
    /// sequence number.
    pub fn emit(&self, kind: EventKind) -> u64 {
        self.emit_with(kind.severity(), kind)
    }

    /// Emits an event at an explicit severity; returns its sequence
    /// number.
    pub fn emit_with(&self, severity: Severity, kind: EventKind) -> u64 {
        let t_ns = self.clock.now_ns();
        let event = self.with_state(|st| {
            let event = Event {
                seq: st.next_seq,
                t_ns,
                severity,
                kind,
            };
            st.next_seq += 1;
            st.ring.push_back(event.clone());
            while st.ring.len() > self.cap {
                st.ring.pop_front();
            }
            event
        });
        if let Some(sink) = &self.sink {
            let mut file = match sink.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let _ = writeln!(file, "{}", event.render_json());
        }
        event.seq
    }

    /// Every retained event with `seq >= cursor`, oldest first, plus
    /// the next cursor (one past the newest event ever emitted). A
    /// first returned `seq` greater than `cursor` means the ring
    /// evicted events the poller never saw.
    pub fn since(&self, cursor: u64) -> (Vec<Event>, u64) {
        self.with_state(|st| {
            let events = st
                .ring
                .iter()
                .filter(|e| e.seq >= cursor)
                .cloned()
                .collect();
            (events, st.next_seq)
        })
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.with_state(|st| st.ring.len())
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Virtual;

    fn log(cap: usize) -> (Arc<Virtual>, EventLog) {
        let clock = Arc::new(Virtual::new());
        let log = EventLog::new(clock.clone(), cap);
        (clock, log)
    }

    #[test]
    fn cursor_drain_never_replays() {
        let (clock, log) = log(8);
        log.emit(EventKind::SessionConverged {
            epoch: 1,
            resolved: 10,
            total: 12,
        });
        clock.advance(1_000);
        log.emit(EventKind::DeltaApplied {
            kind: "campaign",
            epoch: 2,
            dirty: 3,
            reconverged: 3,
        });
        let (first, next) = log.since(0);
        assert_eq!(first.len(), 2);
        assert_eq!(next, 2);
        assert_eq!(first[1].t_ns, 1_000);
        let (rest, next2) = log.since(next);
        assert!(rest.is_empty());
        assert_eq!(next2, 2);
        log.emit(EventKind::BreakerTrip { trips: 1 });
        let (tail, _) = log.since(next);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].severity, Severity::Warn);
    }

    #[test]
    fn ring_eviction_is_visible_in_the_cursor_gap() {
        let (_clock, log) = log(2);
        for i in 0..5 {
            log.emit(EventKind::WidenedInterfaces { count: i });
        }
        let (events, next) = log.since(0);
        assert_eq!(events.len(), 2, "ring keeps the newest cap events");
        assert_eq!(events[0].seq, 3, "seq gap betrays the eviction");
        assert_eq!(next, 5);
    }

    #[test]
    fn cursor_held_across_ring_wrap_resumes_without_replay_or_panic() {
        // A slow client drains to cursor 2, then the ring (cap 3) wraps
        // far past it. Resuming from the stale cursor must yield only
        // retained events at or after it — never a replay, never an
        // out-of-range error — and the fresh cursor must equal the total
        // emitted so the *next* drain is empty.
        let (_clock, log) = log(3);
        for i in 0..2 {
            log.emit(EventKind::WidenedInterfaces { count: i });
        }
        let (_, cursor) = log.since(0);
        assert_eq!(cursor, 2);
        for i in 2..9 {
            log.emit(EventKind::WidenedInterfaces { count: i });
        }
        let (events, next) = log.since(cursor);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8], "only the retained tail survives");
        assert_eq!(next, 9);
        let (rest, next2) = log.since(next);
        assert!(rest.is_empty(), "a caught-up cursor drains nothing");
        assert_eq!(next2, 9);
        // A cursor from the future (say, a client that out-lived a
        // daemon restart) degrades to an empty drain, not a panic.
        let (ahead, next3) = log.since(1_000);
        assert!(ahead.is_empty());
        assert_eq!(next3, 9);
    }

    #[test]
    fn json_lines_are_schema_stamped_and_typed() {
        let (_clock, log) = log(4);
        log.emit(EventKind::KbFlip {
            asn: 64500,
            facility: 7,
            present: false,
        });
        let (events, _) = log.since(0);
        let line = events[0].render_json();
        assert_eq!(
            line,
            "{\"schema\":\"cfs-log/1\",\"seq\":0,\"t_ns\":0,\"severity\":\"info\",\
             \"event\":\"kb-flip\",\"asn\":64500,\"facility\":7,\"present\":false}"
        );
        let text = events[0].render_text();
        assert!(text.starts_with("[info] #0"), "{text}");
        assert!(text.contains("kb-flip"), "{text}");
    }

    #[test]
    fn sink_receives_every_line() {
        let dir = std::env::temp_dir().join(format!("cfs-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        {
            let clock = Arc::new(Virtual::new());
            let file = std::fs::File::create(&path).expect("create sink");
            let log = EventLog::new(clock, 1).with_sink(file);
            log.emit(EventKind::BreakerTrip { trips: 2 });
            log.emit(EventKind::WidenedInterfaces { count: 4 });
        }
        let written = std::fs::read_to_string(&path).expect("read sink");
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2, "eviction does not touch the sink");
        assert!(lines[0].contains("\"event\":\"breaker-trip\""));
        assert!(lines[1].contains("\"severity\":\"warn\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
