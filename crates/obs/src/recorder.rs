//! The recording API instrumented code talks to.
//!
//! Instrumentation sites hold an `Arc<dyn Recorder>` and emit three
//! kinds of signals:
//!
//! * **counters** — monotonically increasing sums (`counter`),
//! * **histograms** — value distributions over fixed power-of-two
//!   buckets (`observe`),
//! * **spans** — named scopes whose entry/exit are timed through the
//!   injected [`Clock`](crate::Clock) (`span_start`/`span_end`, usually
//!   via the [`span!`](crate::span!) guard macro).
//!
//! The default implementation is [`NoopRecorder`]: every method is an
//! empty body behind one virtual call, so fully-instrumented code costs
//! next to nothing when nobody is listening.

use std::sync::Arc;

/// Sink for counters, histogram samples, and span timings.
///
/// Implementations must be safe to call from the engine's scoped worker
/// threads (`Send + Sync`); aggregation across threads is the
/// implementation's problem (see
/// [`TraceRecorder`](crate::TraceRecorder) for the deterministic one).
///
/// Names are `&'static str` by design: the instrumentation vocabulary is
/// fixed at compile time (DESIGN.md §7 lists it), which keeps recording
/// allocation-free and the export schema stable.
pub trait Recorder: Send + Sync {
    /// Whether anything is listening. Lets call sites skip building
    /// expensive arguments; plain counters don't need the check.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, _name: &'static str, _delta: u64) {}

    /// Records one sample into the named histogram.
    fn observe(&self, _name: &'static str, _value: u64) {}

    /// Marks a span entry; returns the start timestamp (ns) to hand back
    /// to [`Recorder::span_end`].
    fn span_start(&self) -> u64 {
        0
    }

    /// Marks a span exit entered at `start_ns`.
    fn span_end(&self, _name: &'static str, _start_ns: u64) {}
}

/// The do-nothing recorder: the default everywhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A `'static` no-op instance, for call sites that need a borrowed
/// default (`&NOOP`) rather than an owned `Arc`.
pub static NOOP: NoopRecorder = NoopRecorder;

/// RAII span: records the enclosing scope's duration on drop.
///
/// Obtain one through [`span`] or the [`span!`](crate::span!) macro.
pub struct SpanGuard {
    rec: Arc<dyn Recorder>,
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.rec.span_end(self.name, self.start_ns);
    }
}

/// Enters a named span on `rec`; the returned guard closes it on drop.
pub fn span(rec: Arc<dyn Recorder>, name: &'static str) -> SpanGuard {
    let start_ns = rec.span_start();
    SpanGuard {
        rec,
        name,
        start_ns,
    }
}

/// Opens a span over the rest of the enclosing scope:
/// `cfs_obs::span!(self.recorder, "cfs.iteration");`.
///
/// Expands to a hygienic `let` binding holding a [`SpanGuard`], so the
/// span closes when the scope ends; several `span!`s may nest in one
/// function.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        // Two statements so `Arc::clone`'s generic is inferred from the
        // recorder, then unsize-coerced into `span`'s `Arc<dyn Recorder>`.
        let _obs_span_rec = ::std::sync::Arc::clone(&$rec);
        let _obs_span_guard = $crate::span(_obs_span_rec, $name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("x", 1);
        rec.observe("y", 2);
        let s = rec.span_start();
        rec.span_end("z", s);
    }

    #[test]
    fn span_macro_compiles_and_nests() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        span!(rec, "outer");
        span!(rec, "inner");
    }
}
