//! Rolling time-windowed telemetry: [`WindowedRecorder`] and the
//! `cfs-metrics/1` snapshot document.
//!
//! The trace layer ([`crate::trace`]) aggregates over a run's whole
//! lifetime, which is the right shape for post-mortem exports but a
//! black box for a *resident* session: an operator watching `cfsd`
//! absorb deltas wants "what happened in the last minute", not "since
//! boot". [`WindowedRecorder`] wraps any inner [`Recorder`] and, in
//! addition to forwarding every signal, files it into the current
//! fixed-width time window. Closed windows ride a bounded ring, so a
//! snapshot of "the last N windows" is O(ring), never O(history).
//!
//! ## Window model
//!
//! Time is the injected [`Clock`]'s nanoseconds; window `k` covers
//! `[k·width, (k+1)·width)`. The first record whose timestamp falls
//! past the current window closes it onto the ring and opens the new
//! one — rollover is driven entirely by the clock, so under a
//! [`crate::Virtual`] clock it is scripted and deterministic. Idle gaps
//! are represented by index jumps, not by materialized empty windows,
//! which keeps rollover O(1) even after hours of silence.
//!
//! ## Determinism contract
//!
//! A `cfs-metrics/1` snapshot is byte-identical across thread counts
//! under a `Virtual` clock for the same reason the trace export is:
//! every merged quantity is a sum of per-item integer contributions
//! behind one mutex, rendered from `BTreeMap`s in fixed order. Under
//! the real [`crate::Monotonic`] clock values are wall-time-dependent —
//! which is fine, because nothing here ever enters the trace digest.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::json::Json;
use crate::profile::{DurationStats, PROFILE_BOUNDS_NS};
use crate::recorder::Recorder;
use crate::trace::{Histogram, HISTOGRAM_BOUNDS};

/// Schema identifier stamped into every metrics snapshot.
pub const METRICS_SCHEMA: &str = "cfs-metrics/1";

/// One fixed-width window's worth of telemetry.
#[derive(Clone, Debug, Default)]
struct WindowCell {
    index: u64,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    durations: BTreeMap<&'static str, DurationStats>,
}

impl WindowCell {
    fn merge_into(
        &self,
        counters: &mut BTreeMap<&'static str, u64>,
        histograms: &mut BTreeMap<&'static str, Histogram>,
        durations: &mut BTreeMap<&'static str, DurationStats>,
    ) {
        for (name, v) in &self.counters {
            *counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &self.histograms {
            histograms.entry(name).or_default().merge(h);
        }
        for (name, d) in &self.durations {
            durations.entry(name).or_default().merge(d);
        }
    }
}

struct WindowState {
    current: WindowCell,
    closed: VecDeque<WindowCell>,
}

/// A [`Recorder`] decorator that maintains ring-buffered fixed-width
/// time windows of counters, value histograms, and span durations, on
/// top of whatever the wrapped recorder collects.
///
/// The wrapper and its inner recorder must share the same clock (the
/// daemon constructs both from one `Arc<dyn Clock>`); span timing is
/// measured against `clock`, and the inner recorder re-measures against
/// its own — identical when shared.
pub struct WindowedRecorder {
    inner: Arc<dyn Recorder>,
    clock: Arc<dyn Clock>,
    width_ns: u64,
    keep: usize,
    start_ns: u64,
    state: Mutex<WindowState>,
}

impl WindowedRecorder {
    /// Wraps `inner`, windowing time from `clock` into `width_ns`-wide
    /// windows and keeping the most recent `keep` closed windows.
    pub fn new(
        inner: Arc<dyn Recorder>,
        clock: Arc<dyn Clock>,
        width_ns: u64,
        keep: usize,
    ) -> Self {
        let width_ns = width_ns.max(1);
        let keep = keep.max(1);
        let start_ns = clock.now_ns();
        Self {
            inner,
            clock,
            width_ns,
            keep,
            start_ns,
            state: Mutex::new(WindowState {
                current: WindowCell {
                    index: start_ns / width_ns,
                    ..WindowCell::default()
                },
                closed: VecDeque::new(),
            }),
        }
    }

    /// The window width, in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut WindowState) -> R) -> R {
        // Telemetry must never take the service down: if a recorder call
        // panicked mid-update the cells still hold plain integers, so
        // recover the lock instead of propagating the poison.
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    fn with_window<R>(&self, f: impl FnOnce(&mut WindowCell) -> R) -> R {
        let idx = self.clock.now_ns() / self.width_ns;
        self.with_state(|st| {
            if idx > st.current.index {
                let full = std::mem::replace(
                    &mut st.current,
                    WindowCell {
                        index: idx,
                        ..WindowCell::default()
                    },
                );
                st.closed.push_back(full);
                while st.closed.len() > self.keep {
                    st.closed.pop_front();
                }
            }
            f(&mut st.current)
        })
    }

    /// Renders the `cfs-metrics/1` snapshot: uptime, the merged totals
    /// across every retained window, and the ring of windows oldest
    /// first with the open window last. Byte-stable for a given state.
    pub fn render_metrics_json(&self) -> String {
        let uptime_ns = self.clock.now_ns().saturating_sub(self.start_ns);
        let (cells, open_index) = self.with_state(|st| {
            let mut cells: Vec<WindowCell> = st.closed.iter().cloned().collect();
            cells.push(st.current.clone());
            (cells, st.current.index)
        });

        let mut totals = WindowCell::default();
        {
            let WindowCell {
                counters,
                histograms,
                durations,
                ..
            } = &mut totals;
            for cell in &cells {
                cell.merge_into(counters, histograms, durations);
            }
        }

        let mut out = format!(
            "{{\"schema\":\"{METRICS_SCHEMA}\",\"window_ns\":{},\"windows_kept\":{},\
             \"uptime_ns\":{uptime_ns},\"histogram_le\":",
            self.width_ns, self.keep
        );
        push_u64_list(&mut out, HISTOGRAM_BOUNDS.iter().copied());
        out.push_str(",\"duration_le_ns\":");
        push_u64_list(&mut out, PROFILE_BOUNDS_NS.iter().copied());
        out.push_str(",\"totals\":{");
        push_cell_body(&mut out, &totals);
        out.push_str("},\"windows\":[");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"open\":{},",
                cell.index,
                cell.index == open_index
            ));
            push_cell_body(&mut out, cell);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_u64_list(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Renders the shared window body: counters, histograms, durations.
/// Used for both the totals object and each ring entry.
fn push_cell_body(out: &mut String, cell: &WindowCell) {
    out.push_str("\"counters\":{");
    for (i, (name, v)) in cell.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in cell.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":",
            h.count, h.sum
        ));
        push_u64_list(out, h.buckets.iter().copied());
        out.push('}');
    }
    out.push_str("},\"durations\":{");
    for (i, (name, d)) in cell.durations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"buckets\":",
            d.count,
            d.total_ns,
            d.min_ns,
            d.max_ns,
            d.quantile_ns(50),
            d.quantile_ns(99),
        ));
        push_u64_list(out, d.buckets.iter().copied());
        out.push('}');
    }
    out.push('}');
}

impl Recorder for WindowedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.inner.counter(name, delta);
        self.with_window(|w| *w.counters.entry(name).or_insert(0) += delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.inner.observe(name, value);
        self.with_window(|w| w.histograms.entry(name).or_default().record(value));
    }

    fn span_start(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span_end(&self, name: &'static str, start_ns: u64) {
        let elapsed = self.clock.now_ns().saturating_sub(start_ns);
        self.with_window(|w| w.durations.entry(name).or_default().record(elapsed));
        self.inner.span_end(name, start_ns);
    }
}

/// A parsed value histogram from a metrics window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsHistogram {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// One counter per `histogram_le` bound, plus overflow.
    pub buckets: Vec<u64>,
}

/// One parsed window (or the totals block, with `index`/`open`
/// defaulted) of a `cfs-metrics/1` document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsWindow {
    /// The window number (`timestamp / window_ns`). Gaps mean idle time.
    pub index: u64,
    /// Whether this window was still accumulating at snapshot time.
    pub open: bool,
    /// Counter increments that landed in the window.
    pub counters: BTreeMap<String, u64>,
    /// Value histograms by name.
    pub histograms: BTreeMap<String, MetricsHistogram>,
    /// Span-duration statistics by name.
    pub durations: BTreeMap<String, DurationStats>,
}

/// A parsed `cfs-metrics/1` document: the snapshot a live daemon's
/// `metrics` op returns, as consumed by `cfs top` and the validator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDoc {
    /// Window width in nanoseconds.
    pub window_ns: u64,
    /// How many closed windows the producer retains.
    pub windows_kept: u64,
    /// Clock nanoseconds since the recorder was constructed.
    pub uptime_ns: u64,
    /// Value-histogram bucket bounds.
    pub histogram_le: Vec<u64>,
    /// Duration-histogram bucket bounds.
    pub duration_le_ns: Vec<u64>,
    /// Merged totals across every retained window.
    pub totals: MetricsWindow,
    /// The retained windows, oldest first; the open window is last.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsDoc {
    /// Parses a `cfs-metrics/1` document. The error names the member
    /// that failed, in the style of [`crate::ProfileDoc::parse`].
    pub fn parse(raw: &str) -> Result<Self, String> {
        let doc = Json::parse(raw).map_err(|e| format!("not JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == METRICS_SCHEMA => {}
            Some(s) => return Err(format!("schema is {s:?}, want {METRICS_SCHEMA:?}")),
            None => return Err("missing schema member".into()),
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("missing or non-integer {key}"))
        };
        let histogram_le = doc
            .get("histogram_le")
            .and_then(Json::to_u64_vec)
            .ok_or("missing or non-integer histogram_le")?;
        let duration_le_ns = doc
            .get("duration_le_ns")
            .and_then(Json::to_u64_vec)
            .ok_or("missing or non-integer duration_le_ns")?;
        let totals = parse_window(
            doc.get("totals").ok_or("missing totals member")?,
            "totals",
            &histogram_le,
            &duration_le_ns,
            false,
        )?;
        let mut windows = Vec::new();
        for (i, w) in doc
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("missing windows array")?
            .iter()
            .enumerate()
        {
            windows.push(parse_window(
                w,
                &format!("windows[{i}]"),
                &histogram_le,
                &duration_le_ns,
                true,
            )?);
        }
        Ok(Self {
            window_ns: num("window_ns")?,
            windows_kept: num("windows_kept")?,
            uptime_ns: num("uptime_ns")?,
            histogram_le,
            duration_le_ns,
            totals,
            windows,
        })
    }

    /// Validates a raw document against the `cfs-metrics/1` contract,
    /// returning `(section, problem)` pairs in the style of
    /// `cfs trace-validate`: schema marker, member shapes, bucket
    /// arities, window ordering, and totals integrity (the totals block
    /// must equal the sum of the windows, the document's analogue of
    /// the trace digest).
    pub fn validate(raw: &str) -> Vec<(&'static str, String)> {
        let mut problems: Vec<(&'static str, String)> = Vec::new();
        let Ok(json) = Json::parse(raw) else {
            return vec![("json", "document is not JSON".into())];
        };
        match json.get("schema").and_then(Json::as_str) {
            Some(s) if s == METRICS_SCHEMA => {}
            Some(s) => {
                return vec![(
                    "schema",
                    format!("schema is {s:?}, want {METRICS_SCHEMA:?}"),
                )]
            }
            None => return vec![("schema", "missing schema member".into())],
        }
        let doc = match Self::parse(raw) {
            Ok(d) => d,
            Err(e) => return vec![("structure", e)],
        };
        if doc.window_ns == 0 {
            problems.push(("structure", "window_ns must be positive".into()));
        }
        if doc.windows_kept == 0 {
            problems.push(("structure", "windows_kept must be positive".into()));
        }
        for (what, bounds) in [
            ("histogram_le", &doc.histogram_le),
            ("duration_le_ns", &doc.duration_le_ns),
        ] {
            if bounds.windows(2).any(|w| w[1] <= w[0]) {
                problems.push(("structure", format!("{what} is not strictly increasing")));
            }
        }

        if doc.windows.is_empty() {
            problems.push(("windows", "windows array is empty".into()));
        }
        if doc.windows.len() as u64 > doc.windows_kept + 1 {
            problems.push((
                "windows",
                format!(
                    "{} windows retained, want at most windows_kept + 1 = {}",
                    doc.windows.len(),
                    doc.windows_kept + 1
                ),
            ));
        }
        for pair in doc.windows.windows(2) {
            if pair[1].index <= pair[0].index {
                problems.push((
                    "windows",
                    format!(
                        "window indices not strictly increasing: {} then {}",
                        pair[0].index, pair[1].index
                    ),
                ));
                break;
            }
        }
        for (i, w) in doc.windows.iter().enumerate() {
            let is_last = i + 1 == doc.windows.len();
            if w.open != is_last {
                problems.push((
                    "windows",
                    format!(
                        "windows[{i}] open={} (only the last window may be open, and must be)",
                        w.open
                    ),
                ));
            }
        }

        let mut blocks: Vec<(String, &MetricsWindow)> = vec![("totals".to_string(), &doc.totals)];
        for (i, w) in doc.windows.iter().enumerate() {
            blocks.push((format!("windows[{i}]"), w));
        }
        for (at, block) in &blocks {
            for (name, h) in &block.histograms {
                if h.buckets.iter().sum::<u64>() != h.count {
                    problems.push((
                        "histograms",
                        format!("{at} histogram {name:?}: buckets do not sum to count"),
                    ));
                }
            }
            for (name, d) in &block.durations {
                if d.buckets.iter().sum::<u64>() != d.count {
                    problems.push((
                        "durations",
                        format!("{at} duration {name:?}: buckets do not sum to count"),
                    ));
                }
                if d.count > 0 && d.min_ns > d.max_ns {
                    problems.push((
                        "durations",
                        format!("{at} duration {name:?}: min_ns > max_ns"),
                    ));
                }
            }
        }

        // Totals integrity: the totals block must be exactly the sum of
        // the retained windows.
        let mut summed: BTreeMap<&String, u64> = BTreeMap::new();
        for w in &doc.windows {
            for (name, v) in &w.counters {
                *summed.entry(name).or_insert(0) += v;
            }
        }
        let rebuilt: BTreeMap<&String, u64> =
            doc.totals.counters.iter().map(|(n, v)| (n, *v)).collect();
        if summed != rebuilt {
            problems.push((
                "totals",
                "totals.counters do not equal the sum over windows".into(),
            ));
        }
        for (name, t) in &doc.totals.durations {
            let n: u64 = doc
                .windows
                .iter()
                .filter_map(|w| w.durations.get(name))
                .map(|d| d.count)
                .sum();
            if n != t.count {
                problems.push((
                    "totals",
                    format!(
                        "totals duration {name:?}: count {} vs windows sum {n}",
                        t.count
                    ),
                ));
            }
        }
        problems
    }
}

fn parse_window(
    w: &Json,
    at: &str,
    histogram_le: &[u64],
    duration_le_ns: &[u64],
    ring_entry: bool,
) -> Result<MetricsWindow, String> {
    let mut out = MetricsWindow::default();
    if ring_entry {
        out.index = w
            .get("index")
            .and_then(Json::as_u64)
            .ok_or(format!("{at}: missing or non-integer index"))?;
        out.open = w
            .get("open")
            .and_then(Json::as_bool)
            .ok_or(format!("{at}: missing or non-boolean open"))?;
    }
    out.counters = w
        .get("counters")
        .and_then(Json::to_u64_map)
        .ok_or(format!("{at}: missing counters object"))?;
    for (name, h) in w
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or(format!("{at}: missing histograms object"))?
    {
        let count = h.get("count").and_then(Json::as_u64);
        let sum = h.get("sum").and_then(Json::as_u64);
        let buckets = h.get("buckets").and_then(Json::to_u64_vec);
        let (Some(count), Some(sum), Some(buckets)) = (count, sum, buckets) else {
            return Err(format!("{at}: histogram {name:?} is malformed"));
        };
        if buckets.len() != histogram_le.len() + 1 {
            return Err(format!(
                "{at}: histogram {name:?}: {} buckets, want {}",
                buckets.len(),
                histogram_le.len() + 1
            ));
        }
        out.histograms.insert(
            name.clone(),
            MetricsHistogram {
                count,
                sum,
                buckets,
            },
        );
    }
    for (name, d) in w
        .get("durations")
        .and_then(Json::as_obj)
        .ok_or(format!("{at}: missing durations object"))?
    {
        let field = |key: &str| {
            d.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("{at}: duration {name:?}: missing {key}"))
        };
        let buckets = d
            .get("buckets")
            .and_then(Json::to_u64_vec)
            .ok_or(format!("{at}: duration {name:?}: missing buckets"))?;
        if buckets.len() != duration_le_ns.len() + 1 {
            return Err(format!(
                "{at}: duration {name:?}: {} buckets, want {}",
                buckets.len(),
                duration_le_ns.len() + 1
            ));
        }
        out.durations.insert(
            name.clone(),
            DurationStats {
                count: field("count")?,
                total_ns: field("total_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
                buckets,
            },
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Virtual;
    use crate::recorder::NoopRecorder;

    fn windowed(clock: Arc<Virtual>) -> WindowedRecorder {
        WindowedRecorder::new(Arc::new(NoopRecorder), clock, 1_000, 4)
    }

    #[test]
    fn rollover_is_clock_driven_and_gaps_jump() {
        let clock = Arc::new(Virtual::new());
        let rec = windowed(clock.clone());
        rec.counter("reqs", 1);
        clock.advance(1_000); // window 1
        rec.counter("reqs", 2);
        clock.advance(5_000); // window 6: windows 2..=5 never materialize
        rec.counter("reqs", 4);
        let doc = MetricsDoc::parse(&rec.render_metrics_json()).expect("own export parses");
        let indices: Vec<u64> = doc.windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 1, 6]);
        assert_eq!(doc.windows[0].counters["reqs"], 1);
        assert_eq!(doc.windows[1].counters["reqs"], 2);
        assert_eq!(doc.windows[2].counters["reqs"], 4);
        assert_eq!(doc.totals.counters["reqs"], 7);
        assert!(doc.windows[2].open && !doc.windows[0].open);
        assert_eq!(doc.uptime_ns, 6_000);
    }

    #[test]
    fn idle_gap_longer_than_the_ring_keeps_only_the_pre_gap_window() {
        // A daemon idle for longer than the whole retained span: the
        // next sample must land in the window the clock actually points
        // at (no back-fill of the silent windows), the single pre-gap
        // window survives, and uptime covers the silence.
        let clock = Arc::new(Virtual::new());
        let rec = windowed(clock.clone()); // width 1_000, keep 4
        rec.counter("reqs", 1);
        clock.advance(10_000); // silent windows 1..=9 never materialize
        rec.counter("reqs", 1);
        let doc = MetricsDoc::parse(&rec.render_metrics_json()).expect("parses");
        let indices: Vec<u64> = doc.windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 10], "no empty windows are fabricated");
        assert!(doc.windows[1].open && !doc.windows[0].open);
        assert_eq!(doc.totals.counters["reqs"], 2);
        assert_eq!(doc.uptime_ns, 10_000);
        // A second gap while a window is already open jumps again and
        // closes the interrupted window where it stood.
        clock.advance(3_500);
        rec.counter("reqs", 1);
        let doc = MetricsDoc::parse(&rec.render_metrics_json()).expect("parses");
        let indices: Vec<u64> = doc.windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 10, 13]);
        assert_eq!(doc.windows[1].counters["reqs"], 1);
    }

    #[test]
    fn ring_is_bounded_to_keep() {
        let clock = Arc::new(Virtual::new());
        let rec = windowed(clock.clone());
        for _ in 0..10 {
            rec.counter("ticks", 1);
            clock.advance(1_000);
        }
        rec.counter("ticks", 1);
        let doc = MetricsDoc::parse(&rec.render_metrics_json()).expect("parses");
        assert_eq!(doc.windows.len(), 5, "4 closed + 1 open");
        assert_eq!(doc.windows_kept, 4);
        // Totals cover only what the ring retains.
        assert_eq!(doc.totals.counters["ticks"], 5);
    }

    #[test]
    fn snapshot_is_valid_and_totals_checked() {
        let clock = Arc::new(Virtual::new());
        let rec = windowed(clock.clone());
        rec.observe("batch", 3);
        let s = rec.span_start();
        clock.advance(2_048);
        rec.span_end("api.query", s);
        let raw = rec.render_metrics_json();
        assert_eq!(MetricsDoc::validate(&raw), vec![]);
        // Corrupt a totals counter → the integrity check fires.
        let rec2 = windowed(Arc::new(Virtual::new()));
        rec2.counter("reqs", 3);
        let broken = rec2
            .render_metrics_json()
            .replacen("\"reqs\":3", "\"reqs\":4", 1);
        assert!(MetricsDoc::validate(&broken)
            .iter()
            .any(|(section, _)| *section == "totals"));
    }

    #[test]
    fn validate_names_the_failing_section() {
        for (raw, section) in [
            ("nope", "json"),
            ("{\"schema\":\"cfs-trace/1\"}", "schema"),
            ("{\"schema\":\"cfs-metrics/1\"}", "structure"),
        ] {
            let problems = MetricsDoc::validate(raw);
            assert!(
                problems.iter().any(|(s, _)| *s == section),
                "{raw}: {problems:?}"
            );
        }
    }

    #[test]
    fn snapshots_are_byte_identical_across_thread_counts() {
        // The same per-item contributions — spread over 1, 2, or 8
        // worker threads, with the coordinator advancing a Virtual
        // clock across window boundaries and one idle gap — must render
        // to identical cfs-metrics/1 bytes. This is the windowed
        // analogue of the trace determinism contract.
        let render = |threads: u64| {
            let clock = Arc::new(Virtual::new());
            let rec = windowed(clock.clone());
            for phase in 0..6u64 {
                let per = 240 / threads;
                #[allow(clippy::disallowed_methods)] // test-only fan-out over a Virtual clock
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let rec = &rec;
                        scope.spawn(move || {
                            for i in (t * per)..((t + 1) * per) {
                                rec.counter("items", 1);
                                rec.observe("sizes", i % 7);
                            }
                        });
                    }
                });
                let s = rec.span_start();
                rec.span_end("phase", s);
                // Phase 3 sleeps through several window widths: the
                // idle gap must appear as the same index jump at every
                // thread count.
                clock.advance(if phase == 3 { 3_500 } else { 400 });
            }
            rec.render_metrics_json()
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(8));
        assert_eq!(MetricsDoc::validate(&one), vec![]);
    }

    #[test]
    fn forwards_to_the_inner_recorder() {
        let clock: Arc<Virtual> = Arc::new(Virtual::new());
        let inner = Arc::new(crate::trace::TraceRecorder::new(clock.clone()));
        let rec = WindowedRecorder::new(inner.clone(), clock.clone(), 1_000, 4);
        rec.counter("reqs", 2);
        let s = rec.span_start();
        clock.advance(500);
        rec.span_end("api.status", s);
        let snap = inner.snapshot();
        assert_eq!(snap.counters["reqs"], 2);
        assert_eq!(snap.spans["api.status"].total_ns, 500);
    }
}
