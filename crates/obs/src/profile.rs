//! The duration sidecar: per-span wall-clock statistics and the
//! `cfs-profile/1` export.
//!
//! The stable `cfs-trace/1` body deliberately carries no nanoseconds —
//! durations are the one thread- and machine-sensitive quantity a
//! snapshot holds (see [`crate::export::stable_body`]). Profiling still
//! needs them, so they travel in a *sidecar* document with its own
//! schema marker: stable in **shape** (fixed members, fixed log-scaled
//! bucket bounds), never in values, and never digested. Writing or
//! omitting the sidecar cannot perturb the deterministic trace digest
//! because the two exports read disjoint parts of the snapshot.
//!
//! Per span name the recorder keeps count / total / min / max plus a
//! histogram over [`PROFILE_BOUNDS_NS`] (powers of two from 1 µs to
//! ~17 s), from which [`DurationStats::quantile_ns`] estimates p50/p99
//! to within one power of two — plenty for "which stage got slower",
//! which is what the diff engine asks.
//!
//! [`render_profile_report`] folds the flat per-name statistics into
//! the static span taxonomy (`cfs.run` ⊃ `cfs.iteration` ⊃ `stage.*`)
//! and charges each parent its *self* time — total minus the children
//! recorded under it. Stages that run both inside and outside the
//! iteration loop (`stage.extract`, `stage.alias_resolution` also run
//! once at bootstrap) are attributed to their majority home, so a
//! parent's self time saturates at zero rather than going negative.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::trace::TraceSnapshot;

/// Schema identifier stamped into every profile document.
pub const PROFILE_SCHEMA: &str = "cfs-profile/1";

/// Upper (inclusive) bucket bounds of the duration histograms, in
/// nanoseconds: powers of two from 2^10 (≈1 µs) to 2^34 (≈17 s), plus a
/// trailing overflow bucket. Fixed bounds keep merged statistics exact
/// and the export shape stable.
pub const PROFILE_BOUNDS_NS: [u64; 25] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
    1 << 27,
    1 << 28,
    1 << 29,
    1 << 30,
    1 << 31,
    1 << 32,
    1 << 33,
    1 << 34,
];

/// Aggregated wall-clock statistics of one span name: the sidecar's
/// counterpart to [`crate::SpanStats`]. Everything here is excluded
/// from the stable trace export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurationStats {
    /// Completed entries.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Fastest entry, in nanoseconds (0 when nothing was recorded).
    pub min_ns: u64,
    /// Slowest entry, in nanoseconds.
    pub max_ns: u64,
    /// One counter per [`PROFILE_BOUNDS_NS`] bound, plus overflow.
    pub buckets: Vec<u64>,
}

impl Default for DurationStats {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: vec![0; PROFILE_BOUNDS_NS.len() + 1],
        }
    }
}

impl DurationStats {
    /// Records one span duration.
    pub fn record(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.total_ns += ns;
        let idx = PROFILE_BOUNDS_NS
            .iter()
            .position(|b| ns <= *b)
            .unwrap_or(PROFILE_BOUNDS_NS.len());
        self.buckets[idx] += 1;
    }

    /// Adds another statistics block into this one (exact: the bounds
    /// are shared).
    pub fn merge(&mut self, other: &DurationStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The `pct`-th percentile duration, estimated from the log-scaled
    /// buckets: the upper bound of the bucket where the cumulative count
    /// crosses the rank, clamped into `[min_ns, max_ns]`. Within one
    /// power of two of the true value; deterministic for a given block.
    pub fn quantile_ns(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(pct.min(100)))
            .div_ceil(100)
            .max(1) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = PROFILE_BOUNDS_NS.get(i).copied().unwrap_or(self.max_ns);
                return bound.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean duration in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A parsed (or freshly built) `cfs-profile/1` document: the bucket
/// bounds it was recorded against plus per-span duration statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileDoc {
    /// The `profile_le_ns` bounds the buckets are aligned to.
    pub bounds: Vec<u64>,
    /// Duration statistics by span name, merged across every shard.
    pub spans: BTreeMap<String, DurationStats>,
    /// Pre-merge duration statistics keyed by shard id (stringified
    /// shard index): where each span's time was actually spent,
    /// thread by thread. Purely additional — `spans` already holds the
    /// merged totals — and as thread-sensitive as every duration, so
    /// the diff engine ignores it. Empty for documents predating the
    /// member.
    pub threads: BTreeMap<String, BTreeMap<String, DurationStats>>,
}

impl ProfileDoc {
    /// Builds the document for a snapshot's duration sidecar.
    pub fn from_snapshot(snap: &TraceSnapshot) -> Self {
        Self {
            bounds: PROFILE_BOUNDS_NS.to_vec(),
            spans: snap
                .durations
                .iter()
                .map(|(name, d)| ((*name).to_string(), d.clone()))
                .collect(),
            threads: snap
                .duration_shards
                .iter()
                .map(|(shard, durations)| {
                    (
                        shard.to_string(),
                        durations
                            .iter()
                            .map(|(name, d)| ((*name).to_string(), d.clone()))
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// Parses a `cfs-profile/1` document. The error names the member
    /// that failed, for `trace-diff`'s malformed-input reporting.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let doc = Json::parse(raw).map_err(|e| format!("not JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == PROFILE_SCHEMA => {}
            Some(s) => return Err(format!("schema is {s:?}, want {PROFILE_SCHEMA:?}")),
            None => return Err("missing schema member".into()),
        }
        let bounds = doc
            .get("profile_le_ns")
            .and_then(Json::to_u64_vec)
            .ok_or("missing or non-integer profile_le_ns")?;
        let mut spans = BTreeMap::new();
        for (name, entry) in doc
            .get("spans")
            .and_then(Json::as_obj)
            .ok_or("missing spans object")?
        {
            spans.insert(
                name.clone(),
                parse_stats(entry, &format!("span {name:?}"), bounds.len())?,
            );
        }
        // Optional: documents predating the per-thread shard sidecar
        // carry no threads member.
        let mut threads = BTreeMap::new();
        if let Some(shards) = doc.get("threads") {
            for (shard, obj) in shards.as_obj().ok_or("threads member is not an object")? {
                let mut per_span = BTreeMap::new();
                for (name, entry) in obj
                    .as_obj()
                    .ok_or(format!("threads shard {shard:?} is not an object"))?
                {
                    per_span.insert(
                        name.clone(),
                        parse_stats(
                            entry,
                            &format!("threads shard {shard:?} span {name:?}"),
                            bounds.len(),
                        )?,
                    );
                }
                threads.insert(shard.clone(), per_span);
            }
        }
        Ok(Self {
            bounds,
            spans,
            threads,
        })
    }

    /// Renders the document. Byte-stable for a given value: maps
    /// iterate in `BTreeMap` order and p50/p99 are recomputed from the
    /// buckets, so parse → render round-trips exactly.
    pub fn render(&self) -> String {
        let mut out = format!("{{\"schema\":\"{PROFILE_SCHEMA}\",\"profile_le_ns\":");
        push_u64_list(&mut out, self.bounds.iter().copied());
        out.push_str(",\"spans\":{");
        for (i, (name, d)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_stats_entry(&mut out, name, d);
        }
        out.push_str("},\"threads\":{");
        for (i, (shard, per_span)) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{shard}\":{{"));
            for (j, (name, d)) in per_span.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_stats_entry(&mut out, name, d);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Parses one duration-statistics entry (a span's or a shard-span's).
fn parse_stats(entry: &Json, at: &str, bounds_len: usize) -> Result<DurationStats, String> {
    let field = |key: &str| {
        entry
            .get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("{at}: missing or non-integer {key}"))
    };
    let buckets = entry
        .get("buckets")
        .and_then(Json::to_u64_vec)
        .ok_or(format!("{at}: missing buckets"))?;
    if buckets.len() != bounds_len + 1 {
        return Err(format!(
            "{at}: {} buckets, want {}",
            buckets.len(),
            bounds_len + 1
        ));
    }
    Ok(DurationStats {
        count: field("count")?,
        total_ns: field("total_ns")?,
        min_ns: field("min_ns")?,
        max_ns: field("max_ns")?,
        buckets,
    })
}

/// Renders one `"name":{count,…,buckets}` member (no trailing comma).
fn push_stats_entry(out: &mut String, name: &str, d: &DurationStats) {
    out.push_str(&format!(
        "\"{name}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\
         \"p50_ns\":{},\"p99_ns\":{},\"buckets\":",
        d.count,
        d.total_ns,
        d.min_ns,
        d.max_ns,
        d.quantile_ns(50),
        d.quantile_ns(99),
    ));
    push_u64_list(out, d.buckets.iter().copied());
    out.push('}');
}

fn push_u64_list(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Renders the `cfs-profile/1` sidecar for a snapshot (the
/// `cfs run --profile-json` export).
pub fn render_profile_json(snap: &TraceSnapshot) -> String {
    ProfileDoc::from_snapshot(snap).render()
}

/// Renders the profile as folded-stack lines, one per span:
/// `root;child;leaf <self_ns>`, compatible with flamegraph collapse
/// tooling (`flamegraph.pl`, inferno). The stack is the span's chain of
/// ancestors in the static taxonomy; the value is *self* nanoseconds
/// (total minus children present in the document, floored at zero) so
/// stacking the lines reconstructs each parent's total. Lines are
/// emitted in lexicographic stack order, so equal documents render
/// equal bytes.
pub fn render_profile_folded(doc: &ProfileDoc) -> String {
    let parent_of = |name: &str| -> Option<&str> {
        parent_candidates(name)
            .iter()
            .copied()
            .find(|p| doc.spans.contains_key(*p))
    };
    let mut children_total: BTreeMap<&str, u64> = BTreeMap::new();
    for (name, d) in &doc.spans {
        if let Some(p) = parent_of(name) {
            *children_total.entry(p).or_insert(0) += d.total_ns;
        }
    }
    let mut lines: Vec<String> = Vec::new();
    for (name, d) in &doc.spans {
        // Walk ancestors leaf → root, then reverse into a stack string.
        let mut chain = vec![name.as_str()];
        let mut cursor = name.as_str();
        while let Some(p) = parent_of(cursor) {
            chain.push(p);
            cursor = p;
        }
        chain.reverse();
        let self_ns = d
            .total_ns
            .saturating_sub(children_total.get(name.as_str()).copied().unwrap_or(0));
        lines.push(format!("{} {self_ns}", chain.join(";")));
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// The static span taxonomy: candidate parents for a span name, most
/// specific first. The first candidate actually present in the profile
/// wins; a name with no surviving candidate is a root.
fn parent_candidates(name: &str) -> &'static [&'static str] {
    match name {
        "cfs.run" => &[],
        "cfs.iteration" | "stage.report" => &["cfs.run"],
        // Remote-peering verdicts are prefetched from inside the
        // constraint stage.
        "stage.remote" => &["stage.constrain", "cfs.iteration", "cfs.run"],
        _ if name.starts_with("stage.") => &["cfs.iteration", "cfs.run"],
        _ => &[],
    }
}

/// One row of the aggregated tree.
struct TreeRow {
    name: String,
    depth: usize,
    total_ns: u64,
    self_ns: u64,
    count: u64,
    p99_ns: u64,
}

/// Renders the human profile report: the span tree with total/self
/// time per stage, then the top-`top_n` bottlenecks by self time
/// (the `cfs profile <file>` output).
pub fn render_profile_report(doc: &ProfileDoc, top_n: usize) -> String {
    // Resolve each span's parent against what the profile holds.
    let parent_of = |name: &str| -> Option<&str> {
        parent_candidates(name)
            .iter()
            .copied()
            .find(|p| doc.spans.contains_key(*p))
    };
    let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut roots: Vec<&str> = Vec::new();
    for name in doc.spans.keys() {
        match parent_of(name) {
            Some(p) => children.entry(p).or_default().push(name),
            None => roots.push(name),
        }
    }
    let child_total = |name: &str| -> u64 {
        children
            .get(name)
            .map(|c| c.iter().map(|n| doc.spans[*n].total_ns).sum())
            .unwrap_or(0)
    };
    // Heaviest subtrees first, name as the deterministic tiebreak.
    let by_weight = |names: &mut Vec<&str>| {
        names.sort_by(|a, b| {
            doc.spans[*b]
                .total_ns
                .cmp(&doc.spans[*a].total_ns)
                .then(a.cmp(b))
        });
    };
    by_weight(&mut roots);

    let mut rows: Vec<TreeRow> = Vec::new();
    let mut stack: Vec<(&str, usize)> = roots.iter().rev().map(|n| (*n, 0)).collect();
    while let Some((name, depth)) = stack.pop() {
        let d = &doc.spans[name];
        rows.push(TreeRow {
            name: name.to_string(),
            depth,
            total_ns: d.total_ns,
            self_ns: d.total_ns.saturating_sub(child_total(name)),
            count: d.count,
            p99_ns: d.quantile_ns(99),
        });
        if let Some(kids) = children.get(name) {
            let mut kids = kids.clone();
            by_weight(&mut kids);
            for k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }

    let run_total = doc
        .spans
        .get("cfs.run")
        .map(|d| d.total_ns)
        .unwrap_or_else(|| {
            rows.iter()
                .filter(|r| r.depth == 0)
                .map(|r| r.total_ns)
                .sum()
        })
        .max(1);
    let ms = |ns: u64| ns as f64 / 1e6;

    let mut out = format!("{PROFILE_SCHEMA} · {} spans\n", doc.spans.len());
    out.push_str("span tree (count · total / self):\n");
    for r in &rows {
        let label = format!("{}{}", "  ".repeat(r.depth), r.name);
        out.push_str(&format!(
            "  {label:<28} {:>6}\u{d7} {:>10.3}ms / {:>10.3}ms\n",
            r.count,
            ms(r.total_ns),
            ms(r.self_ns),
        ));
    }

    let mut hot: Vec<&TreeRow> = rows.iter().collect();
    hot.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    hot.truncate(top_n);
    out.push_str(&format!("top {} bottlenecks by self time:\n", hot.len()));
    for (i, r) in hot.iter().enumerate() {
        out.push_str(&format!(
            "  {:>2}. {:<24} {:>10.3}ms self ({:>5.1}% of run)  p99 {:.3}ms\n",
            i + 1,
            r.name,
            ms(r.self_ns),
            100.0 * r.self_ns as f64 / run_total as f64,
            ms(r.p99_ns),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::trace::TraceRecorder;
    use crate::Virtual;
    use std::sync::Arc;

    fn recorded_snapshot() -> TraceSnapshot {
        let clock = Arc::new(Virtual::new());
        let rec = TraceRecorder::new(clock.clone());
        let span = |name, ns| {
            let s = rec.span_start();
            clock.advance(ns);
            rec.span_end(name, s);
        };
        span("cfs.run", 10_000_000);
        for _ in 0..4 {
            span("cfs.iteration", 2_000_000);
            span("stage.constrain", 900_000);
            span("stage.remote", 400_000);
        }
        span("stage.report", 100_000);
        rec.snapshot()
    }

    #[test]
    fn duration_stats_track_extrema_and_quantiles() {
        let mut d = DurationStats::default();
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            d.record(ns);
        }
        assert_eq!(d.count, 4);
        assert_eq!(d.min_ns, 1_000);
        assert_eq!(d.max_ns, 1_000_000);
        assert_eq!(d.total_ns, 1_007_000);
        assert!(d.quantile_ns(50) <= d.quantile_ns(99));
        assert!(d.quantile_ns(99) <= d.max_ns);
        assert!(d.quantile_ns(0) >= d.min_ns);
    }

    #[test]
    fn merge_matches_serial_recording() {
        let mut serial = DurationStats::default();
        let mut left = DurationStats::default();
        let mut right = DurationStats::default();
        for i in 0..100u64 {
            let ns = i * 77_777;
            serial.record(ns);
            if i % 2 == 0 { &mut left } else { &mut right }.record(ns);
        }
        left.merge(&right);
        assert_eq!(serial, left);
    }

    #[test]
    fn overflow_bucket_catches_the_giants() {
        let mut d = DurationStats::default();
        d.record(u64::MAX / 2);
        assert_eq!(d.buckets[PROFILE_BOUNDS_NS.len()], 1);
        assert_eq!(d.quantile_ns(99), u64::MAX / 2);
    }

    #[test]
    fn render_parse_round_trip_is_byte_identical() {
        let doc = ProfileDoc::from_snapshot(&recorded_snapshot());
        let rendered = doc.render();
        assert!(rendered.starts_with("{\"schema\":\"cfs-profile/1\","));
        let reparsed = ProfileDoc::parse(&rendered).expect("parse own output");
        assert_eq!(doc, reparsed);
        assert_eq!(rendered, reparsed.render());
    }

    #[test]
    fn parse_errors_name_the_failing_member() {
        for (raw, needle) in [
            ("{}", "missing schema"),
            ("{\"schema\":\"cfs-trace/1\"}", "schema is"),
            ("{\"schema\":\"cfs-profile/1\"}", "profile_le_ns"),
            (
                "{\"schema\":\"cfs-profile/1\",\"profile_le_ns\":[1],\"spans\":{\"x\":{}}}",
                "missing buckets",
            ),
            (
                "{\"schema\":\"cfs-profile/1\",\"profile_le_ns\":[1],\
                 \"spans\":{\"x\":{\"buckets\":[1]}}}",
                "1 buckets, want 2",
            ),
        ] {
            let err = ProfileDoc::parse(raw).unwrap_err();
            assert!(err.contains(needle), "{raw}: {err}");
        }
    }

    #[test]
    fn report_attributes_self_time_down_the_taxonomy() {
        let doc = ProfileDoc::from_snapshot(&recorded_snapshot());
        let report = render_profile_report(&doc, 3);
        // cfs.run self = 10ms − (4×2ms iteration + 0.1ms report) = 1.9ms.
        assert!(report.contains("cfs.run"), "{report}");
        assert!(report.contains("1.900ms"), "run self time wrong:\n{report}");
        // stage.remote nests under stage.constrain, two levels deep.
        assert!(report.contains("    stage.remote"), "{report}");
        assert!(report.contains("top 3 bottlenecks"), "{report}");
    }

    #[test]
    fn folded_stacks_chain_the_taxonomy_and_carry_self_time() {
        let doc = ProfileDoc::from_snapshot(&recorded_snapshot());
        let folded = render_profile_folded(&doc);
        let lines: Vec<&str> = folded.lines().collect();
        assert!(
            lines.contains(&"cfs.run;cfs.iteration;stage.constrain;stage.remote 1600000"),
            "{folded}"
        );
        // stage.constrain self = 4×900k − 4×400k (remote nests inside).
        assert!(
            lines.contains(&"cfs.run;cfs.iteration;stage.constrain 2000000"),
            "{folded}"
        );
        // cfs.run self = 10ms − (4×2ms iteration + 0.1ms report).
        assert!(lines.contains(&"cfs.run 1900000"), "{folded}");
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded lines are emitted sorted");
        assert_eq!(render_profile_folded(&ProfileDoc::default()), "");
    }

    #[test]
    fn threads_map_rides_the_sidecar_with_totals_unchanged() {
        let snap = recorded_snapshot();
        let doc = ProfileDoc::from_snapshot(&snap);
        // Everything above was recorded from one thread → one shard,
        // whose statistics must equal the merged spans.
        assert_eq!(doc.threads.len(), 1, "{:?}", doc.threads.keys());
        let only = doc.threads.values().next().expect("one shard");
        let merged: BTreeMap<String, DurationStats> = doc.spans.clone();
        assert_eq!(*only, merged, "single-shard stats equal the totals");
        // And the member round-trips through the document bytes.
        let rendered = doc.render();
        assert!(rendered.contains("\"threads\":{\""), "{rendered}");
        let reparsed = ProfileDoc::parse(&rendered).expect("parse with threads");
        assert_eq!(doc, reparsed);
        assert_eq!(rendered, reparsed.render());
        // Documents predating the member still parse, threads empty.
        let legacy = "{\"schema\":\"cfs-profile/1\",\"profile_le_ns\":[1],\"spans\":{}}";
        assert!(ProfileDoc::parse(legacy)
            .expect("legacy")
            .threads
            .is_empty());
    }

    #[test]
    fn report_handles_empty_and_unknown_spans() {
        let empty = render_profile_report(&ProfileDoc::default(), 5);
        assert!(empty.contains("0 spans"), "{empty}");
        let mut doc = ProfileDoc::default();
        doc.spans
            .insert("custom.thing".into(), DurationStats::default());
        let report = render_profile_report(&doc, 5);
        assert!(report.contains("custom.thing"), "{report}");
    }
}
