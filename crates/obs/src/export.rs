//! Rendering snapshots: the stable JSON body `--trace-json` builds on,
//! and the human-readable `--metrics` summary.
//!
//! The JSON here is hand-rolled (no serde), with every map iterated in
//! `BTreeMap` order, so a given snapshot always renders to the same
//! bytes. The **stable body** deliberately excludes span durations —
//! they are the one thread- and machine-sensitive quantity a snapshot
//! holds — which is what lets the full trace document be byte-identical
//! across worker counts (see `crates/core/tests/determinism.rs`).

use crate::trace::{TraceSnapshot, HISTOGRAM_BOUNDS};

/// 64-bit FNV-1a over `data`: the digest marking the stable content of
/// a trace document.
pub fn fnv1a64(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u64_list(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Renders the thread-count-independent part of a snapshot as JSON
/// object members (no surrounding braces):
/// `"counters":{…},"histograms":{…},"spans":{…}`.
///
/// Histograms carry their shared bucket bounds once, under
/// `"histogram_le"`; spans carry only entry counts, never nanoseconds.
pub fn stable_body(snap: &TraceSnapshot) -> String {
    let mut out = String::from("\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"histogram_le\":");
    push_u64_list(&mut out, HISTOGRAM_BOUNDS);
    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":",
            h.count, h.sum
        ));
        push_u64_list(&mut out, h.buckets.iter().copied());
        out.push('}');
    }
    out.push_str("},\"spans\":{");
    for (i, (name, s)) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{{\"count\":{}}}", s.count));
    }
    out.push('}');
    out
}

/// Renders the human `--metrics` summary: counters, histogram means,
/// and span wall time. This side *does* show durations; it is for eyes,
/// not for diffing.
pub fn render_metrics(snap: &TraceSnapshot) -> String {
    let mut out = String::from("counters:\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!("  {name:<28} {v}\n"));
    }
    out.push_str("histograms (count / mean):\n");
    for (name, h) in &snap.histograms {
        let mean = h.mean().unwrap_or(0.0);
        out.push_str(&format!("  {name:<28} {} / {mean:.1}\n", h.count));
    }
    out.push_str("spans (count / total ms):\n");
    for (name, s) in &snap.spans {
        out.push_str(&format!(
            "  {name:<28} {} / {:.3}\n",
            s.count,
            s.total_ns as f64 / 1e6
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::trace::TraceRecorder;

    fn sample() -> TraceSnapshot {
        let rec = TraceRecorder::deterministic();
        rec.counter("b.second", 2);
        rec.counter("a.first", 1);
        rec.observe("sizes", 3);
        let s = rec.span_start();
        rec.span_end("stage", s);
        rec.snapshot()
    }

    #[test]
    fn stable_body_is_sorted_and_duration_free() {
        let body = stable_body(&sample());
        assert!(body.starts_with("\"counters\":{\"a.first\":1,\"b.second\":2}"));
        assert!(body.contains("\"stage\":{\"count\":1}"));
        assert!(!body.contains("total_ns"), "durations leaked: {body}");
        assert_eq!(body, stable_body(&sample()), "rendering must be stable");
    }

    #[test]
    fn fnv_digest_reference_values() {
        // Pinned so the digest in exported files is comparable across
        // builds: FNV-1a test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn metrics_mentions_every_section() {
        let text = render_metrics(&sample());
        for needle in ["counters:", "histograms", "spans", "a.first", "stage"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
