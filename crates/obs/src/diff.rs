//! Structural diffing of exported documents: the engine behind
//! `cfs trace-diff`.
//!
//! Two `cfs-trace/1` documents are compared **exactly** — counters
//! added/removed/changed with deltas, histogram count/sum/bucket
//! shifts, span counts, convergence telemetry, and resolution-curve
//! divergence. The trace body is deterministic for a given (world,
//! seed, code) triple, so *any* difference is drift worth explaining;
//! there is no tolerance on this side.
//!
//! Two `cfs-profile/1` documents are compared **within tolerance** —
//! span *counts* must match exactly (they are deterministic), but
//! durations are machine noise until they move by more than
//! `tolerance_pct` percent, which is when a stage gets flagged as a
//! regression (or an improvement; the diff is signed).
//!
//! [`diff_docs`] sniffs the `schema` member of both inputs and
//! dispatches; mixing the two schemas is malformed input, as is
//! anything that fails to parse. The CLI maps the outcome to exit
//! codes: 0 identical-within-tolerance, 1 drift, 2 malformed.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::profile::{ProfileDoc, PROFILE_SCHEMA};

/// The trace schema marker this module understands (kept in sync with
/// `cfs_core::TRACE_SCHEMA`; the renderer lives there because the
/// document embeds report-side convergence telemetry).
pub const TRACE_SCHEMA: &str = "cfs-trace/1";

/// Why a pair of documents could not be diffed (CLI exit code 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffError {
    /// One input failed to parse or misses required members; the string
    /// names the side (`a`/`b`) and the failing member.
    Malformed(String),
    /// The two inputs carry different schema markers.
    SchemaMismatch(String, String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            DiffError::SchemaMismatch(a, b) => {
                write!(f, "schema mismatch: {a:?} vs {b:?} — diff like with like")
            }
        }
    }
}

/// One histogram whose content moved between the runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramDelta {
    /// Histogram name.
    pub name: String,
    /// Sample counts in a and b.
    pub count: (u64, u64),
    /// Sample sums in a and b.
    pub sum: (u64, u64),
    /// How many buckets hold different values.
    pub shifted_buckets: usize,
}

/// How the convergence telemetry moved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConvergenceDelta {
    /// `per_iteration` lengths in a and b.
    pub iterations: (usize, usize),
    /// Whether any part of the convergence subtree differs.
    pub changed: bool,
}

/// How the resolution curves diverge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CurveDelta {
    /// Curve lengths in a and b.
    pub len: (usize, usize),
    /// First index where the curves disagree (or one ends), if any.
    pub first_divergence: Option<usize>,
    /// Largest absolute pointwise difference over the shared prefix.
    pub max_abs_delta: f64,
}

/// The structural difference between two `cfs-trace/1` documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDiff {
    /// Counters only in b, with their values.
    pub counters_added: Vec<(String, u64)>,
    /// Counters only in a, with their values.
    pub counters_removed: Vec<(String, u64)>,
    /// Counters in both with different values: `(name, a, b)`.
    pub counters_changed: Vec<(String, u64, u64)>,
    /// Histograms whose count/sum/buckets moved (includes one-sided
    /// names, with zeros on the missing side).
    pub histograms_changed: Vec<HistogramDelta>,
    /// Span entry counts that moved: `(name, a, b)` (0 = absent).
    pub spans_changed: Vec<(String, u64, u64)>,
    /// Convergence telemetry movement.
    pub convergence: ConvergenceDelta,
    /// Resolution-curve movement.
    pub curve: CurveDelta,
}

impl TraceDiff {
    /// Whether anything differs. Trace comparison is exact.
    pub fn is_drift(&self) -> bool {
        !self.counters_added.is_empty()
            || !self.counters_removed.is_empty()
            || !self.counters_changed.is_empty()
            || !self.histograms_changed.is_empty()
            || !self.spans_changed.is_empty()
            || self.convergence.changed
            || self.curve.first_divergence.is_some()
            || self.curve.len.0 != self.curve.len.1
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        if !self.is_drift() {
            return "trace diff: identical\n".to_string();
        }
        let mut out = String::from("trace diff: DRIFT\n");
        if !(self.counters_added.is_empty()
            && self.counters_removed.is_empty()
            && self.counters_changed.is_empty())
        {
            out.push_str(&format!(
                "counters (+{} \u{2212}{} ~{}):\n",
                self.counters_added.len(),
                self.counters_removed.len(),
                self.counters_changed.len()
            ));
            for (name, v) in &self.counters_added {
                out.push_str(&format!("  + {name} = {v}\n"));
            }
            for (name, v) in &self.counters_removed {
                out.push_str(&format!("  \u{2212} {name} = {v}\n"));
            }
            for (name, a, b) in &self.counters_changed {
                let delta = i128::from(*b) - i128::from(*a);
                out.push_str(&format!("  ~ {name} {a} \u{2192} {b} ({delta:+})\n"));
            }
        }
        if !self.histograms_changed.is_empty() {
            out.push_str(&format!(
                "histograms (~{}):\n",
                self.histograms_changed.len()
            ));
            for h in &self.histograms_changed {
                out.push_str(&format!(
                    "  ~ {} count {} \u{2192} {}, sum {} \u{2192} {}, {} bucket(s) shifted\n",
                    h.name, h.count.0, h.count.1, h.sum.0, h.sum.1, h.shifted_buckets
                ));
            }
        }
        if !self.spans_changed.is_empty() {
            out.push_str(&format!("spans (~{}):\n", self.spans_changed.len()));
            for (name, a, b) in &self.spans_changed {
                out.push_str(&format!("  ~ {name} {a} \u{2192} {b}\n"));
            }
        }
        if self.convergence.changed {
            out.push_str(&format!(
                "convergence: {} \u{2192} {} iterations, telemetry diverged\n",
                self.convergence.iterations.0, self.convergence.iterations.1
            ));
        }
        if self.curve.first_divergence.is_some() || self.curve.len.0 != self.curve.len.1 {
            out.push_str(&format!(
                "resolution_curve: len {} \u{2192} {}",
                self.curve.len.0, self.curve.len.1
            ));
            if let Some(i) = self.curve.first_divergence {
                out.push_str(&format!(
                    ", diverges at index {i} (max |\u{394}| {:.6})",
                    self.curve.max_abs_delta
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable report (stable member order).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"cfs-trace-diff/1\",\"drift\":{},\"counters\":{{\"added\":{{",
            self.is_drift()
        );
        push_pairs(&mut out, self.counters_added.iter().map(|(n, v)| (n, *v)));
        out.push_str("},\"removed\":{");
        push_pairs(&mut out, self.counters_removed.iter().map(|(n, v)| (n, *v)));
        out.push_str("},\"changed\":{");
        for (i, (name, a, b)) in self.counters_changed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":[{a},{b}]"));
        }
        out.push_str("}},\"histograms\":{");
        for (i, h) in self.histograms_changed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":[{},{}],\"sum\":[{},{}],\"shifted_buckets\":{}}}",
                h.name, h.count.0, h.count.1, h.sum.0, h.sum.1, h.shifted_buckets
            ));
        }
        out.push_str("},\"spans\":{");
        for (i, (name, a, b)) in self.spans_changed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":[{a},{b}]"));
        }
        out.push_str(&format!(
            "}},\"convergence\":{{\"iterations\":[{},{}],\"changed\":{}}},\
             \"resolution_curve\":{{\"len\":[{},{}],\"first_divergence\":{},\
             \"max_abs_delta\":{}}}}}",
            self.convergence.iterations.0,
            self.convergence.iterations.1,
            self.convergence.changed,
            self.curve.len.0,
            self.curve.len.1,
            self.curve
                .first_divergence
                .map_or("null".to_string(), |i| i.to_string()),
            self.curve.max_abs_delta,
        ));
        out
    }
}

fn push_pairs<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a String, u64)>) {
    for (i, (name, v)) in pairs.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
}

/// One stage whose duration moved beyond tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct StageDelta {
    /// Span name.
    pub name: String,
    /// Total nanoseconds in a and b.
    pub total_ns: (u64, u64),
    /// p99 nanoseconds in a and b.
    pub p99_ns: (u64, u64),
    /// Signed percent change of the total, relative to a.
    pub delta_pct: f64,
}

/// The difference between two `cfs-profile/1` documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileDiff {
    /// Tolerance applied to duration comparisons, in percent.
    pub tolerance_pct: u32,
    /// Span names only in b.
    pub spans_added: Vec<String>,
    /// Span names only in a.
    pub spans_removed: Vec<String>,
    /// Span entry counts that moved (deterministic, compared exactly).
    pub counts_changed: Vec<(String, u64, u64)>,
    /// Stages whose total duration moved beyond tolerance.
    pub duration_changed: Vec<StageDelta>,
    /// Spans compared and found within tolerance.
    pub within_tolerance: usize,
}

impl ProfileDiff {
    /// Whether the profiles drifted: structural changes or any stage
    /// beyond tolerance.
    pub fn is_drift(&self) -> bool {
        !self.spans_added.is_empty()
            || !self.spans_removed.is_empty()
            || !self.counts_changed.is_empty()
            || !self.duration_changed.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let verdict = if self.is_drift() {
            "DRIFT"
        } else {
            "within tolerance"
        };
        let mut out = format!(
            "profile diff (tolerance \u{b1}{}%): {verdict}\n",
            self.tolerance_pct
        );
        for name in &self.spans_added {
            out.push_str(&format!("  + span {name}\n"));
        }
        for name in &self.spans_removed {
            out.push_str(&format!("  \u{2212} span {name}\n"));
        }
        for (name, a, b) in &self.counts_changed {
            out.push_str(&format!("  ~ count {name} {a} \u{2192} {b}\n"));
        }
        for d in &self.duration_changed {
            out.push_str(&format!(
                "  ~ {} total {:.3}ms \u{2192} {:.3}ms ({:+.1}%), p99 {:.3}ms \u{2192} {:.3}ms\n",
                d.name,
                d.total_ns.0 as f64 / 1e6,
                d.total_ns.1 as f64 / 1e6,
                d.delta_pct,
                d.p99_ns.0 as f64 / 1e6,
                d.p99_ns.1 as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "  {} span(s) within tolerance\n",
            self.within_tolerance
        ));
        out
    }

    /// Machine-readable report (stable member order).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"cfs-profile-diff/1\",\"drift\":{},\"tolerance_pct\":{},\"added\":[",
            self.is_drift(),
            self.tolerance_pct
        );
        push_name_list(&mut out, &self.spans_added);
        out.push_str("],\"removed\":[");
        push_name_list(&mut out, &self.spans_removed);
        out.push_str("],\"counts_changed\":{");
        for (i, (name, a, b)) in self.counts_changed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":[{a},{b}]"));
        }
        out.push_str("},\"duration_changed\":{");
        for (i, d) in self.duration_changed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"total_ns\":[{},{}],\"p99_ns\":[{},{}],\"delta_pct\":{:.3}}}",
                d.name, d.total_ns.0, d.total_ns.1, d.p99_ns.0, d.p99_ns.1, d.delta_pct
            ));
        }
        out.push_str(&format!(
            "}},\"within_tolerance\":{}}}",
            self.within_tolerance
        ));
        out
    }
}

fn push_name_list(out: &mut String, names: &[String]) {
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{n}\""));
    }
}

/// A diff of either schema pair.
#[derive(Clone, Debug, PartialEq)]
pub enum DocDiff {
    /// Two `cfs-trace/1` documents, compared exactly.
    Trace(TraceDiff),
    /// Two `cfs-profile/1` documents, compared within tolerance.
    Profile(ProfileDiff),
}

impl DocDiff {
    /// Whether the pair drifted (CLI exit code 1).
    pub fn is_drift(&self) -> bool {
        match self {
            DocDiff::Trace(d) => d.is_drift(),
            DocDiff::Profile(d) => d.is_drift(),
        }
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        match self {
            DocDiff::Trace(d) => d.render_text(),
            DocDiff::Profile(d) => d.render_text(),
        }
    }

    /// Machine-readable report.
    pub fn render_json(&self) -> String {
        match self {
            DocDiff::Trace(d) => d.render_json(),
            DocDiff::Profile(d) => d.render_json(),
        }
    }
}

/// Diffs two exported documents, dispatching on their `schema` member.
/// `tolerance_pct` applies only to profile durations; traces are
/// compared exactly.
pub fn diff_docs(a_raw: &str, b_raw: &str, tolerance_pct: u32) -> Result<DocDiff, DiffError> {
    let schema_of = |raw: &str, side: &str| -> Result<(Json, String), DiffError> {
        let doc = Json::parse(raw).map_err(|e| DiffError::Malformed(format!("{side}: {e}")))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| DiffError::Malformed(format!("{side}: missing schema member")))?
            .to_string();
        Ok((doc, schema))
    };
    let (a_doc, a_schema) = schema_of(a_raw, "a")?;
    let (b_doc, b_schema) = schema_of(b_raw, "b")?;
    if a_schema != b_schema {
        return Err(DiffError::SchemaMismatch(a_schema, b_schema));
    }
    match a_schema.as_str() {
        TRACE_SCHEMA => Ok(DocDiff::Trace(diff_traces(&a_doc, &b_doc)?)),
        PROFILE_SCHEMA => {
            let parse = |raw: &str, side: &str| {
                ProfileDoc::parse(raw).map_err(|e| DiffError::Malformed(format!("{side}: {e}")))
            };
            Ok(DocDiff::Profile(diff_profiles(
                &parse(a_raw, "a")?,
                &parse(b_raw, "b")?,
                tolerance_pct,
            )))
        }
        other => Err(DiffError::Malformed(format!("unknown schema {other:?}"))),
    }
}

struct TraceSide {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, (u64, u64, Vec<u64>)>,
    spans: BTreeMap<String, u64>,
    convergence: Json,
    iterations: usize,
    curve: Vec<f64>,
}

fn trace_side(doc: &Json, side: &str) -> Result<TraceSide, DiffError> {
    let get = |key: &str| {
        doc.get(key)
            .ok_or_else(|| DiffError::Malformed(format!("{side}: missing {key} member")))
    };
    let bad = |what: &str| DiffError::Malformed(format!("{side}: {what}"));
    let counters = get("counters")?
        .to_u64_map()
        .ok_or_else(|| bad("counters is not a name\u{2192}integer map"))?;
    let mut histograms = BTreeMap::new();
    for (name, h) in get("histograms")?
        .as_obj()
        .ok_or_else(|| bad("histograms is not an object"))?
    {
        let count = h.get("count").and_then(Json::as_u64);
        let sum = h.get("sum").and_then(Json::as_u64);
        let buckets = h.get("buckets").and_then(Json::to_u64_vec);
        match (count, sum, buckets) {
            (Some(c), Some(s), Some(b)) => {
                histograms.insert(name.clone(), (c, s, b));
            }
            _ => return Err(bad(&format!("histogram {name:?} is malformed"))),
        }
    }
    let mut spans = BTreeMap::new();
    for (name, s) in get("spans")?
        .as_obj()
        .ok_or_else(|| bad("spans is not an object"))?
    {
        let count = s
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(&format!("span {name:?} has no count")))?;
        spans.insert(name.clone(), count);
    }
    let convergence = get("convergence")?.clone();
    let iterations = convergence
        .get("per_iteration")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .ok_or_else(|| bad("convergence.per_iteration is not an array"))?;
    let curve = get("resolution_curve")?
        .as_arr()
        .ok_or_else(|| bad("resolution_curve is not an array"))?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| bad("resolution_curve holds non-numbers"))?;
    Ok(TraceSide {
        counters,
        histograms,
        spans,
        convergence,
        iterations,
        curve,
    })
}

fn diff_traces(a_doc: &Json, b_doc: &Json) -> Result<TraceDiff, DiffError> {
    let a = trace_side(a_doc, "a")?;
    let b = trace_side(b_doc, "b")?;
    let mut d = TraceDiff::default();

    for (name, av) in &a.counters {
        match b.counters.get(name) {
            None => d.counters_removed.push((name.clone(), *av)),
            Some(bv) if bv != av => d.counters_changed.push((name.clone(), *av, *bv)),
            Some(_) => {}
        }
    }
    for (name, bv) in &b.counters {
        if !a.counters.contains_key(name) {
            d.counters_added.push((name.clone(), *bv));
        }
    }

    let empty = (0u64, 0u64, Vec::new());
    let hist_names: BTreeMap<&String, ()> = a
        .histograms
        .keys()
        .chain(b.histograms.keys())
        .map(|n| (n, ()))
        .collect();
    for name in hist_names.keys() {
        let ha = a.histograms.get(*name).unwrap_or(&empty);
        let hb = b.histograms.get(*name).unwrap_or(&empty);
        if ha == hb {
            continue;
        }
        let longest = ha.2.len().max(hb.2.len());
        let shifted = (0..longest)
            .filter(|i| ha.2.get(*i).unwrap_or(&0) != hb.2.get(*i).unwrap_or(&0))
            .count();
        d.histograms_changed.push(HistogramDelta {
            name: (*name).clone(),
            count: (ha.0, hb.0),
            sum: (ha.1, hb.1),
            shifted_buckets: shifted,
        });
    }

    let span_names: BTreeMap<&String, ()> = a
        .spans
        .keys()
        .chain(b.spans.keys())
        .map(|n| (n, ()))
        .collect();
    for name in span_names.keys() {
        let sa = a.spans.get(*name).copied().unwrap_or(0);
        let sb = b.spans.get(*name).copied().unwrap_or(0);
        if sa != sb {
            d.spans_changed.push(((*name).clone(), sa, sb));
        }
    }

    d.convergence = ConvergenceDelta {
        iterations: (a.iterations, b.iterations),
        changed: a.convergence != b.convergence,
    };

    d.curve.len = (a.curve.len(), b.curve.len());
    for (i, (x, y)) in a.curve.iter().zip(b.curve.iter()).enumerate() {
        let delta = (x - y).abs();
        if delta > 0.0 {
            d.curve.first_divergence.get_or_insert(i);
            d.curve.max_abs_delta = d.curve.max_abs_delta.max(delta);
        }
    }
    if d.curve.first_divergence.is_none() && a.curve.len() != b.curve.len() {
        d.curve.first_divergence = Some(a.curve.len().min(b.curve.len()));
    }
    Ok(d)
}

/// Diffs two parsed profiles with the given duration tolerance.
pub fn diff_profiles(a: &ProfileDoc, b: &ProfileDoc, tolerance_pct: u32) -> ProfileDiff {
    let mut d = ProfileDiff {
        tolerance_pct,
        ..ProfileDiff::default()
    };
    for name in a.spans.keys() {
        if !b.spans.contains_key(name) {
            d.spans_removed.push(name.clone());
        }
    }
    for name in b.spans.keys() {
        if !a.spans.contains_key(name) {
            d.spans_added.push(name.clone());
        }
    }
    for (name, da) in &a.spans {
        let Some(db) = b.spans.get(name) else {
            continue;
        };
        if da.count != db.count {
            d.counts_changed.push((name.clone(), da.count, db.count));
        }
        let delta_pct =
            (db.total_ns as f64 - da.total_ns as f64) * 100.0 / (da.total_ns.max(1)) as f64;
        if delta_pct.abs() > f64::from(tolerance_pct) {
            d.duration_changed.push(StageDelta {
                name: name.clone(),
                total_ns: (da.total_ns, db.total_ns),
                p99_ns: (da.quantile_ns(99), db.quantile_ns(99)),
                delta_pct,
            });
        } else {
            d.within_tolerance += 1;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DurationStats;

    fn trace_doc(extract: u64, iterations: usize, curve_last: &str) -> String {
        format!(
            "{{\"schema\":\"cfs-trace/1\",\"digest\":\"0000000000000000\",\
             \"counters\":{{\"extract.observations\":{extract},\"report.links\":4}},\
             \"histogram_le\":[1,2],\
             \"histograms\":{{\"observe.per_trace\":{{\"count\":{extract},\"sum\":9,\
             \"buckets\":[{extract},0,0]}}}},\
             \"spans\":{{\"cfs.iteration\":{{\"count\":{iterations}}}}},\
             \"convergence\":{{\"candidate_bucket_le\":[2,4],\"per_iteration\":[{}],\
             \"trajectories\":{{}}}},\
             \"resolution_curve\":[0.25,{curve_last}]}}",
            (0..iterations)
                .map(|i| format!(
                    "{{\"iteration\":{},\"unconstrained\":0,\"resolved\":1,\"buckets\":[1,0,0]}}",
                    i + 1
                ))
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = trace_doc(10, 2, "0.5");
        let d = diff_docs(&doc, &doc, 0).unwrap();
        assert!(!d.is_drift());
        assert!(d.render_text().contains("identical"));
        assert!(d.render_json().contains("\"drift\":false"));
    }

    #[test]
    fn counter_and_span_drift_is_itemized() {
        let d = diff_docs(&trace_doc(10, 2, "0.5"), &trace_doc(12, 3, "0.5"), 0).unwrap();
        assert!(d.is_drift());
        let DocDiff::Trace(t) = &d else {
            panic!("trace pair")
        };
        assert_eq!(
            t.counters_changed,
            vec![("extract.observations".to_string(), 10, 12)]
        );
        assert_eq!(t.spans_changed, vec![("cfs.iteration".to_string(), 2, 3)]);
        assert_eq!(
            t.histograms_changed.len(),
            1,
            "histogram moved with counter"
        );
        assert!(t.convergence.changed);
        assert_eq!(t.convergence.iterations, (2, 3));
        let text = d.render_text();
        assert!(
            text.contains("extract.observations 10 \u{2192} 12 (+2)"),
            "{text}"
        );
    }

    #[test]
    fn curve_divergence_is_located() {
        let d = diff_docs(&trace_doc(10, 2, "0.5"), &trace_doc(10, 2, "0.75"), 0).unwrap();
        let DocDiff::Trace(t) = &d else {
            panic!("trace pair")
        };
        assert_eq!(t.curve.first_divergence, Some(1));
        assert!((t.curve.max_abs_delta - 0.25).abs() < 1e-12);
        assert!(d.is_drift());
    }

    #[test]
    fn added_and_removed_counters_split_correctly() {
        let a = trace_doc(10, 1, "0.5");
        let b = a.replace("extract.observations", "extract.renamed");
        let DocDiff::Trace(t) = diff_docs(&a, &b, 0).unwrap() else {
            panic!("trace pair")
        };
        assert_eq!(
            t.counters_removed,
            vec![("extract.observations".into(), 10)]
        );
        assert_eq!(t.counters_added, vec![("extract.renamed".into(), 10)]);
    }

    #[test]
    fn malformed_and_mismatched_inputs_error() {
        let trace = trace_doc(1, 1, "0.5");
        let profile =
            "{\"schema\":\"cfs-profile/1\",\"profile_le_ns\":[1],\"spans\":{}}".to_string();
        assert!(matches!(
            diff_docs("not json", &trace, 0),
            Err(DiffError::Malformed(_))
        ));
        assert!(matches!(
            diff_docs("{\"no\":\"schema\"}", &trace, 0),
            Err(DiffError::Malformed(_))
        ));
        assert!(matches!(
            diff_docs(&trace, &profile, 0),
            Err(DiffError::SchemaMismatch(_, _))
        ));
        assert!(matches!(
            diff_docs(
                "{\"schema\":\"cfs-unknown/9\"}",
                "{\"schema\":\"cfs-unknown/9\"}",
                0
            ),
            Err(DiffError::Malformed(_))
        ));
    }

    fn profile_with(total_ns: u64, count: u64) -> ProfileDoc {
        let mut stats = DurationStats::default();
        for _ in 0..count {
            stats.record(total_ns / count.max(1));
        }
        let mut doc = ProfileDoc {
            bounds: crate::profile::PROFILE_BOUNDS_NS.to_vec(),
            ..ProfileDoc::default()
        };
        doc.spans.insert("stage.constrain".into(), stats);
        doc
    }

    #[test]
    fn profile_tolerance_gates_duration_drift() {
        let a = profile_with(10_000_000, 4);
        let slower = profile_with(14_000_000, 4);
        // +40% is inside a ±50% tolerance, outside ±25%.
        assert!(!diff_profiles(&a, &slower, 50).is_drift());
        let flagged = diff_profiles(&a, &slower, 25);
        assert!(flagged.is_drift());
        assert_eq!(flagged.duration_changed.len(), 1);
        assert!((flagged.duration_changed[0].delta_pct - 40.0).abs() < 1e-9);
        let text = flagged.render_text();
        assert!(text.contains("stage.constrain"), "{text}");
        assert!(flagged.render_json().contains("\"drift\":true"));
    }

    #[test]
    fn profile_count_changes_are_always_drift() {
        let a = profile_with(10_000_000, 4);
        let recounted = profile_with(10_000_000, 5);
        let d = diff_profiles(&a, &recounted, 100);
        assert!(d.is_drift(), "span counts are deterministic; no tolerance");
        assert_eq!(d.counts_changed, vec![("stage.constrain".into(), 4, 5)]);
    }

    #[test]
    fn profile_diff_through_the_document_path() {
        let a = profile_with(10_000_000, 4).render();
        let d = diff_docs(&a, &a, 25).unwrap();
        assert!(!d.is_drift());
        assert!(d.render_text().contains("within tolerance"));
    }
}
