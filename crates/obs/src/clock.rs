//! Injectable time sources.
//!
//! The workspace's `wall-clock` lint bans `Instant::now` everywhere
//! except `crates/bench` — wall time read inside the pipeline would leak
//! into results and break run-to-run reproducibility. This module is the
//! one sanctioned home for the real clock: code that needs timing takes
//! a `&dyn Clock` (or an `Arc<dyn Clock>`) and the *caller* decides
//! whether time is real ([`Monotonic`]) or scripted ([`Virtual`]).
//! Tests and determinism checks inject [`Virtual`], so recorded
//! durations are a pure function of the test script.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic nanosecond source. Implementations must never go
/// backwards; beyond that the epoch is arbitrary (only differences are
/// meaningful).
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's (arbitrary) epoch.
    fn now_ns(&self) -> u64;
}

/// Real elapsed time, anchored at construction.
///
/// This is the only place in the workspace allowed to call
/// `Instant::now` (the `wall-clock` rule special-cases this file); every
/// other crate reaches real time through this type.
pub struct Monotonic {
    origin: std::time::Instant,
}

impl Monotonic {
    /// A monotonic clock starting at zero now.
    #[allow(clippy::disallowed_methods)] // the sanctioned Instant::now home (cfs-lint wall-clock)
    pub fn new() -> Self {
        Self {
            origin: std::time::Instant::now(),
        }
    }

    /// Time elapsed since construction, as a `Duration` (convenience for
    /// operator-facing prints).
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now_ns())
    }
}

impl Default for Monotonic {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for Monotonic {
    #[allow(clippy::disallowed_methods)] // the sanctioned Instant::now home (cfs-lint wall-clock)
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Parks the calling thread for `interval` of real time: the sanctioned
/// pacing primitive for operator-facing polling loops (`cfs top`).
///
/// Pipeline and service code must never call this — pacing real time
/// belongs to interactive frontends only, which is why it lives next to
/// [`Monotonic`] in the one file the `raw-sleep`/`wall-clock` rules
/// sanction.
pub fn pace(interval: Duration) {
    std::thread::sleep(interval);
}

/// A scripted clock: time advances only when the owner says so.
///
/// Deterministic by construction — two runs that call
/// [`Virtual::advance`] identically read identical timestamps — which is
/// what keeps span durations out of the way in reproducibility tests.
#[derive(Default)]
pub struct Virtual {
    ns: AtomicU64,
}

impl Virtual {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for Virtual {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let c = Monotonic::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_is_scripted() {
        let c = Virtual::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        c.advance(250);
        assert_eq!(c.now_ns(), 500);
    }
}
