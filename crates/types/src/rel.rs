//! Interdomain business relationships (Gao–Rexford model).

use core::fmt;

/// The business relationship on an AS-level adjacency.
///
/// Stored on the adjacency in canonical orientation: for
/// [`Rel::CustomerToProvider`], the adjacency's first AS is the customer;
/// [`Rel::PeerToPeer`] is symmetric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// The first AS buys transit from the second.
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

impl Rel {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::CustomerToProvider => "c2p",
            Self::PeerToPeer => "p2p",
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Rel::CustomerToProvider.to_string(), "c2p");
        assert_eq!(Rel::PeerToPeer.to_string(), "p2p");
    }
}
