//! Interned, immutable facility sets.
//!
//! The CFS engine spends most of its time intersecting facility sets: the
//! footprints of ASes and exchanges (from the knowledge base) against the
//! per-interface candidate sets it narrows. Those footprints repeat
//! endlessly — every observation of the same AS reuses the same set — so
//! [`FacilitySet`] stores a sorted, deduplicated `Arc<[FacilityId]>`:
//!
//! * cloning is a reference-count bump, safe to share across threads;
//! * intersection runs over sorted slices — two-pointer for similar
//!   sizes, per-element binary search when one side is much smaller
//!   (`O(min(n, m) · log max(n, m))`);
//! * a [`FacilitySetInterner`] collapses identical contents onto one
//!   allocation, so equality checks between interned sets are usually a
//!   pointer comparison.

use core::fmt;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

use crate::ids::FacilityId;

/// An immutable, sorted set of facilities behind a shared allocation.
///
/// Equality, ordering, and hashing follow the contents; `Clone` is a
/// reference-count bump.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FacilitySet(Arc<[FacilityId]>);

impl FacilitySet {
    /// The shared empty set.
    pub fn empty() -> Self {
        static EMPTY: OnceLock<FacilitySet> = OnceLock::new();
        EMPTY
            .get_or_init(|| FacilitySet(Arc::from(Vec::new())))
            .clone()
    }

    /// Builds a set from an already sorted, deduplicated vector.
    fn from_sorted(ids: Vec<FacilityId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "must be sorted and deduplicated"
        );
        if ids.is_empty() {
            return Self::empty();
        }
        Self(Arc::from(ids))
    }

    /// Number of facilities in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `f` is a member.
    pub fn contains(&self, f: FacilityId) -> bool {
        self.0.binary_search(&f).is_ok()
    }

    /// The single member when the set has exactly one.
    pub fn single(&self) -> Option<FacilityId> {
        match *self.0 {
            [f] => Some(f),
            _ => None,
        }
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FacilityId> + '_ {
        self.0.iter().copied()
    }

    /// The members as a sorted slice.
    pub fn as_slice(&self) -> &[FacilityId] {
        &self.0
    }

    /// The members as an owned `BTreeSet` (report/interop boundary).
    pub fn to_btree_set(&self) -> BTreeSet<FacilityId> {
        self.iter().collect()
    }

    /// Intersection with `other`.
    ///
    /// When the result equals one of the inputs the input's allocation is
    /// reused, so repeated constraining against supersets stays
    /// allocation-free and interner sharing survives.
    pub fn intersect(&self, other: &FacilitySet) -> FacilitySet {
        if Arc::ptr_eq(&self.0, &other.0) {
            return self.clone();
        }
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(small.len());
        if small.len() * 16 < large.len() {
            // Strongly skewed sizes: probe the large side per element.
            for f in small.iter() {
                if large.contains(f) {
                    out.push(f);
                }
            }
        } else {
            let (a, b) = (&small.0, &large.0);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        if out.len() == self.len() {
            self.clone()
        } else if out.len() == other.len() {
            other.clone()
        } else {
            FacilitySet::from_sorted(out)
        }
    }

    /// Number of facilities shared with `other`, without materializing
    /// the intersection.
    pub fn intersection_len(&self, other: &FacilitySet) -> usize {
        if Arc::ptr_eq(&self.0, &other.0) {
            return self.len();
        }
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().filter(|f| large.contains(*f)).count()
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &FacilitySet) -> bool {
        self.len() <= other.len() && self.intersection_len(other) == self.len()
    }
}

impl FromIterator<FacilityId> for FacilitySet {
    fn from_iter<I: IntoIterator<Item = FacilityId>>(iter: I) -> Self {
        let mut ids: Vec<FacilityId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self::from_sorted(ids)
    }
}

impl From<&BTreeSet<FacilityId>> for FacilitySet {
    fn from(set: &BTreeSet<FacilityId>) -> Self {
        // Already sorted and deduplicated by construction.
        Self::from_sorted(set.iter().copied().collect())
    }
}

impl From<BTreeSet<FacilityId>> for FacilitySet {
    fn from(set: BTreeSet<FacilityId>) -> Self {
        Self::from(&set)
    }
}

impl fmt::Debug for FacilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl serde::Serialize for FacilitySet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.iter().map(|f| f.to_value()).collect())
    }
}

impl serde::Deserialize for FacilitySet {
    fn from_value(v: &serde::Value) -> core::result::Result<Self, serde::Error> {
        let ids = <Vec<FacilityId> as serde::Deserialize>::from_value(v)?;
        Ok(ids.into_iter().collect())
    }
}

/// Deduplicating pool of [`FacilitySet`] allocations.
///
/// Interning the knowledge-base footprints means the engine's AS and IXP
/// caches share one allocation per distinct footprint, and intersections
/// of a set with itself (or a shared superset) short-circuit on pointer
/// identity. The interner is `Sync`; the pool sits behind a `Mutex` that
/// is only touched on cache misses.
#[derive(Debug, Default)]
pub struct FacilitySetInterner {
    pool: Mutex<BTreeSet<Arc<[FacilityId]>>>,
}

impl FacilitySetInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the facilities yielded by `iter` (any order, duplicates
    /// allowed): identical contents always return clones of one shared
    /// allocation.
    pub fn intern<I: IntoIterator<Item = FacilityId>>(&self, iter: I) -> FacilitySet {
        let mut ids: Vec<FacilityId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// Interns an existing `BTreeSet` (already sorted and deduplicated).
    pub fn intern_set(&self, set: &BTreeSet<FacilityId>) -> FacilitySet {
        self.intern_sorted(set.iter().copied().collect())
    }

    fn intern_sorted(&self, ids: Vec<FacilityId>) -> FacilitySet {
        if ids.is_empty() {
            return FacilitySet::empty();
        }
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = pool.get(ids.as_slice()) {
            return FacilitySet(Arc::clone(hit));
        }
        let arc: Arc<[FacilityId]> = Arc::from(ids);
        pool.insert(Arc::clone(&arc));
        FacilitySet(arc)
    }

    /// Number of distinct sets interned so far.
    pub fn distinct_sets(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ids: &[u32]) -> FacilitySet {
        ids.iter().map(|i| FacilityId::new(*i)).collect()
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s = fs(&[5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[FacilityId(1), FacilityId(3), FacilityId(5)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(FacilityId(3)));
        assert!(!s.contains(FacilityId(2)));
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(fs(&[7]).single(), Some(FacilityId(7)));
        assert_eq!(fs(&[7, 8]).single(), None);
        assert!(FacilitySet::empty().is_empty());
        assert_eq!(FacilitySet::empty().single(), None);
    }

    #[test]
    fn intersect_matches_btreeset_semantics() {
        let a = fs(&[1, 2, 3, 4]);
        let b = fs(&[2, 4, 6]);
        assert_eq!(a.intersect(&b), fs(&[2, 4]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(fs(&[2, 4]).is_subset(&a));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn intersect_reuses_input_allocation_when_unchanged() {
        let a = fs(&[1, 2, 3]);
        let sup = fs(&[1, 2, 3, 4, 5]);
        let out = a.intersect(&sup);
        assert!(Arc::ptr_eq(&out.0, &a.0), "subset side must be reused");
        let same = a.intersect(&a.clone());
        assert!(Arc::ptr_eq(&same.0, &a.0));
    }

    #[test]
    fn skewed_intersection_uses_probe_path() {
        let small = fs(&[3, 900]);
        let large: FacilitySet = (0..200).map(FacilityId::new).collect();
        assert_eq!(small.intersect(&large), fs(&[3]));
        assert_eq!(large.intersect(&small), fs(&[3]));
    }

    #[test]
    fn interner_shares_allocations() {
        let interner = FacilitySetInterner::new();
        let a = interner.intern([FacilityId(2), FacilityId(1)]);
        let b = interner.intern([FacilityId(1), FacilityId(2), FacilityId(2)]);
        assert!(
            Arc::ptr_eq(&a.0, &b.0),
            "identical contents share one allocation"
        );
        assert_eq!(interner.distinct_sets(), 1);
        let c = interner.intern_set(&[FacilityId(1)].into_iter().collect());
        assert_eq!(c, fs(&[1]));
        assert_eq!(interner.distinct_sets(), 2);
        assert!(interner.intern([]).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let s = fs(&[4, 9]);
        let v = serde::Serialize::to_value(&s);
        let back: FacilitySet = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, s);
    }

    proptest::proptest! {
        /// Intersection agrees with `BTreeSet::intersection` for arbitrary
        /// contents, regardless of which side is larger.
        #[test]
        fn prop_intersection_matches_btreeset(
            a in proptest::collection::btree_set(0u32..64, 0..24),
            b in proptest::collection::btree_set(0u32..64, 0..24)
        ) {
            let sa: BTreeSet<FacilityId> = a.iter().map(|x| FacilityId::new(*x)).collect();
            let sb: BTreeSet<FacilityId> = b.iter().map(|x| FacilityId::new(*x)).collect();
            let expected: Vec<FacilityId> = sa.intersection(&sb).copied().collect();
            let fa = FacilitySet::from(&sa);
            let fb = FacilitySet::from(&sb);
            proptest::prop_assert_eq!(fa.intersect(&fb).as_slice(), expected.as_slice());
            proptest::prop_assert_eq!(fb.intersect(&fa).as_slice(), expected.as_slice());
            proptest::prop_assert_eq!(fa.intersection_len(&fb), expected.len());
            proptest::prop_assert_eq!(
                fa.is_subset(&fb),
                sa.is_subset(&sb)
            );
        }
    }
}
