//! The shared error type for the `cfs` workspace.

use core::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors surfaced by the `cfs` crates.
///
/// The workspace keeps a single error enum rather than per-crate error
/// types: the crates form one system and callers almost always handle the
/// union anyway.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A textual value (prefix, IP address, hostname…) failed to parse.
    Parse {
        /// What was being parsed (e.g. `"ipv4 prefix"`).
        what: &'static str,
        /// The offending input.
        input: String,
    },
    /// A referenced entity does not exist in the relevant table.
    NotFound {
        /// The entity kind (e.g. `"facility"`).
        what: &'static str,
        /// A rendering of the missing key.
        key: String,
    },
    /// An operation received structurally invalid input.
    Invalid {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A configuration value is out of its supported range.
    Config {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An address pool or other finite resource was exhausted.
    Exhausted {
        /// The resource that ran out (e.g. `"ixp prefix pool"`).
        what: &'static str,
    },
    /// Wrapper for I/O failures in the experiment harness.
    Io {
        /// Stringified `std::io::Error` (kept stringly so the enum stays
        /// `Clone + Eq` for use in test assertions).
        message: String,
    },
}

impl Error {
    /// Builds a [`Error::Parse`].
    pub fn parse(what: &'static str, input: impl Into<String>) -> Self {
        Self::Parse {
            what,
            input: input.into(),
        }
    }

    /// Builds a [`Error::NotFound`].
    pub fn not_found(what: &'static str, key: impl fmt::Display) -> Self {
        Self::NotFound {
            what,
            key: key.to_string(),
        }
    }

    /// Builds a [`Error::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::Invalid {
            reason: reason.into(),
        }
    }

    /// Builds a [`Error::Config`].
    pub fn config(reason: impl Into<String>) -> Self {
        Self::Config {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { what, input } => write!(f, "failed to parse {what}: {input:?}"),
            Self::NotFound { what, key } => write!(f, "{what} not found: {key}"),
            Self::Invalid { reason } => write!(f, "invalid input: {reason}"),
            Self::Config { reason } => write!(f, "invalid configuration: {reason}"),
            Self::Exhausted { what } => write!(f, "resource exhausted: {what}"),
            Self::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::parse("ipv4 prefix", "10.0.0.0/999");
        assert_eq!(
            e.to_string(),
            "failed to parse ipv4 prefix: \"10.0.0.0/999\""
        );

        let e = Error::not_found("facility", "fac42");
        assert_eq!(e.to_string(), "facility not found: fac42");

        let e = Error::invalid("empty hop list");
        assert_eq!(e.to_string(), "invalid input: empty hop list");

        let e = Error::config("n_facilities must be > 0");
        assert!(e.to_string().contains("n_facilities"));

        let e = Error::Exhausted {
            what: "ixp prefix pool",
        };
        assert!(e.to_string().contains("exhausted"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io { .. }));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::parse("x", "y"), Error::parse("x", "y"));
        assert_ne!(Error::parse("x", "y"), Error::parse("x", "z"));
    }
}
