//! Strongly-typed identifiers for every entity in the model.
//!
//! All identifiers are thin newtypes over `u32` (except [`Asn`], which
//! carries a real 32-bit AS number rather than an arena index). Using
//! distinct types prevents the classic bug of indexing the facility table
//! with a router id, at zero runtime cost.

use core::fmt;

use crate::arena::Idx;

/// Defines an arena-index newtype with the shared boilerplate:
/// construction, `Idx` for arena access, and a `Display` prefix.
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl Idx for $name {
            fn from_usize(i: usize) -> Self {
                Self(u32::try_from(i).expect("arena index exceeds u32"))
            }

            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an interconnection facility (a building, or part of
    /// one, offering colocation — §2 of the paper).
    FacilityId,
    "fac"
);

define_id!(
    /// Identifier of an Internet exchange point. Exchanges operated by the
    /// same company in different metros are distinct entities (e.g.
    /// DE-CIX Frankfurt vs DE-CIX Munich), matching §3.1.2.
    IxpId,
    "ixp"
);

define_id!(
    /// Identifier of a facility *operator* (e.g. an Equinix-like chain).
    /// Facilities of the same operator within a metro are typically
    /// interconnected, which matters for cross-connect reachability.
    OperatorId,
    "op"
);

define_id!(
    /// Identifier of a city in the world table.
    CityId,
    "city"
);

define_id!(
    /// Identifier of a metropolitan area: one or more cities merged by the
    /// paper's 5-mile rule (§3.1.1, e.g. Jersey City + NYC).
    MetroId,
    "metro"
);

define_id!(
    /// Identifier of a country (ISO-normalized).
    CountryId,
    "cc"
);

define_id!(
    /// Identifier of a physical router in the ground-truth topology.
    RouterId,
    "rtr"
);

define_id!(
    /// Identifier of a router interface. Interfaces are the unit the CFS
    /// algorithm resolves to facilities.
    IfaceId,
    "if"
);

define_id!(
    /// Identifier of an IXP switch (core, backhaul, or access — Figure 6).
    SwitchId,
    "sw"
);

define_id!(
    /// Identifier of a ground-truth interconnection (one peering link
    /// between two routers).
    LinkId,
    "lnk"
);

define_id!(
    /// Identifier of a traceroute vantage point on one of the four
    /// measurement platforms (Table 1).
    VantagePointId,
    "vp"
);

/// An autonomous system number.
///
/// Unlike the arena ids above this is a *semantic* number: the actual ASN
/// used in routing, IP-to-ASN mapping and reporting. The topology generator
/// assigns well-known ASNs to the paper's target networks (e.g. 15169 for
/// the Google-like CDN) and synthetic ASNs elsewhere.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// Wraps a raw AS number.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw AS number.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(FacilityId(7).to_string(), "fac7");
        assert_eq!(IxpId(0).to_string(), "ixp0");
        assert_eq!(RouterId(12).to_string(), "rtr12");
        assert_eq!(IfaceId(3).to_string(), "if3");
        assert_eq!(Asn(15169).to_string(), "AS15169");
    }

    #[test]
    fn debug_matches_display() {
        assert_eq!(format!("{:?}", MetroId(4)), "metro4");
        assert_eq!(format!("{:?}", Asn(3356)), "AS3356");
    }

    #[test]
    fn idx_round_trips() {
        let id = FacilityId::from_usize(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, FacilityId::new(42));
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let set: BTreeSet<RouterId> = [RouterId(3), RouterId(1), RouterId(2)]
            .into_iter()
            .collect();
        let ordered: Vec<u32> = set.into_iter().map(RouterId::raw).collect();
        assert_eq!(ordered, vec![1, 2, 3]);
    }

    #[test]
    fn asn_from_u32() {
        assert_eq!(Asn::from(174).raw(), 174);
    }

    #[test]
    #[should_panic(expected = "arena index exceeds u32")]
    fn idx_overflow_panics() {
        let _ = IfaceId::from_usize(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
