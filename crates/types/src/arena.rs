//! A minimal typed arena.
//!
//! Every entity table in the workspace (facilities, routers, interfaces…)
//! is an [`Arena`] indexed by its own id type, so cross-references between
//! tables are plain `u32`-sized copies instead of lifetimes or `Rc` webs.
//! Entities are never removed — the ground-truth topology is immutable once
//! generated — which keeps ids stable for the whole run.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Index, IndexMut};

/// Conversion between an id newtype and a `usize` arena slot.
pub trait Idx: Copy + Eq + Ord + core::hash::Hash + fmt::Debug {
    /// Builds the id for slot `i`.
    fn from_usize(i: usize) -> Self;
    /// Returns the slot this id addresses.
    fn index(self) -> usize;
}

/// A growable table of `T` addressed by the id type `I`.
#[derive(Clone, PartialEq, Eq)]
pub struct Arena<I: Idx, T> {
    items: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: Idx, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty arena with room for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends an entity and returns its id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.items.len());
        self.items.push(value);
        id
    }

    /// Id that the *next* `push` will return. Useful when an entity must
    /// know its own id at construction time.
    pub fn next_id(&self) -> I {
        I::from_usize(self.items.len())
    }

    /// Number of entities stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Immutable access, returning `None` for out-of-range ids (only
    /// possible when an id from a different arena leaks in).
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.index())
    }

    /// Mutable access by id.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.index())
    }

    /// Iterates `(id, &entity)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates `(id, &mut entity)` in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates all ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.items.len()).map(I::from_usize)
    }

    /// Iterates the entities without ids.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

impl<I: Idx, T> Default for Arena<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T> Index<I> for Arena<I, T> {
    type Output = T;

    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<I: Idx, T> IndexMut<I> for Arena<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for Arena<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<I: Idx, T> FromIterator<T> for Arena<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self {
            items: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FacilityId;

    #[test]
    fn push_assigns_sequential_ids() {
        let mut arena: Arena<FacilityId, &str> = Arena::new();
        let a = arena.push("equinix-fr5");
        let b = arena.push("telehouse-north");
        assert_eq!(a, FacilityId(0));
        assert_eq!(b, FacilityId(1));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena[b], "telehouse-north");
    }

    #[test]
    fn next_id_predicts_push() {
        let mut arena: Arena<FacilityId, u8> = Arena::new();
        let predicted = arena.next_id();
        let actual = arena.push(9);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn get_is_safe_out_of_range() {
        let arena: Arena<FacilityId, u8> = Arena::new();
        assert!(arena.get(FacilityId(5)).is_none());
        assert!(arena.is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let arena: Arena<FacilityId, char> = ['a', 'b', 'c'].into_iter().collect();
        let pairs: Vec<(FacilityId, char)> = arena.iter().map(|(i, c)| (i, *c)).collect();
        assert_eq!(
            pairs,
            vec![
                (FacilityId(0), 'a'),
                (FacilityId(1), 'b'),
                (FacilityId(2), 'c')
            ]
        );
        let ids: Vec<FacilityId> = arena.ids().collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut arena: Arena<FacilityId, u32> = [1u32, 2, 3].into_iter().collect();
        for (_, v) in arena.iter_mut() {
            *v *= 10;
        }
        assert_eq!(
            arena.values().copied().collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena: Arena<FacilityId, u32> = [5u32].into_iter().collect();
        *arena.get_mut(FacilityId(0)).unwrap() = 7;
        assert_eq!(arena[FacilityId(0)], 7);
        arena[FacilityId(0)] += 1;
        assert_eq!(arena[FacilityId(0)], 8);
    }
}
