//! Interconnection vocabulary: the peering engineering options of §2 and
//! the traceroute-level classification of §4.2 Step 1.

use core::fmt;

use crate::ids::IxpId;

/// The engineering method used to establish a peering interconnection
/// (§2, Figure 1 / Figure 10 legend).
///
/// This is both a ground-truth attribute of a generated link and the final
/// verdict of the CFS algorithm for an inferred one.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum PeeringKind {
    /// Public peering over an IXP switching fabric, with both routers
    /// physically present at facilities of that IXP ("public local").
    PublicLocal,
    /// Public peering over an IXP fabric where (at least) the classified
    /// side reaches the fabric through a reseller / transport partner and
    /// keeps its router far from any IXP facility ("remote peering", §2).
    PublicRemote,
    /// Private peering over a dedicated cross-connect inside a facility
    /// (or between interconnected facilities of one operator).
    PrivateCrossConnect,
    /// Private point-to-point interconnect tunnelled over an IXP's fabric
    /// as a VLAN ("tethering" / IXP metro VLAN).
    PrivateTethering,
    /// Private interconnect between routers in *different* buildings over
    /// a long-haul circuit — the paper's "remote private peering" outcome
    /// (§4.2 Step 2 case 3), typical for off-net transit delivery.
    PrivateRemote,
}

impl PeeringKind {
    /// Whether the interconnection uses an IXP's public switching fabric
    /// for transport (even when the BGP session itself is private).
    pub fn uses_ixp_fabric(self) -> bool {
        matches!(
            self,
            Self::PublicLocal | Self::PublicRemote | Self::PrivateTethering
        )
    }

    /// Whether the peering session is public (IXP-addressed) as opposed to
    /// a private point-to-point session.
    pub fn is_public(self) -> bool {
        matches!(self, Self::PublicLocal | Self::PublicRemote)
    }

    /// Whether the near-end router must sit in a facility shared with the
    /// counterparty infrastructure (IXP or peer). Remote variants do not.
    pub fn requires_local_presence(self) -> bool {
        matches!(self, Self::PublicLocal | Self::PrivateCrossConnect)
    }

    /// Stable short label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Self::PublicLocal => "public-local",
            Self::PublicRemote => "public-remote",
            Self::PrivateCrossConnect => "private-xconnect",
            Self::PrivateTethering => "private-tethering",
            Self::PrivateRemote => "private-remote",
        }
    }

    /// All kinds, in report order (Figure 10 legend order, then
    /// [`PeeringKind::PrivateRemote`]).
    pub const ALL: [PeeringKind; 5] = [
        Self::PublicLocal,
        Self::PublicRemote,
        Self::PrivateCrossConnect,
        Self::PrivateTethering,
        Self::PrivateRemote,
    ];
}

impl fmt::Display for PeeringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Step-1 classification of a traceroute-observed adjacency (§4.2).
///
/// Traceroute alone can distinguish *public* peering (an intermediate hop
/// from IXP address space) from *private* peering (a direct AS-to-AS hop);
/// refining private into cross-connect vs tethering vs remote, and public
/// into local vs remote, requires the later CFS steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// `(IP_A, IP_e, IP_B)` with `IP_e` in the address space of `ixp`.
    Public {
        /// The IXP whose fabric the middle hop address belongs to.
        ixp: IxpId,
    },
    /// `(IP_A, IP_B)` with no intermediate network.
    Private,
}

impl LinkClass {
    /// The IXP for public classifications, `None` for private.
    pub fn ixp(self) -> Option<IxpId> {
        match self {
            Self::Public { ixp } => Some(ixp),
            Self::Private => None,
        }
    }

    /// Whether this is a public (IXP-mediated) adjacency.
    pub fn is_public(self) -> bool {
        matches!(self, Self::Public { .. })
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Public { ixp } => write!(f, "public({ixp})"),
            Self::Private => f.write_str("private"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_usage_matches_paper_semantics() {
        assert!(PeeringKind::PublicLocal.uses_ixp_fabric());
        assert!(PeeringKind::PublicRemote.uses_ixp_fabric());
        assert!(PeeringKind::PrivateTethering.uses_ixp_fabric());
        assert!(!PeeringKind::PrivateCrossConnect.uses_ixp_fabric());
    }

    #[test]
    fn public_vs_private_session() {
        assert!(PeeringKind::PublicLocal.is_public());
        assert!(PeeringKind::PublicRemote.is_public());
        assert!(!PeeringKind::PrivateCrossConnect.is_public());
        assert!(!PeeringKind::PrivateTethering.is_public());
    }

    #[test]
    fn local_presence_requirements() {
        assert!(PeeringKind::PublicLocal.requires_local_presence());
        assert!(PeeringKind::PrivateCrossConnect.requires_local_presence());
        assert!(!PeeringKind::PublicRemote.requires_local_presence());
        assert!(!PeeringKind::PrivateTethering.requires_local_presence());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<&str> =
            PeeringKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), PeeringKind::ALL.len());
    }

    #[test]
    fn link_class_accessors() {
        let public = LinkClass::Public { ixp: IxpId(3) };
        assert_eq!(public.ixp(), Some(IxpId(3)));
        assert!(public.is_public());
        assert_eq!(public.to_string(), "public(ixp3)");

        let private = LinkClass::Private;
        assert_eq!(private.ixp(), None);
        assert!(!private.is_public());
        assert_eq!(private.to_string(), "private");
    }
}
