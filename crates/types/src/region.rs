//! World regions, matching the regional breakdown used throughout the
//! paper (§3.1.2 facility counts, Figure 10 columns).

use core::fmt;

/// A world region. The facility dataset of §3.1.2 is reported in exactly
/// these six buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// North America (paper: 503 of 1,694 facilities).
    NorthAmerica,
    /// Europe (paper: 860 facilities — the densest region).
    Europe,
    /// Asia (paper: 143 facilities).
    Asia,
    /// Oceania (paper: 84 facilities).
    Oceania,
    /// South America (paper: 73 facilities).
    SouthAmerica,
    /// Africa (paper: 31 facilities).
    Africa,
}

impl Region {
    /// All regions in the paper's report order.
    pub const ALL: [Region; 6] = [
        Self::NorthAmerica,
        Self::Europe,
        Self::Asia,
        Self::Oceania,
        Self::SouthAmerica,
        Self::Africa,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::NorthAmerica => "north-america",
            Self::Europe => "europe",
            Self::Asia => "asia",
            Self::Oceania => "oceania",
            Self::SouthAmerica => "south-america",
            Self::Africa => "africa",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_regions_in_paper_order() {
        assert_eq!(Region::ALL.len(), 6);
        assert_eq!(Region::ALL[0], Region::NorthAmerica);
        assert_eq!(Region::ALL[1], Region::Europe);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::BTreeSet<&str> =
            Region::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
