//! Business classification of autonomous systems.
//!
//! The paper's evaluation (§5, Figure 10) contrasts the peering strategies
//! of content/CDN networks against large transit providers; the topology
//! generator uses the class to shape an AS's footprint (how many facilities
//! and IXPs it joins, in how many regions) and its peering policy.

use core::fmt;

/// The business type of an autonomous system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsClass {
    /// Global transit-free backbone (Level3-, NTT-, Telia-like). Large
    /// private-interconnect footprint, selective public peering.
    Tier1,
    /// Regional or national transit provider: sells transit, peers at the
    /// bigger exchanges in its footprint.
    Transit,
    /// Content delivery network (Google-, Akamai-, Cloudflare-like):
    /// very wide public-peering footprint, open policy, many IXPs.
    Cdn,
    /// Content owner / hoster without a global delivery fabric.
    Content,
    /// Eyeball / access network serving end users; hosts most vantage
    /// points of home-probe platforms such as RIPE Atlas.
    Access,
    /// Enterprise edge network; small footprint, mostly buys transit.
    Enterprise,
    /// IXP port reseller / transport partner enabling remote peering (§2).
    Reseller,
}

impl AsClass {
    /// All classes in a stable report order.
    pub const ALL: [AsClass; 7] = [
        Self::Tier1,
        Self::Transit,
        Self::Cdn,
        Self::Content,
        Self::Access,
        Self::Enterprise,
        Self::Reseller,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Tier1 => "tier1",
            Self::Transit => "transit",
            Self::Cdn => "cdn",
            Self::Content => "content",
            Self::Access => "access",
            Self::Enterprise => "enterprise",
            Self::Reseller => "reseller",
        }
    }

    /// Whether this class sells transit (used when generating the
    /// customer-provider AS relationship graph).
    pub fn sells_transit(self) -> bool {
        matches!(self, Self::Tier1 | Self::Transit | Self::Reseller)
    }

    /// Whether networks of this class typically operate infrastructure in
    /// several world regions.
    pub fn is_global(self) -> bool {
        matches!(self, Self::Tier1 | Self::Cdn)
    }
}

impl fmt::Display for AsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique_and_lowercase() {
        let labels: std::collections::BTreeSet<&str> =
            AsClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AsClass::ALL.len());
        for l in labels {
            assert_eq!(l, l.to_lowercase());
        }
    }

    #[test]
    fn transit_sellers() {
        assert!(AsClass::Tier1.sells_transit());
        assert!(AsClass::Transit.sells_transit());
        assert!(!AsClass::Cdn.sells_transit());
        assert!(!AsClass::Access.sells_transit());
    }

    #[test]
    fn global_classes() {
        assert!(AsClass::Tier1.is_global());
        assert!(AsClass::Cdn.is_global());
        assert!(!AsClass::Enterprise.is_global());
    }

    #[test]
    fn display_matches_label() {
        for class in AsClass::ALL {
            assert_eq!(class.to_string(), class.label());
        }
    }
}
