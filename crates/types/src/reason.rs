//! Why an interface failed to pin to a single facility.
//!
//! The search always emits a verdict; when the verdict is anything other
//! than *resolved*, this taxonomy says what starved it (DESIGN.md §9).
//! Reasons describe **observable symptoms** — the search cannot tell a
//! stale database from an honest gap, so the vocabulary never mentions
//! injected faults.

use std::fmt;

/// The typed reason attached to an unresolved interface verdict.
///
/// `Ord` so tallies can live in `BTreeMap`s (deterministic iteration,
/// like every map in a library path). Serializes as the variant name;
/// [`UnresolvedReason::code`] is the snake_case form used for tally
/// keys and human-facing output.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum UnresolvedReason {
    /// The knowledge base had no facility footprint at all for the owner
    /// or the exchange — nothing to intersect.
    NoFacilityData,
    /// Footprints existed but never overlapped, even after widening to
    /// metro-level candidates.
    EmptyIntersection,
    /// Constraints contradicted each other; the conflicting evidence was
    /// dropped rather than intersected.
    ConstraintConflict,
    /// The probe retry budget ran dry before the measurements this
    /// interface needed could land.
    ProbeExhausted,
    /// The remote-peering test never produced a verdict (no responsive
    /// vantage point near the exchange).
    RemoteInconclusive,
    /// The search converged but more than one candidate facility
    /// remained.
    AmbiguousCandidates,
    /// The interface peers remotely: its router sits outside the
    /// exchange's metro, so no local facility applies.
    RemotePeer,
    /// The sources backing the winning facility disagreed too much to
    /// trust: the pin was refused rather than risk a confident wrong
    /// answer (contested provenance after cross-source reconciliation).
    ContestedProvenance,
}

impl UnresolvedReason {
    /// Stable snake_case code, matching the serialized form.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            Self::NoFacilityData => "no_facility_data",
            Self::EmptyIntersection => "empty_intersection",
            Self::ConstraintConflict => "constraint_conflict",
            Self::ProbeExhausted => "probe_exhausted",
            Self::RemoteInconclusive => "remote_inconclusive",
            Self::AmbiguousCandidates => "ambiguous_candidates",
            Self::RemotePeer => "remote_peer",
            Self::ContestedProvenance => "contested_provenance",
        }
    }
}

impl fmt::Display for UnresolvedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_serde() {
        for r in [
            UnresolvedReason::NoFacilityData,
            UnresolvedReason::EmptyIntersection,
            UnresolvedReason::ConstraintConflict,
            UnresolvedReason::ProbeExhausted,
            UnresolvedReason::RemoteInconclusive,
            UnresolvedReason::AmbiguousCandidates,
            UnresolvedReason::RemotePeer,
            UnresolvedReason::ContestedProvenance,
        ] {
            let json = serde_json::to_string(&r).unwrap();
            assert_eq!(json, format!("\"{r:?}\""));
            let back: UnresolvedReason = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
            assert!(r.code().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
