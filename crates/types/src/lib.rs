//! # cfs-types
//!
//! Fundamental identifiers and domain vocabulary shared by every crate in
//! the `cfs` workspace — the Rust reproduction of *"Mapping Peering
//! Interconnections to a Facility"* (CoNEXT 2015).
//!
//! The workspace models the entities of the interdomain peering ecosystem:
//! autonomous systems ([`Asn`]), colocation facilities ([`FacilityId`]),
//! Internet exchange points ([`IxpId`]), routers and their interfaces
//! ([`RouterId`], [`IfaceId`]), and the geography they live in
//! ([`CityId`], [`MetroId`], [`Region`]).
//!
//! Everything here is deliberately small and dependency-free: plain-old-data
//! newtypes over integers, a typed [`arena`] for storing
//! entities, and the shared [`Error`] type.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
mod asclass;
mod error;
mod facset;
mod ids;
mod peering;
mod reason;
mod region;
mod rel;

pub use arena::{Arena, Idx};
pub use asclass::AsClass;
pub use error::{Error, Result};
pub use facset::{FacilitySet, FacilitySetInterner};
pub use ids::{
    Asn, CityId, CountryId, FacilityId, IfaceId, IxpId, LinkId, MetroId, OperatorId, RouterId,
    SwitchId, VantagePointId,
};
pub use peering::{LinkClass, PeeringKind};
pub use reason::UnresolvedReason;
pub use region::Region;
pub use rel::Rel;
