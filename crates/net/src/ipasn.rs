//! The IP→ASN mapping service — our stand-in for Team Cymru's service
//! (§4.1), which "utilizes multiple BGP sources" and answers
//! longest-prefix-match queries from announced prefixes to origin ASNs.
//!
//! The database is *faithfully wrong* in the ways the paper discusses:
//! callers feed it the announcements as BGP sees them, and an address used
//! on a neighbour's router (a point-to-point /31 allocated from the other
//! peer's space) or shared between siblings maps to the announcing AS, not
//! the AS operating the interface. Correcting those errors is the job of
//! alias-resolution majority voting in `cfs-alias`, exactly as in the
//! paper.

use std::net::Ipv4Addr;

use cfs_types::Asn;

use crate::prefix::Ipv4Prefix;
use crate::trie::PrefixTrie;

/// One BGP announcement: a prefix and its origin AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Ipv4Prefix,
    /// The origin AS as seen in BGP.
    pub origin: Asn,
}

/// Longest-prefix-match IP→ASN database.
#[derive(Clone, Debug, Default)]
pub struct IpAsnDb {
    trie: PrefixTrie<Asn>,
}

impl IpAsnDb {
    /// Builds the database from a set of announcements. When the same
    /// prefix is announced by several origins (MOAS), the last announcement
    /// wins — matching the "one answer per query" behaviour of the
    /// Cymru-style service.
    pub fn from_announcements<I: IntoIterator<Item = Announcement>>(announcements: I) -> Self {
        let mut trie = PrefixTrie::new();
        for a in announcements {
            trie.insert(a.prefix, a.origin);
        }
        Self { trie }
    }

    /// Adds or replaces a single announcement.
    pub fn announce(&mut self, prefix: Ipv4Prefix, origin: Asn) {
        self.trie.insert(prefix, origin);
    }

    /// Maps an address to the origin AS of its most specific covering
    /// prefix, with that prefix. `None` for unrouted space (the paper's
    /// "unresolved" interfaces).
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, Asn)> {
        self.trie.longest_match(ip).map(|(p, asn)| (p, *asn))
    }

    /// Maps an address to an origin AS, dropping the matched prefix.
    pub fn origin(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.lookup(ip).map(|(_, asn)| asn)
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_uses_longest_match() {
        let db = IpAsnDb::from_announcements([
            Announcement {
                prefix: pfx("10.0.0.0/8"),
                origin: Asn(100),
            },
            Announcement {
                prefix: pfx("10.5.0.0/16"),
                origin: Asn(200),
            },
        ]);
        assert_eq!(db.origin(ip("10.5.1.1")), Some(Asn(200)));
        assert_eq!(db.origin(ip("10.6.1.1")), Some(Asn(100)));
        assert_eq!(db.origin(ip("11.0.0.1")), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn lookup_reports_matched_prefix() {
        let db = IpAsnDb::from_announcements([Announcement {
            prefix: pfx("192.0.2.0/24"),
            origin: Asn(64512),
        }]);
        let (p, asn) = db.lookup(ip("192.0.2.7")).unwrap();
        assert_eq!(p, pfx("192.0.2.0/24"));
        assert_eq!(asn, Asn(64512));
    }

    #[test]
    fn moas_last_announcement_wins() {
        let mut db = IpAsnDb::default();
        db.announce(pfx("10.0.0.0/8"), Asn(1));
        db.announce(pfx("10.0.0.0/8"), Asn(2));
        assert_eq!(db.origin(ip("10.0.0.1")), Some(Asn(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn ptp_address_maps_to_allocating_as_not_operator() {
        // The documented pitfall: a /31 allocated from AS A's space but
        // configured on AS B's router maps to A.
        let db = IpAsnDb::from_announcements([Announcement {
            prefix: pfx("10.0.0.0/8"), // AS A's aggregate
            origin: Asn(100),
        }]);
        let b_side_of_ptp = ip("10.0.0.1");
        assert_eq!(db.origin(b_side_of_ptp), Some(Asn(100)));
    }

    #[test]
    fn empty_db() {
        let db = IpAsnDb::default();
        assert!(db.is_empty());
        assert_eq!(db.origin(ip("8.8.8.8")), None);
    }
}
