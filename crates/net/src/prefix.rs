//! CIDR prefixes over IPv4.

use core::fmt;
use core::str::FromStr;
use std::net::Ipv4Addr;

use cfs_types::{Error, Result};

/// An IPv4 CIDR prefix. The stored address is always masked to the prefix
/// length, so two equal prefixes compare equal regardless of how they were
/// written (`10.0.0.1/8 == 10.0.0.0/8`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    /// Network base address as a big-endian integer, masked.
    addr: u32,
    /// Prefix length, `0..=32`.
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(Error::invalid(format!("prefix length {len} > 32")));
        }
        Ok(Self {
            addr: u32::from(addr) & mask(len),
            len,
        })
    }

    /// Infallible constructor for compile-time-known prefixes; panics on
    /// `len > 32` (programmer error, not input error).
    pub fn must(addr: [u8; 4], len: u8) -> Self {
        Self::new(Ipv4Addr::from(addr), len).expect("static prefix must be valid")
    }

    /// The (masked) network base address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The prefix length in bits.
    // A mask length, not a container size; `is_empty` would be meaningless.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// The last address covered by the prefix.
    pub fn last(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr | !mask(self.len))
    }

    /// Number of addresses covered (2^(32-len); saturates at `u64` width,
    /// which is exact for IPv4).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & mask(self.len) == self.addr
    }

    /// Whether `other` is entirely inside this prefix (or equal).
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & mask(self.len)) == self.addr
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th address in the prefix (0 = network base).
    ///
    /// Returns an error when `i` is outside the prefix.
    pub fn nth(self, i: u64) -> Result<Ipv4Addr> {
        if i >= self.size() {
            return Err(Error::invalid(format!("address index {i} outside {self}")));
        }
        Ok(Ipv4Addr::from(
            self.addr + u32::try_from(i).expect("bounded by size"),
        ))
    }

    /// Splits into consecutive sub-prefixes of length `sublen`.
    ///
    /// Returns an error if `sublen` is shorter than `self.len` or > 32.
    pub fn subnets(self, sublen: u8) -> Result<impl Iterator<Item = Ipv4Prefix>> {
        if sublen > 32 || sublen < self.len {
            return Err(Error::invalid(format!(
                "cannot split {self} into /{sublen}"
            )));
        }
        let count = 1u64 << (sublen - self.len);
        let step = 1u64 << (32 - sublen);
        let base = u64::from(self.addr);
        Ok((0..count).map(move |i| Ipv4Prefix {
            addr: u32::try_from(base + i * step).expect("within ipv4 space"),
            len: sublen,
        }))
    }

    /// The leading `self.len` bits, MSB-first, as 0/1 values — the trie key.
    pub(crate) fn bits(self) -> impl Iterator<Item = u8> {
        let addr = self.addr;
        (0..self.len).map(move |i| ((addr >> (31 - u32::from(i))) & 1) as u8)
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

// Prefixes serialize in their display form ("10.0.0.0/8") so JSON
// snapshots stay hand-editable.
impl serde::Serialize for Ipv4Prefix {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for Ipv4Prefix {
    fn from_value(v: &serde::Value) -> core::result::Result<Self, serde::Error> {
        let s = <String as serde::Deserialize>::from_value(v)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| Error::parse("ipv4 prefix", s))?;
        let addr: Ipv4Addr = addr_s.parse().map_err(|_| Error::parse("ipv4 prefix", s))?;
        let len: u8 = len_s.parse().map_err(|_| Error::parse("ipv4 prefix", s))?;
        Self::new(addr, len).map_err(|_| Error::parse("ipv4 prefix", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "203.0.113.7/32"] {
            assert_eq!(pfx(s).to_string(), s);
        }
    }

    #[test]
    fn constructor_masks_host_bits() {
        assert_eq!(pfx("10.1.2.3/8"), pfx("10.0.0.0/8"));
        assert_eq!(pfx("10.1.2.3/8").to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "10.0.0.0",
            "10.0.0.0/33",
            "10.0.0/8",
            "banana/8",
            "10.0.0.0/x",
            "",
        ] {
            assert!(s.parse::<Ipv4Prefix>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn contains_boundaries() {
        let p = pfx("192.0.2.0/24");
        assert!(p.contains("192.0.2.0".parse().unwrap()));
        assert!(p.contains("192.0.2.255".parse().unwrap()));
        assert!(!p.contains("192.0.3.0".parse().unwrap()));
        assert!(!p.contains("192.0.1.255".parse().unwrap()));
    }

    #[test]
    fn default_route_contains_everything() {
        let all = pfx("0.0.0.0/0");
        assert!(all.contains("255.255.255.255".parse().unwrap()));
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn covers_and_overlaps() {
        let a = pfx("10.0.0.0/8");
        let b = pfx("10.1.0.0/16");
        let c = pfx("11.0.0.0/8");
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert!(a.covers(a));
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn nth_and_last() {
        let p = pfx("192.0.2.0/30");
        assert_eq!(p.nth(0).unwrap().to_string(), "192.0.2.0");
        assert_eq!(p.nth(3).unwrap().to_string(), "192.0.2.3");
        assert!(p.nth(4).is_err());
        assert_eq!(p.last().to_string(), "192.0.2.3");
    }

    #[test]
    fn subnets_enumerate_in_order() {
        let p = pfx("192.0.2.0/24");
        let subs: Vec<String> = p.subnets(26).unwrap().map(|s| s.to_string()).collect();
        assert_eq!(
            subs,
            vec![
                "192.0.2.0/26",
                "192.0.2.64/26",
                "192.0.2.128/26",
                "192.0.2.192/26"
            ]
        );
        assert!(p.subnets(8).is_err());
        assert_eq!(p.subnets(24).unwrap().count(), 1);
    }

    #[test]
    fn bits_msb_first() {
        let p = pfx("128.0.0.0/2");
        assert_eq!(p.bits().collect::<Vec<_>>(), vec![1, 0]);
        let p = pfx("192.0.0.0/3");
        assert_eq!(p.bits().collect::<Vec<_>>(), vec![1, 1, 0]);
        assert_eq!(pfx("0.0.0.0/0").bits().count(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_parse_display_round_trip(addr in proptest::arbitrary::any::<u32>(), len in 0u8..=32) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(addr), len).unwrap();
            let back: Ipv4Prefix = p.to_string().parse().unwrap();
            proptest::prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_network_and_last_are_contained(addr in proptest::arbitrary::any::<u32>(), len in 0u8..=32) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(addr), len).unwrap();
            proptest::prop_assert!(p.contains(p.network()));
            proptest::prop_assert!(p.contains(p.last()));
        }

        #[test]
        fn prop_subnets_partition(addr in proptest::arbitrary::any::<u32>(), len in 8u8..=24) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(addr), len).unwrap();
            let sublen = len + 4;
            let subs: Vec<Ipv4Prefix> = p.subnets(sublen).unwrap().collect();
            proptest::prop_assert_eq!(subs.len(), 16);
            let total: u64 = subs.iter().map(|s| s.size()).sum();
            proptest::prop_assert_eq!(total, p.size());
            for w in subs.windows(2) {
                proptest::prop_assert!(!w[0].overlaps(w[1]));
                proptest::prop_assert!(u32::from(w[0].last()) + 1 == u32::from(w[1].network()));
            }
            for s in &subs {
                proptest::prop_assert!(p.covers(*s));
            }
        }
    }
}
