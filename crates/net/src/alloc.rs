//! Deterministic address allocation for the topology generator.
//!
//! The generator needs two kinds of allocation: carving subnets out of a
//! pool (AS prefixes out of the synthetic "global table", IXP peering LANs
//! out of the IXP pool, point-to-point /31s out of an AS's space), and
//! handing out individual host addresses inside a subnet (IXP fabric
//! addresses, router interfaces).

use std::net::Ipv4Addr;

use cfs_types::{Error, Result};

use crate::prefix::Ipv4Prefix;

/// Carves consecutive, non-overlapping subnets of a fixed length out of a
/// pool prefix.
#[derive(Clone, Debug)]
pub struct SubnetAllocator {
    pool: Ipv4Prefix,
    sublen: u8,
    next: u64,
    count: u64,
}

impl SubnetAllocator {
    /// Creates an allocator handing out `/sublen` subnets of `pool`.
    pub fn new(pool: Ipv4Prefix, sublen: u8) -> Result<Self> {
        if sublen > 32 || sublen < pool.len() {
            return Err(Error::invalid(format!(
                "cannot carve /{sublen} out of {pool}"
            )));
        }
        Ok(Self {
            pool,
            sublen,
            next: 0,
            count: 1u64 << (sublen - pool.len()),
        })
    }

    /// Allocates the next subnet, or errors when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<Ipv4Prefix> {
        if self.next >= self.count {
            return Err(Error::Exhausted {
                what: "subnet pool",
            });
        }
        let step = 1u64 << (32 - self.sublen);
        let base = u64::from(u32::from(self.pool.network())) + self.next * step;
        self.next += 1;
        Ipv4Prefix::new(
            Ipv4Addr::from(u32::try_from(base).expect("inside ipv4 space")),
            self.sublen,
        )
    }

    /// How many subnets remain.
    pub fn remaining(&self) -> u64 {
        self.count - self.next
    }
}

/// Hands out individual host addresses inside one subnet, skipping the
/// network base address (kept unused, as routers conventionally do).
#[derive(Clone, Debug)]
pub struct HostAllocator {
    subnet: Ipv4Prefix,
    next: u64,
}

impl HostAllocator {
    /// Creates an allocator over `subnet`. The first address handed out is
    /// `.1` (base + 1).
    pub fn new(subnet: Ipv4Prefix) -> Self {
        Self { subnet, next: 1 }
    }

    /// Allocates the next host address, or errors when the subnet is full.
    /// The last address of the subnet (broadcast in classic terms) is not
    /// handed out.
    pub fn alloc(&mut self) -> Result<Ipv4Addr> {
        if self.next + 1 >= self.subnet.size() {
            return Err(Error::Exhausted {
                what: "host addresses",
            });
        }
        let ip = self.subnet.nth(self.next)?;
        self.next += 1;
        Ok(ip)
    }

    /// The subnet being allocated from.
    pub fn subnet(&self) -> Ipv4Prefix {
        self.subnet
    }

    /// How many host addresses remain.
    pub fn remaining(&self) -> u64 {
        (self.subnet.size() - 1).saturating_sub(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn subnets_are_consecutive_and_disjoint() {
        let mut a = SubnetAllocator::new(pfx("10.0.0.0/8"), 16).unwrap();
        let first = a.alloc().unwrap();
        let second = a.alloc().unwrap();
        assert_eq!(first.to_string(), "10.0.0.0/16");
        assert_eq!(second.to_string(), "10.1.0.0/16");
        assert!(!first.overlaps(second));
        assert_eq!(a.remaining(), 254);
    }

    #[test]
    fn subnet_pool_exhausts() {
        let mut a = SubnetAllocator::new(pfx("192.0.2.0/24"), 26).unwrap();
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert!(matches!(a.alloc(), Err(Error::Exhausted { .. })));
    }

    #[test]
    fn invalid_carve_rejected() {
        assert!(SubnetAllocator::new(pfx("10.0.0.0/16"), 8).is_err());
        assert!(SubnetAllocator::new(pfx("10.0.0.0/16"), 33).is_err());
    }

    #[test]
    fn hosts_skip_network_and_broadcast() {
        let mut h = HostAllocator::new(pfx("192.0.2.0/30"));
        assert_eq!(h.alloc().unwrap().to_string(), "192.0.2.1");
        assert_eq!(h.alloc().unwrap().to_string(), "192.0.2.2");
        assert!(h.alloc().is_err(), ".3 is broadcast, .0 is base");
    }

    #[test]
    fn host_remaining_counts_down() {
        let mut h = HostAllocator::new(pfx("192.0.2.0/29")); // 8 addrs, 6 usable
        assert_eq!(h.remaining(), 6);
        h.alloc().unwrap();
        assert_eq!(h.remaining(), 5);
    }

    #[test]
    fn all_hosts_inside_subnet() {
        let subnet = pfx("198.51.100.0/28");
        let mut h = HostAllocator::new(subnet);
        while let Ok(ip) = h.alloc() {
            assert!(subnet.contains(ip));
        }
    }
}
