//! A binary radix trie keyed by IPv4 prefixes.
//!
//! One bit per level, arena-allocated nodes, no unsafe and no compression:
//! simplicity and robustness over raw speed (lookups are still tens of
//! nanoseconds, far below anything this workspace needs — see the
//! `trie_lookup` microbench).

use std::net::Ipv4Addr;

use crate::prefix::Ipv4Prefix;

#[derive(Clone, Debug)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Self {
            children: [None, None],
            value: None,
        }
    }
}

/// A map from [`Ipv4Prefix`] to `V` supporting exact and longest-prefix
/// lookups.
#[derive(Clone, Debug)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `prefix` → `value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = 0usize;
        for bit in prefix.bits() {
            let slot = bit as usize;
            node = match self.nodes[node].children[slot] {
                Some(next) => next as usize,
                None => {
                    self.nodes.push(Node::new());
                    let next = self.nodes.len() - 1;
                    self.nodes[node].children[slot] = Some(next as u32);
                    next
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value stored for exactly `prefix`, if any.
    pub fn exact(&self, prefix: Ipv4Prefix) -> Option<&V> {
        let mut node = 0usize;
        for bit in prefix.bits() {
            node = self.nodes[node].children[bit as usize]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Removes `prefix`, returning its value. Nodes are not reclaimed
    /// (tries in this workspace are build-once), only emptied.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<V> {
        let mut node = 0usize;
        for bit in prefix.bits() {
            node = self.nodes[node].children[bit as usize]? as usize;
        }
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match for `ip`: the most specific stored prefix
    /// containing the address, with its value.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, &V)> {
        let addr = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &V)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let bit = ((addr >> (31 - u32::from(depth))) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            let p = Ipv4Prefix::new(ip, len).expect("len <= 32");
            (p, v)
        })
    }

    /// All stored `(prefix, &value)` pairs in lexicographic (trie) order.
    pub fn iter(&self) -> Vec<(Ipv4Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)]; // node, path, depth
        while let Some((node, path, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                let addr = if depth == 0 {
                    0
                } else {
                    path << (32 - u32::from(depth))
                };
                let p = Ipv4Prefix::new(Ipv4Addr::from(addr), depth).expect("depth <= 32");
                out.push((p, v));
            }
            // Push right child first so the left (0 bit) pops first.
            if let Some(next) = self.nodes[node].children[1] {
                stack.push((next as usize, (path << 1) | 1, depth + 1));
            }
            if let Some(next) = self.nodes[node].children[0] {
                stack.push((next as usize, path << 1, depth + 1));
            }
        }
        out
    }
}

impl<V> FromIterator<(Ipv4Prefix, V)> for PrefixTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, V)>>(iter: I) -> Self {
        let mut trie = Self::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_exact_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(pfx("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.exact(pfx("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.exact(pfx("10.0.0.0/9")), None);
        assert_eq!(t.remove(pfx("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(pfx("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 8);
        t.insert(pfx("10.1.0.0/16"), 16);
        t.insert(pfx("10.1.2.0/24"), 24);

        assert_eq!(
            t.longest_match(ip("10.1.2.3"))
                .map(|(p, v)| (p.to_string(), *v)),
            Some(("10.1.2.0/24".to_string(), 24))
        );
        assert_eq!(t.longest_match(ip("10.1.9.9")).unwrap().1, &16);
        assert_eq!(t.longest_match(ip("10.9.9.9")).unwrap().1, &8);
        assert_eq!(t.longest_match(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("0.0.0.0/0"), "default");
        t.insert(pfx("192.0.2.0/24"), "specific");
        assert_eq!(t.longest_match(ip("8.8.8.8")).unwrap().1, &"default");
        assert_eq!(t.longest_match(ip("192.0.2.9")).unwrap().1, &"specific");
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("192.0.2.1/32"), ());
        assert!(t.longest_match(ip("192.0.2.1")).is_some());
        assert!(t.longest_match(ip("192.0.2.2")).is_none());
    }

    #[test]
    fn iter_returns_all_inserted() {
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0"];
        let t: PrefixTrie<usize> = prefixes
            .iter()
            .enumerate()
            .map(|(i, s)| (pfx(s), i))
            .collect();
        let got: std::collections::BTreeSet<String> =
            t.iter().into_iter().map(|(p, _)| p.to_string()).collect();
        let want: std::collections::BTreeSet<String> =
            prefixes.iter().map(|s| s.to_string()).collect();
        assert_eq!(got, want);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn removal_reexposes_covering_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), "short");
        t.insert(pfx("10.1.0.0/16"), "long");
        assert_eq!(t.longest_match(ip("10.1.0.1")).unwrap().1, &"long");
        t.remove(pfx("10.1.0.0/16"));
        assert_eq!(t.longest_match(ip("10.1.0.1")).unwrap().1, &"short");
    }

    proptest::proptest! {
        /// Longest-prefix match agrees with a naive linear scan.
        #[test]
        fn prop_lpm_matches_linear_scan(
            entries in proptest::collection::btree_map(
                (proptest::arbitrary::any::<u32>(), 0u8..=32),
                proptest::arbitrary::any::<u16>(),
                0..50
            ),
            probes in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 0..50)
        ) {
            let norm: Vec<(Ipv4Prefix, u16)> = entries
                .iter()
                .map(|((addr, len), v)| (Ipv4Prefix::new(Ipv4Addr::from(*addr), *len).unwrap(), *v))
                .collect();
            let trie: PrefixTrie<u16> = norm.iter().copied().collect();

            for probe in probes {
                let addr = Ipv4Addr::from(probe);
                let expect = norm
                    .iter()
                    .filter(|(p, _)| p.contains(addr))
                    .max_by_key(|(p, _)| p.len())
                    .map(|(p, v)| (*p, *v));
                let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
                // Note: duplicate prefixes in `norm` collapse to the last
                // value inserted; the BTreeMap input already de-duplicates.
                proptest::prop_assert_eq!(got, expect);
            }
        }

        /// Every inserted prefix is found exactly and listed by iter().
        #[test]
        fn prop_exact_and_iter_complete(
            entries in proptest::collection::btree_map(
                (proptest::arbitrary::any::<u32>(), 0u8..=32),
                proptest::arbitrary::any::<u16>(),
                0..60
            )
        ) {
            let norm: std::collections::BTreeMap<Ipv4Prefix, u16> = entries
                .iter()
                .map(|((addr, len), v)| (Ipv4Prefix::new(Ipv4Addr::from(*addr), *len).unwrap(), *v))
                .collect();
            let trie: PrefixTrie<u16> = norm.iter().map(|(p, v)| (*p, *v)).collect();
            proptest::prop_assert_eq!(trie.len(), norm.len());
            for (p, v) in &norm {
                proptest::prop_assert_eq!(trie.exact(*p), Some(v));
            }
            let listed: std::collections::BTreeMap<Ipv4Prefix, u16> =
                trie.iter().into_iter().map(|(p, v)| (p, *v)).collect();
            proptest::prop_assert_eq!(listed, norm);
        }
    }
}
