//! # cfs-net
//!
//! IPv4 address-plan machinery for the `cfs` workspace:
//!
//! * [`Ipv4Prefix`] — a CIDR prefix with parsing, containment and
//!   subnetting;
//! * [`PrefixTrie`] — a binary radix trie supporting longest-prefix-match
//!   lookups, the core of IP-to-ASN mapping and IXP-prefix detection;
//! * [`SubnetAllocator`] / [`HostAllocator`] — deterministic address
//!   allocation for the topology generator;
//! * [`IpAsnDb`] — the Team-Cymru-substitute IP→ASN service of §4.1,
//!   built from (synthetic) BGP announcements.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod alloc;
mod ipasn;
mod prefix;
mod trie;

pub use alloc::{HostAllocator, SubnetAllocator};
pub use ipasn::{Announcement, IpAsnDb};
pub use prefix::Ipv4Prefix;
pub use trie::PrefixTrie;
