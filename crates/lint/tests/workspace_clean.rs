//! Tier-1 gate: the workspace's own sources carry zero lint findings.
//!
//! This is the enforcement half of DESIGN.md §6 — the invariants the
//! parallel CFS core rests on (deterministic iteration, virtual time,
//! seeded RNG, no ambient threads, panic-free library code) regress at
//! CI time, not as flaky figure diffs three PRs later.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = cfs_lint::find_workspace_root(manifest).expect("workspace root above crates/lint");
    let findings = cfs_lint::check_workspace(&root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "cfs-lint found invariant violations — fix them or add a justified \
         `// cfs-lint: allow(<rule>)`:\n{}",
        cfs_lint::render_human(&findings, 0)
    );
}

#[test]
fn rule_catalog_is_sorted_and_unique() {
    // The catalog is the contract (`cfs-lint rules`, DESIGN.md §6);
    // keep it alphabetical so diffs stay reviewable.
    let names: Vec<&str> = cfs_lint::RULES.iter().map(|r| r.name).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(names, sorted);
}
