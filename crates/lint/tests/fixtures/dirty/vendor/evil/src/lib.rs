// Fixture: `vendor-surface` must fire twice — a vendored stub that
// smuggles ambient entropy and wall time under the workspace rules.
pub fn seed() -> u64 {
    let mut r = thread_rng();
    r.next_u64()
}

pub fn stamp_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}
