// Fixture: `raw-sleep` must fire on both blocking-wait forms.
pub fn wait_for_probe(d: std::time::Duration) {
    std::thread::sleep(d);
    while !probe_landed() {
        std::hint::spin_loop();
    }
}
