// Fixture: request builders that drifted from the authority — a stale
// schema tag, an op the parser rejects, and an unknown delta kind.
// Three api-drift findings, one per literal below.
pub fn requests() -> Vec<String> {
    vec![
        "{\"schema\":\"cfs-api/8\",\"op\":\"status\"}".to_owned(),
        "{\"op\":\"frobnicate\"}".to_owned(),
        "{\"op\":\"query\",\"kind\":\"vp-status\"}".to_owned(),
    ]
}
