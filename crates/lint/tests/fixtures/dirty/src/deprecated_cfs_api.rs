// Fixture: `deprecated-cfs-api` must fire on both shim call sites.
pub fn build_search<'a>(deps: &'a Deps) -> Cfs<'a> {
    let cfs = Cfs::new(&deps.engine, &deps.vps, &deps.kb, &deps.ipasn, Default::default());
    cfs.restrict_platforms(&[Platform::Ark])
}
