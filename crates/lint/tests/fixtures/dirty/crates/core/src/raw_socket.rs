// Fixture: `raw-socket` must fire — socket I/O is single-homed in
// `crates/svc`; everything else speaks cfs-api/1 through the client.
use std::net::TcpListener;

pub fn listen(addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let (stream, _) = listener.accept()?;
    drop(stream);
    Ok(())
}
