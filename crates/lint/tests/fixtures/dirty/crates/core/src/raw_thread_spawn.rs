// Fixture: `raw-thread-spawn` must fire — fan-out goes through the
// scoped worker pool so merges stay in submission order.
pub fn fan_out(xs: Vec<u32>) -> Vec<std::thread::JoinHandle<u32>> {
    xs.into_iter()
        .map(|x| std::thread::spawn(move || x * 2))
        .collect()
}
