// Fixture: `unordered-iteration` must fire on hashed containers in
// library code. Not compiled — scanned by self_test.rs.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for x in xs {
        *counts.entry(*x).or_default() += 1;
    }
    counts.into_iter().collect() // iteration order leaks into the result
}
