// Fixture: `unused-allow` must fire when a justified directive names a
// real rule but its target line carries no such finding — the directive
// is stale and hides nothing.
pub fn spotless() {
    let x = 1; // cfs-lint: allow(wall-clock) — stale: nothing here reads the clock
    let _ = x;
}
