// Fixture: `wall-clock` must fire on real-time reads in non-bench code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
