// Fixture: `unjustified-allow` must fire twice — a suppression with no
// justification text, and one naming a rule that does not exist. The
// bare allow still suppresses its wall-clock finding (the directive
// works; its missing justification is the finding).
pub fn sloppy() {
    let _t = std::time::Instant::now(); // cfs-lint: allow(wall-clock)
}

// cfs-lint: allow(no-such-rule) — the rule name is wrong on purpose
pub fn misnamed() {}
