// Fixture: `determinism-race` must fire five times inside the worker
// closure — a mutation method on a captured Vec, two assignments to
// captured variables, a `.lock()` acquisition, and an unordered
// container. The `HashSet` line additionally trips the lexical
// `unordered-iteration` rule (same token, two invariants).
pub fn stage(chunks: &[&[u32]], shared: &Mutex<Vec<u32>>) {
    crossbeam::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move |_| {
                for t in chunk {
                    results.push(work(*t));
                }
                total += chunk.len();
                let guard = shared.lock();
                seen = HashSet::new();
            });
        }
    });
}
