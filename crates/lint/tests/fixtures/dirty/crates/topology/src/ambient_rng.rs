// Fixture: `ambient-rng` must fire on every entropy source that is not
// the seeded topology RNG.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let _also: f64 = rand::random();
    let _seeded_from_os = StdRng::from_entropy();
    rng.next_u64()
}
