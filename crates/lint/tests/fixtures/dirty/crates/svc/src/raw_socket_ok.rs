// Fixture: `raw-socket` stays silent here — `crates/svc` is the one
// sanctioned home of socket I/O (the cfs-api/1 daemon and client).
use std::net::TcpListener;

pub fn listen(addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let (stream, _) = listener.accept()?;
    drop(stream);
    Ok(())
}
