// Fixture: `panic-reachability` must fire twice — an indexing
// expression in `handle` and a `panic!` in `decode`, both reachable
// from the `serve` root. The panic in `offline_tool` is NOT reachable
// from any root and must stay silent.
pub fn serve(lines: &[String]) {
    for line in lines {
        handle(line);
    }
}

fn handle(line: &str) {
    let fields = split(line);
    let first = fields[0];
    decode(first);
}

fn decode(s: &str) {
    panic!("bad request: {s}");
}

fn offline_tool() {
    panic!("not reachable from the request loop");
}
