// Fixture: the authoritative API surface of the dirty mini-workspace.
// Accepts ops {status, query}, delta kind {kb-flip}; produces codes
// {bad_request, unknown_op}. The drift lives in src/api_drift_use.rs
// and DESIGN.md, which disagree with this file. `bad_request` is
// produced here but missing from DESIGN.md's typed-codes list, so one
// api-drift finding anchors on its producing line below.
pub const SCHEMA: &str = "cfs-api/9";

pub fn parse_request(op: &str, kind: &str) -> Result<u32, ApiError> {
    match op {
        "status" => Ok(1),
        "query" => {
            match kind {
                "kb-flip" => Ok(2),
                _ => Err(ApiError::new("bad_request", "unknown kind")),
            }
        }
        _ => Err(ApiError::new("unknown_op", "unknown op")),
    }
}
