// Fixture: `unwrap-in-lib` must fire twice — a bare unwrap() and an
// expect() whose message is not a string literal. The documented
// literal expect and the cfg(test) module must NOT fire.
pub fn first_facility(ids: &[u32], msg: &str) -> u32 {
    let undocumented = ids.iter().max().expect(msg);
    let bare = ids.first().unwrap();
    let _documented = ids.last().expect("non-empty checked by caller");
    undocumented + bare
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
