// Fixture: `rc-in-send-crate` must fire — `kb` types are asserted Sync.
use std::rc::Rc;

pub struct Snapshot {
    pub names: Rc<Vec<String>>,
}
