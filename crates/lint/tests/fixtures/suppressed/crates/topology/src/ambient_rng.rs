// Fixture: justified suppressions silence `ambient-rng`.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // cfs-lint: allow(ambient-rng) — fixture demonstrating the suppression form
    // cfs-lint: allow(ambient-rng) — ditto, standalone-directive form covering the next line
    let _also: f64 = rand::random();
    rng.next_u64()
}
