// Fixture: justified suppressions silence `wall-clock`.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    // cfs-lint: allow(wall-clock) — operator-facing log timestamp; never reaches a report
    (Instant::now(), SystemTime::now())
}
