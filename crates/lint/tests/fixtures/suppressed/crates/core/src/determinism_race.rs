// Fixture: justified suppressions silence `determinism-race` (and the
// lexical `unordered-iteration` hit on the same HashSet token).
pub fn stage(chunks: &[&[u32]], shared: &Mutex<Vec<u32>>) {
    crossbeam::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move |_| {
                for t in chunk {
                    results.push(work(*t)); // cfs-lint: allow(determinism-race) — fixture: results re-sorted by key before reporting
                }
                total += chunk.len(); // cfs-lint: allow(determinism-race) — fixture: a commutative counter, merge order cannot show
                let guard = shared.lock(); // cfs-lint: allow(determinism-race) — fixture: lock guards an append-only log, drained sorted
                seen = HashSet::new(); // cfs-lint: allow(determinism-race, unordered-iteration) — fixture: membership only, never iterated
            });
        }
    });
}
