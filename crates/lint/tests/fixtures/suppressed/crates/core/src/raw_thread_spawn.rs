// Fixture: justified suppressions silence `raw-thread-spawn`.
pub fn fan_out(xs: Vec<u32>) -> Vec<std::thread::JoinHandle<u32>> {
    xs.into_iter()
        // cfs-lint: allow(raw-thread-spawn) — results joined in submission order right below
        .map(|x| std::thread::spawn(move || x * 2))
        .collect()
}
