// Fixture: justified suppressions silence `raw-socket`.
// cfs-lint: allow(raw-socket) — fixture import, mirrors the svc accept loop
use std::net::TcpListener;

pub fn listen(addr: &str) -> std::io::Result<()> {
    // cfs-lint: allow(raw-socket) — fixture bind, mirrors the svc accept loop
    let listener = TcpListener::bind(addr)?;
    let (stream, _) = listener.accept()?;
    drop(stream);
    Ok(())
}
