// Fixture: a directive whose target line genuinely carries the named
// finding is *used*, so `unused-allow` stays quiet.
pub fn busy() {
    let _t = std::time::Instant::now(); // cfs-lint: allow(wall-clock) — fixture: the suppression is live
}
