// Fixture: a justified allow naming a real rule produces no
// `unjustified-allow` finding.
pub fn tidy() {
    let _t = std::time::Instant::now(); // cfs-lint: allow(wall-clock) — fixture for the justified form
}
