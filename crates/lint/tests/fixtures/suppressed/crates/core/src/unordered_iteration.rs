// Fixture: justified suppressions silence `unordered-iteration`.
// cfs-lint: allow(unordered-iteration) — import only; iteration sites annotated individually
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    // cfs-lint: allow(unordered-iteration) — result re-sorted below before anything iterates it
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for x in xs {
        *counts.entry(*x).or_default() += 1;
    }
    let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
