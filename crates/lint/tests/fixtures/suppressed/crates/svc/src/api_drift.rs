// Fixture: the authoritative API surface of the suppressed
// mini-workspace. DESIGN.md here agrees with it exactly; the one
// drifted request literal lives in src/api_drift_use.rs under a
// justified allow.
pub const SCHEMA: &str = "cfs-api/9";

pub fn parse_request(op: &str, kind: &str) -> Result<u32, ApiError> {
    match op {
        "status" => Ok(1),
        "query" => {
            match kind {
                "kb-flip" => Ok(2),
                _ => Err(ApiError::new("bad_request", "unknown kind")),
            }
        }
        _ => Err(ApiError::new("unknown_op", "unknown op")),
    }
}
