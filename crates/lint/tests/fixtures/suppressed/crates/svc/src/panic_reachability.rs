// Fixture: justified suppressions silence `panic-reachability` on both
// reachable sites. The unreachable panic needs (and carries) none.
pub fn serve(lines: &[String]) {
    for line in lines {
        handle(line);
    }
}

fn handle(line: &str) {
    let fields = split(line);
    let first = fields[0]; // cfs-lint: allow(panic-reachability) — fixture: split() yields at least one field by contract
    decode(first);
}

fn decode(s: &str) {
    panic!("bad request: {s}"); // cfs-lint: allow(panic-reachability) — fixture: demo of an acknowledged panic path
}

fn offline_tool() {
    panic!("not reachable from the request loop");
}
