// Fixture: justified suppressions silence `unwrap-in-lib`.
pub fn first_facility(ids: &[u32], msg: &str) -> u32 {
    // cfs-lint: allow(unwrap-in-lib) — message threaded from caller, always descriptive
    let undocumented = ids.iter().max().expect(msg);
    let bare = ids.first().unwrap(); // cfs-lint: allow(unwrap-in-lib) — len checked two lines up
    undocumented + bare
}
