// Fixture: justified suppressions silence `rc-in-send-crate`.
// cfs-lint: allow(rc-in-send-crate) — single-threaded scratch type, never embedded in Sync state
use std::rc::Rc;

pub struct Scratch {
    // cfs-lint: allow(rc-in-send-crate) — see type-level justification above
    pub names: Rc<Vec<String>>,
}
