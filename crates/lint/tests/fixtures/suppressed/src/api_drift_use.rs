// Fixture: one drifted request literal under a justified suppression;
// the other literal agrees with the authority and needs none.
pub fn requests() -> Vec<String> {
    vec![
        "{\"schema\":\"cfs-api/9\",\"op\":\"status\"}".to_owned(),
        "{\"op\":\"frobnicate\"}".to_owned(), // cfs-lint: allow(api-drift) — fixture: migration shim kept one release for old daemons
    ]
}
