// Fixture: justified suppressions silence `deprecated-cfs-api`.
pub fn build_search<'a>(deps: &'a Deps) -> Cfs<'a> {
    // cfs-lint: allow(deprecated-cfs-api) — exercises the shim until its removal PR
    let cfs = Cfs::new(&deps.engine, &deps.vps, &deps.kb, &deps.ipasn, Default::default());
    cfs.restrict_platforms(&[Platform::Ark]) // cfs-lint: allow(deprecated-cfs-api) — same shim coverage
}
