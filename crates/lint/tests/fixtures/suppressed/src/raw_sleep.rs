// Fixture: justified suppressions silence `raw-sleep`.
pub fn wait_for_probe(d: std::time::Duration) {
    // cfs-lint: allow(raw-sleep) — fixture models a legacy blocking shim
    std::thread::sleep(d);
    while !probe_landed() {
        std::hint::spin_loop(); // cfs-lint: allow(raw-sleep) — same blocking-shim coverage
    }
}
