// Fixture: justified suppressions silence `vendor-surface`.
pub fn seed() -> u64 {
    let mut r = thread_rng(); // cfs-lint: allow(vendor-surface) — fixture: upstream API contract requires an entropy source
    r.next_u64()
}

pub fn stamp_ms() -> u128 {
    Instant::now().elapsed().as_millis() // cfs-lint: allow(vendor-surface) — fixture: upstream API reports wall time by definition
}
