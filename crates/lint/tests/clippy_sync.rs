//! Keeps `clippy.toml` honest: its disallowed-types/-methods lists
//! mirror the mechanical subset of the cfs-lint catalog, and each entry
//! declares which rule it mirrors via a `(cfs-lint: <rule>)` suffix in
//! its reason string. This test fails when an entry names a rule the
//! catalog dropped, or when a mechanical rule loses its clippy mirror.

use std::collections::BTreeSet;

use cfs_lint::RULES;

/// The rules whose token set is simple enough for clippy's
/// disallowed-lists to mirror; each must appear in clippy.toml at
/// least once.
const MIRRORED_RULES: &[&str] = &[
    "rc-in-send-crate",
    "raw-thread-spawn",
    "unordered-iteration",
    "wall-clock",
];

fn clippy_toml() -> String {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = cfs_lint::find_workspace_root(manifest).expect("workspace root above crates/lint");
    std::fs::read_to_string(root.join("clippy.toml")).expect("clippy.toml exists at the root")
}

#[test]
fn every_clippy_reason_names_a_cataloged_rule() {
    let toml = clippy_toml();
    let mut tagged = 0usize;
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut rest = toml.as_str();
    while let Some(p) = rest.find("(cfs-lint: ") {
        let tail = &rest[p + "(cfs-lint: ".len()..];
        let close = tail.find(')').expect("(cfs-lint: …) tag is closed");
        let rule = &tail[..close];
        assert!(
            RULES.iter().any(|r| r.name == rule),
            "clippy.toml mirrors unknown rule `{rule}`"
        );
        if let Some(known) = MIRRORED_RULES.iter().find(|m| **m == rule) {
            seen.insert(known);
        }
        tagged += 1;
        rest = &tail[close..];
    }
    assert!(tagged >= MIRRORED_RULES.len(), "untagged clippy entries");
    for rule in MIRRORED_RULES {
        assert!(
            seen.contains(rule),
            "mechanical rule `{rule}` lost its clippy.toml mirror"
        );
    }
}

#[test]
fn every_disallowed_entry_carries_a_rule_tag() {
    // A disallowed entry without a `(cfs-lint: …)` tag is a mirror
    // nobody can audit; each `path = …` line must carry one.
    let toml = clippy_toml();
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with("{ path") {
            assert!(
                line.contains("(cfs-lint: "),
                "clippy.toml entry missing its rule tag: {line}"
            );
        }
    }
}
