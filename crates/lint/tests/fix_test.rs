//! Integration tests for `cfs-lint fix`: the autofixer repairs exactly
//! the mechanical findings, and a second run is a byte-level no-op.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use cfs_lint::{apply_fixes, check_workspace, plan_fixes};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

/// Copies the dirty fixture tree into a fresh scratch dir (one per
/// caller, so parallel tests never collide) and returns its root.
fn scratch_copy(tag: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("cfs-lint-fix-{}-{tag}", std::process::id()));
    if dst.exists() {
        fs::remove_dir_all(&dst).expect("stale scratch dir is removable");
    }
    copy_tree(&fixture_root("dirty"), &dst);
    dst
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("scratch dir is creatable");
    for entry in fs::read_dir(src).expect("fixture tree is readable") {
        let entry = entry.expect("fixture entry is readable");
        let to = dst.join(entry.file_name());
        if entry
            .file_type()
            .expect("fixture entry has a type")
            .is_dir()
        {
            copy_tree(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("fixture file is copyable");
        }
    }
}

/// Snapshot of every file's bytes under `root`, keyed by relative path.
fn snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("scratch tree is readable") {
            let path = entry.expect("scratch entry is readable").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("entry lives under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).expect("scratch file is readable"));
            }
        }
    }
    out
}

#[test]
fn fix_repairs_exactly_the_mechanical_findings() {
    let root = scratch_copy("repair");
    let before = check_workspace(&root).expect("scratch tree lints");
    let plan = plan_fixes(&root).expect("plan succeeds");
    // The dirty tree has one bare unwrap and one stale allow.
    assert_eq!(plan.len(), 2, "{plan:#?}");

    let changed = apply_fixes(&root, &plan).expect("apply succeeds");
    assert_eq!(changed, 2, "both planned files must be rewritten");

    let after = check_workspace(&root).expect("fixed tree lints");
    assert_eq!(
        after.len(),
        before.len() - 2,
        "exactly the two mechanical findings disappear:\n{after:#?}"
    );
    assert!(!after.iter().any(|f| f.rule == "unused-allow"));
    assert!(!after
        .iter()
        .any(|f| f.rule == "unwrap-in-lib" && f.message.starts_with("bare `.unwrap()`")));
    // The non-literal expect() is not mechanical; it must survive.
    assert!(after
        .iter()
        .any(|f| f.rule == "unwrap-in-lib" && f.message.contains("without a literal message")));

    let fixed = fs::read_to_string(root.join("crates/kb/src/unwrap_in_lib.rs"))
        .expect("fixed file is readable");
    assert!(fixed.contains(".expect(\"cfs-lint fix: document this invariant\")"));
    assert!(!fixed.contains(".unwrap();"));
    let cleaned = fs::read_to_string(root.join("crates/core/src/unused_allow.rs"))
        .expect("cleaned file is readable");
    assert!(!cleaned.contains("cfs-lint: allow"));

    fs::remove_dir_all(&root).ok();
}

#[test]
fn second_fix_run_is_a_byte_level_no_op() {
    let root = scratch_copy("idempotent");
    let plan = plan_fixes(&root).expect("first plan succeeds");
    assert!(!plan.is_empty());
    apply_fixes(&root, &plan).expect("first apply succeeds");

    let frozen = snapshot(&root);
    let second = plan_fixes(&root).expect("second plan succeeds");
    assert!(
        second.is_empty(),
        "after one application nothing is left to fix:\n{second:#?}"
    );
    apply_fixes(&root, &second).expect("empty apply succeeds");
    assert_eq!(
        snapshot(&root),
        frozen,
        "a second fix run must not change a single byte"
    );

    fs::remove_dir_all(&root).ok();
}

#[test]
fn fix_check_exit_codes_track_pending_fixes() {
    let bin = env!("CARGO_BIN_EXE_cfs-lint");
    let root = scratch_copy("cli");
    let check = |root: &Path| {
        Command::new(bin)
            .args(["fix", "--check", "--root"])
            .arg(root)
            .output()
            .expect("cfs-lint binary runs")
    };

    let pending = check(&root);
    assert_eq!(pending.status.code(), Some(1), "pending fixes must exit 1");
    let listing = String::from_utf8_lossy(&pending.stdout).into_owned();
    assert!(listing.contains("unwrap"), "{listing}");

    let apply = Command::new(bin)
        .args(["fix", "--root"])
        .arg(&root)
        .output()
        .expect("cfs-lint binary runs");
    assert_eq!(apply.status.code(), Some(0), "applying fixes exits 0");

    let clean = check(&root);
    assert_eq!(clean.status.code(), Some(0), "nothing pending must exit 0");

    fs::remove_dir_all(&root).ok();
}
