//! Integration tests for the semantic (workspace-level) rule families —
//! `determinism-race`, `panic-reachability`, `api-drift`,
//! `vendor-surface` — and the `graph --json` internals dump.
//!
//! The per-rule fire/suppress inventory lives in `self_test.rs`; these
//! tests pin the *shape* of each family's findings (which sub-checks
//! fired where) and the stability contract of the graph dump.

use std::path::{Path, PathBuf};
use std::process::Command;

use cfs_lint::{check_workspace, is_versioned_output, load_workspace, render_graph_json, Finding};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn dirty() -> Vec<Finding> {
    check_workspace(&fixture_root("dirty")).expect("fixture tree is readable")
}

#[test]
fn determinism_race_flags_all_three_leak_shapes() {
    let findings = dirty();
    let race: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "determinism-race")
        .collect();
    assert_eq!(race.len(), 5, "{race:#?}");
    assert!(race.iter().all(|f| f.path.ends_with("determinism_race.rs")));
    // Shape 1: shared mutable captures — a method and two assignments.
    assert!(race.iter().any(|f| f
        .message
        .contains("mutates captured `results` via `.push(..)`")));
    assert!(race
        .iter()
        .any(|f| f.message.contains("assigns to captured `total`")));
    assert!(race
        .iter()
        .any(|f| f.message.contains("assigns to captured `seen`")));
    // Shape 2: non-commutative accumulation through a lock.
    assert!(race
        .iter()
        .any(|f| f.message.contains("`.lock()` inside a worker closure")));
    // Shape 3: unordered-container iteration.
    assert!(race
        .iter()
        .any(|f| f.message.contains("`HashSet` inside a worker closure")));
}

#[test]
fn determinism_race_ignores_coordinator_text_on_the_spawn_line() {
    // `handles.push(scope.spawn(move |_| { … }))` — the `.push(` before
    // the closure's opening brace runs on the coordinating thread and
    // must not be attributed to the worker.
    let ws = cfs_lint::Workspace::from_sources(vec![(
        "crates/core/src/stage.rs".to_owned(),
        "fn stage() {\n\
         handles.push(scope.spawn(move |_| {\n\
         chunk.iter().map(run_one).collect::<Vec<_>>()\n\
         }));\n\
         }\n"
        .to_owned(),
    )]);
    let findings = cfs_lint::semantic_findings(&ws);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn panic_reachability_walks_the_call_graph_from_the_roots() {
    let findings = dirty();
    let reach: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(reach.len(), 2, "{reach:#?}");
    // serve → handle: the indexing expression.
    assert!(reach
        .iter()
        .any(|f| f.line == 13 && f.message.contains("non-range indexing in `handle`")));
    // serve → handle → decode: the panic! two hops down.
    assert!(reach
        .iter()
        .any(|f| f.line == 18 && f.message.contains("panic! in `decode`")));
    // offline_tool's panic is not reachable from any root: no finding.
    assert!(!reach.iter().any(|f| f.message.contains("offline_tool")));
}

#[test]
fn api_drift_compares_every_surface_pair() {
    let findings = dirty();
    let drift: Vec<&Finding> = findings.iter().filter(|f| f.rule == "api-drift").collect();
    assert_eq!(drift.len(), 9, "{drift:#?}");
    let msg = |s: &str| drift.iter().any(|f| f.message.contains(s));
    // Request literals vs parser authority.
    assert!(msg("literal mentions \"cfs-api/8\""));
    assert!(msg("uses op \"frobnicate\""));
    assert!(msg("uses delta kind \"vp-status\""));
    // DESIGN.md op/kind table, both directions.
    assert!(msg(
        "op \"query\" is accepted by `parse_request` but missing"
    ));
    assert!(msg("documents op \"zap\""));
    assert!(msg(
        "delta kind \"kb-flip\" is accepted by `parse_request` but missing"
    ));
    // Error codes, both directions — the produced-not-documented
    // finding anchors on the producing line, not on DESIGN.md.
    assert!(drift.iter().any(|f| {
        f.path.ends_with("api_drift.rs") && f.message.contains("error code \"bad_request\"")
    }));
    assert!(msg("documents error code \"ghost_code\""));
    // The schema tag itself must appear in the docs.
    assert!(msg("never mentions the schema tag \"cfs-api/9\""));
}

#[test]
fn design_md_findings_are_not_suppressible() {
    // DESIGN.md has no comment syntax the linter parses; its findings
    // pass through the suppression stage untouched and all carry the
    // DESIGN.md path.
    let findings = dirty();
    let on_design = findings.iter().filter(|f| f.path == "DESIGN.md").count();
    assert_eq!(on_design, 5, "{findings:#?}");
}

#[test]
fn graph_dump_is_versioned_and_byte_stable() {
    let root = fixture_root("dirty");
    let a = render_graph_json(&load_workspace(&root).expect("first load"));
    let b = render_graph_json(&load_workspace(&root).expect("second load"));
    assert_eq!(a, b, "graph --json must be byte-stable across runs");
    assert!(is_versioned_output(&a));
    // The dump exposes the analysis internals the rules run on.
    assert!(a.contains("\"symbols\""));
    assert!(a.contains("\"calls\""));
    assert!(a.contains("\"reachable\""));
    assert!(a.contains("\"spawns\""));
    assert!(a.contains("\"api\""));
    // Spot checks: the fixture's own names must appear.
    assert!(a.contains("\"offline_tool\""));
    assert!(a.contains("\"cfs-api/9\""));
}

#[test]
fn graph_cli_round_trip_is_byte_stable() {
    let bin = env!("CARGO_BIN_EXE_cfs-lint");
    let run = || {
        Command::new(bin)
            .args(["graph", "--json", "--root"])
            .arg(fixture_root("dirty"))
            .output()
            .expect("cfs-lint binary runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.status.code(), Some(0), "graph never fails on findings");
    assert_eq!(a.stdout, b.stdout, "graph --json must be byte-stable");
    let text = String::from_utf8(a.stdout).expect("dump is UTF-8");
    assert!(is_versioned_output(text.trim_end()));
}

#[test]
fn unversioned_json_is_rejected() {
    // Consumers key on the schema header; legacy headerless output and
    // other documents must be refused by the sniffer.
    assert!(!is_versioned_output("{\"findings\":[]}"));
    assert!(!is_versioned_output("{\"schema\":\"cfs-trace/1\",\"x\":1}"));
    assert!(!is_versioned_output(""));
}
