//! The linter's own fixture tests: every rule × (fires / suppressed).
//!
//! `tests/fixtures/dirty` and `tests/fixtures/suppressed` are two mini
//! workspaces mirroring the real cargo layout (`crates/<name>/src/…`,
//! `src/…`). The dirty tree carries each hazard bare; the suppressed
//! tree carries the same hazards under justified
//! `// cfs-lint: allow(...)` comments. Neither tree is compiled.

use std::path::{Path, PathBuf};
use std::process::Command;

use cfs_lint::{check_workspace, render_json, Finding, RULES};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn rule_count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_rule_fires_on_the_dirty_tree() {
    let findings = check_workspace(&fixture_root("dirty")).expect("fixture tree is readable");
    for rule in RULES {
        assert!(
            rule_count(&findings, rule.name) > 0,
            "rule `{}` produced no finding on the dirty fixtures:\n{findings:#?}",
            rule.name
        );
    }
}

#[test]
fn dirty_tree_finding_inventory_is_exact() {
    // Pinning the exact counts catches both under- and over-firing
    // (e.g. a needle suddenly matching inside `use` lines twice).
    let findings = check_workspace(&fixture_root("dirty")).expect("fixture tree is readable");
    let expected: &[(&str, usize)] = &[
        ("ambient-rng", 3),
        ("api-drift", 9),
        ("determinism-race", 5),
        ("panic-reachability", 2),
        ("raw-sleep", 2),
        ("raw-socket", 2),
        ("raw-thread-spawn", 1),
        ("rc-in-send-crate", 2),
        ("unjustified-allow", 2),
        ("unordered-iteration", 4),
        ("unused-allow", 1),
        ("unwrap-in-lib", 2),
        ("vendor-surface", 2),
        ("wall-clock", 2),
    ];
    for (rule, n) in expected {
        assert_eq!(
            rule_count(&findings, rule),
            *n,
            "unexpected `{rule}` count:\n{findings:#?}"
        );
    }
    let total: usize = expected.iter().map(|(_, n)| n).sum();
    assert_eq!(findings.len(), total, "stray findings:\n{findings:#?}");
}

#[test]
fn dirty_findings_point_at_real_lines() {
    let findings = check_workspace(&fixture_root("dirty")).expect("fixture tree is readable");
    let has = |path: &str, line: usize, rule: &str| {
        findings
            .iter()
            .any(|f| f.path == path && f.line == line && f.rule == rule)
    };
    assert!(has("crates/kb/src/unwrap_in_lib.rs", 5, "unwrap-in-lib"));
    assert!(has("crates/kb/src/unwrap_in_lib.rs", 6, "unwrap-in-lib"));
    assert!(has("src/raw_sleep.rs", 3, "raw-sleep"));
    assert!(has("src/raw_sleep.rs", 5, "raw-sleep"));
    assert!(has("crates/core/src/raw_socket.rs", 3, "raw-socket"));
    assert!(has("crates/core/src/raw_socket.rs", 6, "raw-socket"));
    // The svc copy of the same hazard is sanctioned: single-home rule.
    assert!(!findings
        .iter()
        .any(|f| f.path.starts_with("crates/svc/") && f.rule == "raw-socket"));
    assert!(has(
        "crates/core/src/unjustified_allow.rs",
        6,
        "unjustified-allow"
    ));
    assert!(has(
        "crates/core/src/unjustified_allow.rs",
        9,
        "unjustified-allow"
    ));
    assert!(has("crates/core/src/unused_allow.rs", 5, "unused-allow"));
    // Semantic rules anchor on real lines too: the worker closure's
    // mutation, the reachable panic sites, the drifted request
    // literals, and the vendored stub's entropy calls.
    assert!(has(
        "crates/core/src/determinism_race.rs",
        11,
        "determinism-race"
    ));
    assert!(has(
        "crates/svc/src/panic_reachability.rs",
        13,
        "panic-reachability"
    ));
    assert!(has(
        "crates/svc/src/panic_reachability.rs",
        18,
        "panic-reachability"
    ));
    assert!(has("src/api_drift_use.rs", 6, "api-drift"));
    assert!(has("src/api_drift_use.rs", 7, "api-drift"));
    assert!(has("vendor/evil/src/lib.rs", 4, "vendor-surface"));
    assert!(has("vendor/evil/src/lib.rs", 9, "vendor-surface"));
    // The unreachable panic in `offline_tool` must not be flagged.
    assert!(!findings
        .iter()
        .any(|f| f.path.ends_with("panic_reachability.rs") && f.line > 19));
}

#[test]
fn suppressed_tree_is_clean() {
    let findings = check_workspace(&fixture_root("suppressed")).expect("fixture tree is readable");
    assert!(
        findings.is_empty(),
        "justified suppressions must clear every finding:\n{findings:#?}"
    );
}

#[test]
fn json_output_is_byte_stable_across_runs() {
    let root = fixture_root("dirty");
    let a = render_json(&check_workspace(&root).expect("first pass"));
    let b = render_json(&check_workspace(&root).expect("second pass"));
    assert_eq!(a, b);
    assert!(a.starts_with("{\"schema\":\"cfs-lint/1\",\"findings\":["));
    assert!(a.ends_with('}'));
    assert!(cfs_lint::is_versioned_output(&a));
}

#[test]
fn cli_exit_codes_and_json_stability() {
    let bin = env!("CARGO_BIN_EXE_cfs-lint");
    let run = |root: &Path| {
        Command::new(bin)
            .args(["check", "--json", "--root"])
            .arg(root)
            .output()
            .expect("cfs-lint binary runs")
    };

    let dirty = run(&fixture_root("dirty"));
    assert_eq!(dirty.status.code(), Some(1), "dirty tree must exit 1");
    let dirty2 = run(&fixture_root("dirty"));
    assert_eq!(dirty.stdout, dirty2.stdout, "--json must be byte-stable");

    let clean = run(&fixture_root("suppressed"));
    assert_eq!(clean.status.code(), Some(0), "suppressed tree must exit 0");

    let usage = Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("cfs-lint binary runs");
    assert_eq!(usage.status.code(), Some(2), "bad usage must exit 2");
}
