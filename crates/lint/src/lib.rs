//! `cfs-lint` — the workspace invariant linter.
//!
//! An offline, dependency-free static-analysis pass over this
//! workspace's own Rust sources. It does not parse Rust properly — it
//! masks comments and literals with a small hand-rolled scanner
//! ([`lexer`]) and then matches lexical patterns ([`rules`]) that
//! encode the invariants the system's headline guarantee rests on:
//! byte-identical [`CfsReport`]s at any thread count, seeded randomness
//! only, and panic-free library code.
//!
//! Findings are suppressed per line with
//! `// cfs-lint: allow(<rule>) — <one-line justification>`; the
//! justification is mandatory (enforced by the `unjustified-allow`
//! rule). Output is deterministic: files are visited in sorted order
//! and findings are fully ordered, so `--json` output is byte-stable
//! across runs.
//!
//! [`CfsReport`]: ../cfs_core/report/struct.CfsReport.html

#![deny(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_source, classify, Finding, RuleInfo, Target, RULES};

/// Directory prefixes (workspace-relative) the walker never descends
/// into. `fixtures` holds deliberately dirty snippets for the linter's
/// own tests; `vendor` is third-party stand-in code.
const SKIP_PREFIXES: &[&str] = &[
    ".git",
    "target",
    "vendor",
    "results",
    "crates/lint/tests/fixtures",
];

/// Locates the workspace root by walking up from `start` until a
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every lintable `.rs` file under `root`, as sorted
/// workspace-relative `/`-separated paths.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") && classify(&rel).is_some() {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`. Findings come back in a
/// total order (path, line, col, rule), identical across runs.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        findings.extend(check_source(&rel, &source));
    }
    findings.sort();
    Ok(findings)
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a single-line JSON document with a fixed key
/// order and fully sorted contents — byte-stable across runs.
pub fn render_json(findings: &[Finding]) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.rule, 1)),
        }
    }
    counts.sort();
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.col,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"counts\":{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{rule}\":{n}"));
    }
    out.push_str(&format!("}},\"total\":{}}}", findings.len()));
    out
}

/// Renders findings for humans: one `path:line:col: rule: message` per
/// finding plus a summary line.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "cfs-lint: clean ({files_scanned} files scanned)\n"
        ));
    } else {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort();
        let by_rule: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        out.push_str(&format!(
            "cfs-lint: {} findings ({})\n",
            findings.len(),
            by_rule.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let findings = vec![Finding {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "wall-clock",
            message: "uses \"now\"".into(),
        }];
        let a = render_json(&findings);
        let b = render_json(&findings);
        assert_eq!(a, b);
        assert!(a.contains("\\\"now\\\""));
        assert!(a.contains("\"total\":1"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(
            render_json(&[]),
            "{\"findings\":[],\"counts\":{},\"total\":0}"
        );
        assert!(render_human(&[], 12).contains("clean (12 files"));
    }
}
