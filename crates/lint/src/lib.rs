//! `cfs-lint` — the workspace invariant linter.
//!
//! An offline, dependency-free static-analysis pass over this
//! workspace's own Rust sources, in two layers:
//!
//! * **Token rules** ([`rules`]): per-file lexical invariants over
//!   masked source ([`lexer`]) — seeded randomness only, no wall clocks
//!   outside the sanctioned module, no panics in library code, socket
//!   I/O single-homed in `crates/svc`, and so on.
//! * **Semantic rules**: workspace-wide analyses built on the same
//!   masked scan — a per-crate symbol table and `use` resolution
//!   ([`resolve`]), an intra-crate call-graph approximation
//!   ([`callgraph`]), closure-capture extraction ([`captures`]), and
//!   cross-surface protocol extraction ([`apidrift`]) — powering
//!   `panic-reachability`, `determinism-race`, and `api-drift`.
//!
//! Both layers feed one suppression pass: findings are suppressed per
//! line with `// cfs-lint: allow(<rule>) — <one-line justification>`;
//! the justification is mandatory (enforced by `unjustified-allow`) and
//! a directive that silences nothing is itself a finding
//! (`unused-allow`). Output is deterministic: files are visited in
//! sorted order and findings are fully ordered, so `--json` output —
//! stamped `cfs-lint/1` — is byte-stable across runs, as is the
//! analysis dump behind `cfs-lint graph --json`.

#![deny(missing_docs)]

pub mod apidrift;
pub mod callgraph;
pub mod captures;
pub mod fix;
pub mod lexer;
pub mod resolve;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use fix::{apply_fixes, plan_fixes, PlannedFix};
pub use resolve::Workspace;
pub use rules::{check_source, classify, Finding, RuleInfo, Target, RULES};

/// The version tag stamped on every JSON document this tool emits, in
/// the same spirit as `cfs-api/1` and `cfs-trace/1`: consumers sniff it
/// before interpreting anything else.
pub const LINT_SCHEMA: &str = "cfs-lint/1";

/// True when `json` is a `cfs-lint/1` document — the sniff check
/// downstream tooling (and this crate's own tests) applies before
/// trusting the payload shape.
pub fn is_versioned_output(json: &str) -> bool {
    json.starts_with("{\"schema\":\"cfs-lint/1\",")
}

/// Directory prefixes (workspace-relative) the walker never descends
/// into. `fixtures` holds deliberately dirty snippets for the linter's
/// own tests. `vendor` is *not* skipped: vendored stub sources classify
/// as [`Target::Vendor`] and get exactly the `vendor-surface` rule.
const SKIP_PREFIXES: &[&str] = &[".git", "target", "results", "crates/lint/tests/fixtures"];

/// Locates the workspace root by walking up from `start` until a
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every lintable `.rs` file under `root`, as sorted
/// workspace-relative `/`-separated paths.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") && classify(&rel).is_some() {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the workspace model the semantic rules run over: every
/// lintable source plus `DESIGN.md` (the documentation surface of the
/// `api-drift` rule) when present.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut sources = Vec::new();
    for rel in collect_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, source));
    }
    if let Ok(design) = fs::read_to_string(root.join("DESIGN.md")) {
        sources.push(("DESIGN.md".to_owned(), design));
    }
    Ok(Workspace::from_sources(sources))
}

/// Runs the semantic layer over a loaded workspace: panic-reachability
/// from the cfsd request loop, determinism-race over spawn closures,
/// and api-drift across the `cfs-api/1` surfaces.
pub fn semantic_findings(ws: &Workspace) -> Vec<Finding> {
    let symbols = resolve::build_symbols(ws);
    let graph = callgraph::build_callgraph(ws, &symbols);
    let closures = captures::find_spawn_closures(ws);
    let surface = apidrift::extract_surface(ws);
    let mut findings = callgraph::panic_reachability_findings(ws, &graph);
    findings.extend(captures::determinism_race_findings(ws, &closures));
    findings.extend(apidrift::api_drift_findings(ws, &surface));
    findings
}

/// Lints the whole workspace rooted at `root`: token rules per file,
/// semantic rules across files, then one suppression + directive-
/// hygiene pass per file over the merged findings. Findings come back
/// in a total order (path, line, col, rule), identical across runs.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let ws = load_workspace(root)?;
    let mut by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for file in &ws.files {
        by_path.insert(
            file.path.clone(),
            rules::lexical_findings(&file.ctx, &file.path, &file.scanned),
        );
    }
    let mut findings = Vec::new();
    for f in semantic_findings(&ws) {
        match by_path.get_mut(&f.path) {
            Some(bucket) => bucket.push(f),
            // DESIGN.md (and any other non-Rust surface) has no comment
            // syntax to carry directives; its findings pass through.
            None => findings.push(f),
        }
    }
    for file in &ws.files {
        let merged = by_path.remove(&file.path).unwrap_or_default();
        findings.extend(rules::finish_file(&file.path, &file.scanned, merged));
    }
    findings.sort();
    Ok(findings)
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: impl IntoIterator<Item = String>) -> String {
    let quoted: Vec<String> = items
        .into_iter()
        .map(|s| format!("\"{}\"", json_escape(&s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Renders findings as a single-line `cfs-lint/1` JSON document with a
/// fixed key order and fully sorted contents — byte-stable across runs.
pub fn render_json(findings: &[Finding]) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.rule, 1)),
        }
    }
    counts.sort();
    let mut out = format!("{{\"schema\":\"{LINT_SCHEMA}\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.col,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"counts\":{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{rule}\":{n}"));
    }
    out.push_str(&format!("}},\"total\":{}}}", findings.len()));
    out
}

/// Renders the semantic-analysis internals — symbol table, call graph,
/// reachable sets, spawn-closure captures, extracted API surface — as a
/// single-line `cfs-lint/1` JSON document. Everything is BTree-ordered,
/// so the dump is byte-stable across runs; `cfs-lint graph --json` is
/// the debugging window into why a semantic rule did (not) fire.
pub fn render_graph_json(ws: &Workspace) -> String {
    let symbols = resolve::build_symbols(ws);
    let graph = callgraph::build_callgraph(ws, &symbols);
    let closures = captures::find_spawn_closures(ws);
    let surface = apidrift::extract_surface(ws);

    let mut out = format!("{{\"schema\":\"{LINT_SCHEMA}\",\"symbols\":{{");
    for (i, (krate, syms)) in symbols.crates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{{", json_escape(krate)));
        for (j, (name, defs)) in syms.fns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let sites: Vec<String> = defs
                .iter()
                .map(|d| {
                    format!(
                        "{{\"path\":\"{}\",\"line\":{}}}",
                        json_escape(&d.path),
                        d.line + 1
                    )
                })
                .collect();
            out.push_str(&format!("\"{}\":[{}]", json_escape(name), sites.join(",")));
        }
        out.push('}');
    }
    out.push_str("},\"calls\":{");
    for (i, (krate, cg)) in graph.crates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{{", json_escape(krate)));
        for (j, (name, callees)) in cg.calls.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                json_escape(name),
                json_str_array(callees.iter().cloned())
            ));
        }
        out.push('}');
    }
    out.push_str("},\"reachable\":{");
    let mut roots_by_crate: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (krate, root) in callgraph::PANIC_ROOTS {
        roots_by_crate.entry(krate).or_default().push(root);
    }
    let mut first = true;
    for (krate, roots) in &roots_by_crate {
        let Some(cg) = graph.crates.get(*krate) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        let live = callgraph::reachable(cg, roots);
        out.push_str(&format!(
            "\"{}\":{}",
            json_escape(krate),
            json_str_array(live.into_iter())
        ));
    }
    out.push_str("},\"spawns\":[");
    for (i, c) in closures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"captures\":{}}}",
            json_escape(&c.path),
            c.line + 1,
            json_str_array(c.captures.iter().cloned())
        ));
    }
    out.push_str("],\"api\":{");
    match &surface.schema {
        Some((schema, path, line)) => out.push_str(&format!(
            "\"schema\":\"{}\",\"authority\":\"{}:{}\",",
            json_escape(schema),
            json_escape(path),
            line
        )),
        None => out.push_str("\"schema\":null,"),
    }
    let codes: std::collections::BTreeSet<String> = surface
        .codes_used
        .iter()
        .map(|(c, _, _)| c.clone())
        .collect();
    out.push_str(&format!(
        "\"ops\":{},\"kinds\":{},\"codes\":{},\"doc_ops\":{},\"doc_kinds\":{},\"doc_codes\":{}}}",
        json_str_array(surface.ops.iter().cloned()),
        json_str_array(surface.kinds.iter().cloned()),
        json_str_array(codes.into_iter()),
        json_str_array(surface.doc_ops.iter().cloned()),
        json_str_array(surface.doc_kinds.iter().cloned()),
        json_str_array(surface.doc_codes.iter().cloned()),
    ));
    out.push('}');
    out
}

/// Renders findings for humans: one `path:line:col: rule: message` per
/// finding plus a summary line.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "cfs-lint: clean ({files_scanned} files scanned)\n"
        ));
    } else {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort();
        let by_rule: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        out.push_str(&format!(
            "cfs-lint: {} findings ({})\n",
            findings.len(),
            by_rule.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_escaped_and_versioned() {
        let findings = vec![Finding {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "wall-clock",
            message: "uses \"now\"".into(),
        }];
        let a = render_json(&findings);
        let b = render_json(&findings);
        assert_eq!(a, b);
        assert!(a.contains("\\\"now\\\""));
        assert!(a.contains("\"total\":1"));
        assert!(is_versioned_output(&a), "{a}");
    }

    #[test]
    fn empty_render() {
        assert_eq!(
            render_json(&[]),
            "{\"schema\":\"cfs-lint/1\",\"findings\":[],\"counts\":{},\"total\":0}"
        );
        assert!(render_human(&[], 12).contains("clean (12 files"));
    }

    #[test]
    fn unversioned_output_is_rejected_by_the_sniffer() {
        assert!(!is_versioned_output(
            "{\"findings\":[],\"counts\":{},\"total\":0}"
        ));
        assert!(!is_versioned_output(
            "{\"schema\":\"cfs-lint/2\",\"findings\":[]}"
        ));
        assert!(!is_versioned_output(""));
    }

    #[test]
    fn graph_dump_is_versioned_and_stable() {
        let ws = Workspace::from_sources(vec![(
            "crates/svc/src/server.rs".to_owned(),
            "fn serve_connection() { helper(); }\nfn helper() {}\n".to_owned(),
        )]);
        let a = render_graph_json(&ws);
        let b = render_graph_json(&ws);
        assert_eq!(a, b);
        assert!(is_versioned_output(&a), "{a}");
        assert!(a.contains("\"reachable\""));
        assert!(a.contains("\"serve_connection\""));
    }
}
