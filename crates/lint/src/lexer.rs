//! A minimal Rust source scanner.
//!
//! The rules in this linter are lexical, so all the scanner has to get
//! right is *what is code*: comment bodies, string/char literal
//! contents, and raw strings must never be mistaken for code (a
//! `"HashMap"` inside a log message is not a finding), and comment text
//! must be preserved so `// cfs-lint: allow(...)` directives can be
//! parsed. This is deliberately not a full lexer — no token stream, no
//! spans — just a masking pass plus `#[cfg(test)]` region tracking.

/// The result of scanning one source file.
pub struct ScannedFile {
    /// Source lines with comment bodies and literal contents blanked
    /// out. Literal delimiters (`"`, `r#"`, `'`) survive so rules can
    /// still see that a string literal starts at a position.
    pub code: Vec<String>,
    /// Comment text collected per line (0-based), with the `//` / `/*`
    /// markers stripped. Block comments contribute to every line they
    /// span.
    pub comments: Vec<String>,
    /// `in_test[i]` is true when line `i` is inside an item annotated
    /// `#[cfg(test)]` (almost always the trailing `mod tests { ... }`).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { byte: bool },
    RawStr { hashes: u32 },
    CharLit,
}

/// Scans `src` into masked code lines, per-line comment text, and
/// `#[cfg(test)]` region marks.
pub fn scan(src: &str) -> ScannedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut masked = String::with_capacity(src.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut state = State::Code;
    let mut i = 0usize;

    // Appends to the comment buffer of the current (last) line.
    fn note(comments: &mut [String], c: char) {
        if c != '\n' {
            if let Some(last) = comments.last_mut() {
                last.push(c);
            }
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            masked.push('\n');
            comments.push(String::new());
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    masked.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    masked.push_str("  ");
                    i += 2;
                } else if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    // Possible raw string: r"..." / r#"..."# / br"..."
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for &d in &chars[i..=j] {
                            masked.push(d);
                        }
                        i = j + 1;
                        state = State::RawStr { hashes };
                    } else {
                        masked.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('"') && !prev_ident {
                    masked.push_str("b\"");
                    i += 2;
                    state = State::Str { byte: true };
                } else if c == '"' {
                    masked.push('"');
                    i += 1;
                    state = State::Str { byte: false };
                } else if c == '\'' {
                    // Char literal vs lifetime. A literal is 'x' or an
                    // escape '\...'; a lifetime ('a, '_ in <'a>) has no
                    // closing quote right after one element.
                    if next == Some('\\') {
                        masked.push('\'');
                        i += 1;
                        state = State::CharLit;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        masked.push_str("\'  ");
                        i += 3;
                    } else {
                        masked.push('\'');
                        i += 1;
                    }
                } else {
                    masked.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                note(&mut comments, c);
                masked.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    masked.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    masked.push_str("  ");
                    i += 2;
                } else {
                    note(&mut comments, c);
                    masked.push(' ');
                    i += 1;
                }
            }
            State::Str { byte: _ } => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        // Line continuation (`"…\` at end of line): mask
                        // only the backslash and let the newline take
                        // the normal path, or every line after this
                        // string shifts against the raw source.
                        masked.push(' ');
                        i += 1;
                    } else {
                        masked.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    masked.push('"');
                    i += 1;
                    state = State::Code;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        masked.push('"');
                        for _ in 0..hashes {
                            masked.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                masked.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    masked.push('\'');
                    i += 1;
                    state = State::Code;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
        }
    }

    let code: Vec<String> = masked.split('\n').map(str::to_owned).collect();
    comments.resize(code.len(), String::new());
    let in_test = mark_cfg_test_regions(&code);
    ScannedFile {
        code,
        comments,
        in_test,
    }
}

/// Marks the lines covered by items annotated `#[cfg(test)]`.
///
/// After an attribute line, the item extends to the matching `}` of the
/// first top-level `{` (or to the first `;` seen before any brace, for
/// `#[cfg(test)] use ...;` style items). Subsequent attributes between
/// the cfg and the item (`#[allow]`, doc comments) are skipped.
fn mark_cfg_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0usize;
    while line < code.len() {
        let stripped: String = code[line].chars().filter(|c| !c.is_whitespace()).collect();
        if !(stripped.contains("#[cfg(test)]") || stripped.contains("#[cfg(test,")) {
            line += 1;
            continue;
        }
        // Walk characters starting after the attribute's closing `]`.
        let attr_start = code[line].find("#[").unwrap_or(0);
        let mut col = match code[line][attr_start..].find(']') {
            Some(p) => attr_start + p + 1,
            None => code[line].len(),
        };
        let mut cur = line;
        let mut depth = 0usize;
        let mut end = line;
        'walk: while cur < code.len() {
            let bytes = code[cur].as_bytes();
            while col < bytes.len() {
                match bytes[col] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = cur;
                            break 'walk;
                        }
                    }
                    b';' if depth == 0 => {
                        end = cur;
                        break 'walk;
                    }
                    _ => {}
                }
                col += 1;
            }
            cur += 1;
            col = 0;
            end = cur.min(code.len() - 1);
        }
        for flag in in_test.iter_mut().take(end + 1).skip(line) {
            *flag = true;
        }
        line = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let s = scan("let x = \"HashMap\"; // HashMap here\nlet y = 1;\n");
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.comments[0].contains("HashMap here"));
        assert_eq!(s.code[1], "let y = 1;");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let s = scan("let x = r#\"Instant::now()\"#; let c = 'a'; let lt: &'static str = \"\";");
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[0].contains("&'static str"));
    }

    #[test]
    fn string_line_continuations_keep_line_numbering() {
        let s = scan("let h = \"first\\\n    second\";\nlet after = 1;\n");
        assert_eq!(s.code.len(), 4, "{:?}", s.code);
        assert_eq!(s.code[2], "let after = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still */ code()");
        assert!(s.code[0].contains("code()"));
        assert!(!s.code[0].contains("outer"));
        assert!(s.comments[0].contains("inner"));
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = scan(src);
        assert!(!s.in_test[0]);
        assert!(s.in_test[1] && s.in_test[2] && s.in_test[3] && s.in_test[4]);
        assert!(!s.in_test[5]);
    }

    #[test]
    fn cfg_test_single_item_without_braces() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}\n";
        let s = scan(src);
        assert!(s.in_test[0] && s.in_test[1]);
        assert!(!s.in_test[2]);
    }
}
