//! The rule catalog and the per-file check pass.
//!
//! Each rule is a lexical invariant keyed to a guarantee the workspace
//! already made (see DESIGN.md §6 "Enforced invariants"): byte-identical
//! reports at any thread count, seeded randomness only, no panics in
//! library code. Rules match over *masked* source (comments and literal
//! contents blanked by [`crate::lexer::scan`]) so strings and docs never
//! produce findings.

use crate::lexer::{scan, ScannedFile};

/// Where a source file lives in the cargo target layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// `src/` of a library crate — the code other crates build on.
    Lib,
    /// `src/bin/` or `src/main.rs` — executable entry points.
    Bin,
    /// `tests/` — integration tests.
    Test,
    /// `examples/`.
    Example,
    /// `benches/`, or anything in the dedicated `bench` crate.
    Bench,
    /// `vendor/<stub>/src/` — the vendored dependency stubs. Only the
    /// `vendor-surface` rule applies: stub APIs must not leak ambient
    /// entropy or wall time into workspace code that calls them.
    Vendor,
}

/// Classification of one workspace-relative path.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Short crate name: `core`, `kb`, …; the root package is `cfs`.
    pub crate_name: String,
    /// Which target kind the file belongs to.
    pub target: Target,
}

/// The crates whose types are compile-time-asserted `Send`/`Sync`
/// (see `crates/core/src/engine.rs::_assert_send_sync`): a stray `Rc`
/// in any of them is a latent `!Send` regression.
const SEND_CRATES: &[&str] = &["types", "net", "kb", "traceroute", "alias", "core"];

/// Classifies a workspace-relative, `/`-separated path. Returns `None`
/// for files the linter does not reason about (unknown layouts are
/// skipped). Vendored stubs classify as [`Target::Vendor`] so the
/// `vendor-surface` rule can see their public surface; no other rule
/// applies to them.
pub fn classify(rel: &str) -> Option<FileCtx> {
    if let Some(r) = rel.strip_prefix("vendor/") {
        let (name, rest) = r.split_once('/')?;
        if rest.starts_with("src/") && rest.ends_with(".rs") {
            return Some(FileCtx {
                crate_name: name.to_owned(),
                target: Target::Vendor,
            });
        }
        return None;
    }
    let (crate_name, rest) = if let Some(r) = rel.strip_prefix("crates/") {
        let (name, rest) = r.split_once('/')?;
        (name.to_owned(), rest)
    } else {
        ("cfs".to_owned(), rel)
    };
    if !rest.ends_with(".rs") {
        return None;
    }
    let target = if crate_name == "bench" || rest.starts_with("benches/") {
        Target::Bench
    } else if rest.starts_with("src/bin/") || rest == "src/main.rs" {
        Target::Bin
    } else if rest.starts_with("src/") {
        Target::Lib
    } else if rest.starts_with("tests/") {
        Target::Test
    } else if rest.starts_with("examples/") {
        Target::Example
    } else {
        return None;
    };
    Some(FileCtx { crate_name, target })
}

/// One linter finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    /// Rule identifier, e.g. `unwrap-in-lib`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A static description of one rule, for `cfs-lint rules` and the docs.
pub struct RuleInfo {
    /// The identifier used in findings and `allow(...)` directives.
    pub name: &'static str,
    /// What the rule guards, in one line.
    pub summary: &'static str,
}

/// Every rule the linter knows, in stable (alphabetical) order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "ambient-rng",
        summary: "randomness must come from the seeded topology RNG, never ambient entropy",
    },
    RuleInfo {
        name: "api-drift",
        summary: "every cfs-api/1 surface (parser, request literals, DESIGN.md §10) must agree",
    },
    RuleInfo {
        name: "determinism-race",
        summary: "scoped-worker closures must not mutate captures, lock, or iterate unordered containers",
    },
    RuleInfo {
        name: "panic-reachability",
        summary: "no panic site may be reachable from the cfsd request loop; answer typed errors",
    },
    RuleInfo {
        name: "raw-sleep",
        summary: "thread::sleep/spin loops stall real time; schedule on the virtual clock instead",
    },
    RuleInfo {
        name: "raw-socket",
        summary: "socket I/O is single-homed in crates/svc; speak cfs-api/1 through Client/Server",
    },
    RuleInfo {
        name: "raw-thread-spawn",
        summary: "use the scoped fan-out (crossbeam scope), not free-running std threads",
    },
    RuleInfo {
        name: "rc-in-send-crate",
        summary: "Rc in a crate whose types are asserted Send/Sync is a latent !Send regression",
    },
    RuleInfo {
        name: "unjustified-allow",
        summary: "every cfs-lint allow(...) must carry a one-line justification",
    },
    RuleInfo {
        name: "unordered-iteration",
        summary: "HashMap/HashSet iteration order is unspecified; use BTree* in report paths",
    },
    RuleInfo {
        name: "unused-allow",
        summary: "an allow(...) that suppresses no finding is stale; remove it",
    },
    RuleInfo {
        name: "unwrap-in-lib",
        summary: "library code must not panic: no bare unwrap(), expect() needs a literal message",
    },
    RuleInfo {
        name: "vendor-surface",
        summary: "vendored stub APIs must not leak ambient entropy or wall time (sanctioned paths excepted)",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "Instant::now/SystemTime::now leak wall time into results; use the virtual clock",
    },
];

/// True when byte `b` can be part of an identifier.
fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Byte offsets of `needle` in `line` where the match is not preceded
/// (and, if `whole_word`, not followed) by an identifier byte.
fn find_tokens(line: &str, needle: &str, whole_word: bool) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    // Only needles that *start* with an identifier char can be
    // swallowed by a longer identifier (`.unwrap()` after `cfs` is
    // fine; `Rc` inside `Arc` is not).
    let guard_prefix = needle.as_bytes().first().copied().is_some_and(is_ident);
    while let Some(p) = line[from..].find(needle) {
        let at = from + p;
        let pre_ok = !guard_prefix || at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let post_ok = !whole_word || end >= bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// A suppression directive parsed from a comment:
/// `// cfs-lint: allow(rule-a, rule-b) — why this is sound`.
#[derive(Clone, Debug)]
pub struct Directive {
    /// 0-based line the comment sits on.
    pub line: usize,
    /// 0-based line whose findings it suppresses (same line for a
    /// trailing comment, next line for a comment-only line).
    pub target: usize,
    /// Rules named inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether non-empty justification text follows the `)`.
    pub justified: bool,
}

/// Parses suppression directives out of the scanned comments.
///
/// Only regular `//` / `/* */` comments carry directives. Doc comments
/// (`///`, `//!` — whose captured text starts with `/`, `!`, or `*`)
/// are skipped: documentation frequently *describes* the directive
/// syntax, and a suppression hidden in rendered docs would be easy to
/// miss in review.
pub fn parse_directives(scanned: &ScannedFile) -> Vec<Directive> {
    let mut out = Vec::new();
    for (line, comment) in scanned.comments.iter().enumerate() {
        if matches!(comment.trim_start().chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(pos) = comment.find("cfs-lint:") else {
            continue;
        };
        let after = &comment[pos + "cfs-lint:".len()..];
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let body = &after[open + "allow(".len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = body[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '-' | '—' | ':' | '–'));
        let code_is_blank = scanned.code[line].trim().is_empty();
        let target = if code_is_blank { line + 1 } else { line };
        out.push(Directive {
            line,
            target,
            rules,
            justified: !tail.trim().is_empty(),
        });
    }
    out
}

/// `(path prefix, token)` pairs exempt from `vendor-surface`: stub
/// surfaces that intentionally mirror an upstream API whose contract
/// includes the token. Criterion's measurement loop *is* wall-clock
/// timing; everything it reports is already quarantined in
/// `crates/bench` by the `wall-clock` rule on the workspace side.
const VENDOR_SANCTIONED: &[(&str, &str)] = &[("vendor/criterion/", "Instant::now")];

/// Tokens a vendored stub's surface must not expose: the same ambient
/// entropy and wall-time vocabulary the workspace rules ban, because a
/// stub that reaches for them smuggles nondeterminism *under* the
/// seeded-RNG and virtual-clock rules (workspace code calling a clean-
/// looking stub API would still lint clean).
const VENDOR_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "rand::random",
    "getrandom",
    "Instant::now",
    "SystemTime::now",
];

/// Runs every applicable rule over one masked line, appending findings.
fn check_line(
    ctx: &FileCtx,
    path: &str,
    lineno: usize,
    line: &str,
    next_line: Option<&str>,
    in_test: bool,
    out: &mut Vec<Finding>,
) {
    let lib_like = matches!(ctx.target, Target::Lib | Target::Bin);
    let mut push = |col: usize, rule: &'static str, message: String| {
        out.push(Finding {
            path: path.to_owned(),
            line: lineno + 1,
            col: col + 1,
            rule,
            message,
        });
    };

    // Vendored stubs get exactly one rule — their surface must stay as
    // deterministic as the workspace that calls it — and none of the
    // workspace-layout rules (a stub legitimately uses HashMap, spawns
    // threads, whatever its upstream API requires).
    if ctx.target == Target::Vendor {
        if in_test {
            return;
        }
        for needle in VENDOR_TOKENS {
            for col in find_tokens(line, needle, true) {
                let sanctioned = VENDOR_SANCTIONED
                    .iter()
                    .any(|(prefix, tok)| tok == needle && path.starts_with(prefix));
                if !sanctioned {
                    push(
                        col,
                        "vendor-surface",
                        format!("vendored stub surface uses `{needle}`; stubs must be pure functions of their inputs (or get a sanctioned-path entry with a reason)"),
                    );
                }
            }
        }
        return;
    }

    // unordered-iteration: deterministic reports need deterministic
    // iteration; std's hashed containers are banned from non-test
    // library code outright (BTreeMap/BTreeSet/sorted Vec instead).
    if lib_like && !in_test {
        for needle in ["HashMap", "HashSet"] {
            for col in find_tokens(line, needle, true) {
                push(
                    col,
                    "unordered-iteration",
                    format!("`{needle}` iteration order is unspecified and varies per process; use `BTreeMap`/`BTreeSet` or sort before iterating"),
                );
            }
        }
    }

    // wall-clock: only the bench targets and cfs-obs's clock module —
    // the one sanctioned home of `Instant::now`, behind the injectable
    // `Clock` trait — may read real time; everything else uses virtual
    // clocks so runs are reproducible.
    if ctx.target != Target::Bench && path != "crates/obs/src/clock.rs" {
        for needle in ["Instant::now", "SystemTime::now"] {
            for col in find_tokens(line, needle, true) {
                push(
                    col,
                    "wall-clock",
                    format!("`{needle}` reads wall time; go through `cfs_obs::Clock` (`Monotonic`/`Virtual`) or move timing into `crates/bench`"),
                );
            }
        }
    }

    // ambient-rng: every random draw must derive from the seeded
    // topology RNG (ChaCha20Rng::seed_from_u64), in all targets.
    for needle in [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "rand::random",
    ] {
        for col in find_tokens(line, needle, true) {
            push(
                col,
                "ambient-rng",
                format!("`{needle}` draws ambient entropy; derive a `ChaCha20Rng::seed_from_u64` stream from the topology seed instead"),
            );
        }
    }

    // rc-in-send-crate: the Send/Sync compile-time assertions only
    // cover the types they name; a new Rc field elsewhere in these
    // crates would silently poison the next type that embeds it.
    if SEND_CRATES.contains(&ctx.crate_name.as_str()) && lib_like && !in_test {
        let mut cols: Vec<usize> = Vec::new();
        for needle in ["Rc<", "Rc::", "std::rc"] {
            cols.extend(find_tokens(line, needle, false));
        }
        if let Some(&col) = cols.iter().min() {
            push(
                col,
                "rc-in-send-crate",
                "`Rc` in a Send/Sync-asserted crate; use `Arc` (see engine.rs::_assert_send_sync)"
                    .to_owned(),
            );
        }
    }

    // raw-socket: like wall-clock, a single-home rule — socket I/O
    // lives only in `crates/svc`, the daemon/client pair behind the
    // versioned cfs-api/1 protocol. A socket anywhere else would move
    // bytes around the schema and its typed errors.
    if !path.starts_with("crates/svc/") {
        for needle in [
            "TcpListener",
            "TcpStream",
            "UdpSocket",
            "UnixListener",
            "UnixStream",
        ] {
            for col in find_tokens(line, needle, true) {
                push(
                    col,
                    "raw-socket",
                    format!("`{needle}` outside `crates/svc`; talk to a daemon through `cfs_svc::Client`/`Server` so every byte crosses the versioned cfs-api/1 protocol"),
                );
            }
        }
    }

    // raw-thread-spawn: free-running threads escape the deterministic
    // submission-order merge; all fan-out goes through scoped workers.
    if lib_like && !in_test {
        for col in find_tokens(line, "thread::spawn", true) {
            push(
                col,
                "raw-thread-spawn",
                "free-running `thread::spawn` breaks the deterministic fan-out/merge; use `crossbeam::thread::scope` chunked workers".to_owned(),
            );
        }
    }

    // unwrap-in-lib: library code surfaces `cfs_types::Error`, it does
    // not panic. `expect` with a literal message is the documented
    // escape hatch for genuinely unreachable states.
    if ctx.target == Target::Lib && !in_test {
        for col in find_tokens(line, ".unwrap()", false) {
            push(
                col,
                "unwrap-in-lib",
                "bare `.unwrap()` in library code; return a typed `cfs_types::Error` or use `.expect(\"<invariant>\")`".to_owned(),
            );
        }
        for col in find_tokens(line, ".expect(", false) {
            let after = &line[col + ".expect(".len()..];
            let arg = after.trim_start();
            let arg = if arg.is_empty() {
                next_line.map(str::trim_start).unwrap_or("")
            } else {
                arg
            };
            let is_literal = arg.trim_start_matches(['b', 'r', '#']).starts_with('"');
            if !is_literal {
                push(
                    col,
                    "unwrap-in-lib",
                    "`.expect(...)` without a literal message; document the invariant in a string literal or return a typed error".to_owned(),
                );
            }
        }
    }

    // raw-sleep: blocking on wall time stalls the pipeline and makes
    // timing nondeterministic; delays are modelled as virtual-clock
    // offsets (`RetryPolicy::delay_ms` feeds probe timestamps, nothing
    // actually sleeps). Like wall-clock, the bench targets and cfs-obs's
    // clock module are the only sanctioned homes.
    if ctx.target != Target::Bench && path != "crates/obs/src/clock.rs" {
        for needle in ["thread::sleep", "sleep_ms", "spin_loop"] {
            for col in find_tokens(line, needle, true) {
                push(
                    col,
                    "raw-sleep",
                    format!("`{needle}` blocks on wall time; model the delay as a virtual-clock offset (see `cfs_chaos::RetryPolicy`) or move it into `crates/bench`"),
                );
            }
        }
    }
}

/// The token-layer pass: every lexical rule over one scanned file.
/// No suppression happens here — [`finish_file`] applies directives
/// after the workspace-level semantic rules have contributed their
/// findings for the same file.
pub fn lexical_findings(ctx: &FileCtx, rel_path: &str, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (lineno, line) in scanned.code.iter().enumerate() {
        let next = scanned.code.get(lineno + 1).map(String::as_str);
        check_line(
            ctx,
            rel_path,
            lineno,
            line,
            next,
            scanned.in_test[lineno],
            &mut findings,
        );
    }
    findings
}

/// Applies one file's suppression directives to its merged findings
/// (lexical + semantic) and appends the directive-hygiene findings.
pub fn finish_file(rel_path: &str, scanned: &ScannedFile, findings: Vec<Finding>) -> Vec<Finding> {
    let directives = parse_directives(scanned);
    let mut findings = findings;

    // Apply suppressions: a directive clears findings of the named
    // rules on its target line, and each `(directive, rule)` pair
    // remembers whether it actually cleared anything.
    let mut used: Vec<Vec<bool>> = directives
        .iter()
        .map(|d| vec![false; d.rules.len()])
        .collect();
    findings.retain(|f| {
        let mut suppressed = false;
        for (di, d) in directives.iter().enumerate() {
            if d.target != f.line - 1 {
                continue;
            }
            for (ri, r) in d.rules.iter().enumerate() {
                if r == f.rule {
                    used[di][ri] = true;
                    suppressed = true;
                }
            }
        }
        !suppressed
    });

    // Directive hygiene: unknown rule names, missing justifications, and
    // suppressions with nothing to suppress are findings themselves, so
    // the suppression inventory stays auditable.
    for (di, d) in directives.iter().enumerate() {
        for (ri, r) in d.rules.iter().enumerate() {
            if !RULES.iter().any(|info| info.name == r) {
                // Unknown names are unjustified-allow's business; firing
                // unused-allow too would double-report one mistake.
                findings.push(Finding {
                    path: rel_path.to_owned(),
                    line: d.line + 1,
                    col: 1,
                    rule: "unjustified-allow",
                    message: format!("allow() names unknown rule `{r}`"),
                });
            } else if !used[di][ri] {
                findings.push(Finding {
                    path: rel_path.to_owned(),
                    line: d.line + 1,
                    col: 1,
                    rule: "unused-allow",
                    message: format!(
                        "allow({r}) suppresses nothing on its target line; remove the stale directive"
                    ),
                });
            }
        }
        if !d.justified {
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: d.line + 1,
                col: 1,
                rule: "unjustified-allow",
                message:
                    "cfs-lint allow(...) without a justification; append `— <one-line reason>`"
                        .to_owned(),
            });
        }
    }

    findings.sort();
    findings
}

/// Lints one file standalone: scan, lexical rules, suppression,
/// hygiene. The semantic rules need the whole workspace and live in
/// [`crate::check_workspace`]; this entry point is what fixtures and
/// unit tests use for single-file behavior.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let Some(ctx) = classify(rel_path) else {
        return Vec::new();
    };
    let scanned = scan(source);
    let findings = lexical_findings(&ctx, rel_path, &scanned);
    finish_file(rel_path, &scanned, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_layout() {
        assert_eq!(
            classify("crates/core/src/engine.rs").map(|c| c.target),
            Some(Target::Lib)
        );
        assert_eq!(
            classify("crates/experiments/src/bin/fig2.rs").map(|c| c.target),
            Some(Target::Bin)
        );
        assert_eq!(
            classify("crates/core/tests/determinism.rs").map(|c| c.target),
            Some(Target::Test)
        );
        assert_eq!(
            classify("crates/topology/examples/stats.rs").map(|c| c.target),
            Some(Target::Example)
        );
        assert_eq!(
            classify("crates/bench/src/lib.rs").map(|c| c.target),
            Some(Target::Bench)
        );
        assert_eq!(classify("src/main.rs").map(|c| c.target), Some(Target::Bin));
        assert_eq!(classify("src/lib.rs").map(|c| c.target), Some(Target::Lib));
        assert!(classify("README.md").is_none());
        assert_eq!(
            classify("vendor/rand/src/lib.rs").map(|c| c.target),
            Some(Target::Vendor)
        );
        assert_eq!(
            classify("vendor/rand/src/lib.rs").map(|c| c.crate_name),
            Some("rand".to_owned())
        );
        assert!(classify("vendor/rand/Cargo.toml").is_none());
    }

    #[test]
    fn vendor_surface_bans_entropy_but_not_layout_rules() {
        // A stub may use HashMap and spawn threads (its upstream API may
        // demand it); what it may not do is read entropy or wall time.
        let src = "use std::collections::HashMap;\nfn f() { let r = OsRng; let t = std::time::Instant::now(); }\n";
        let f = check_source("vendor/rand/src/lib.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "vendor-surface"));
    }

    #[test]
    fn criterion_wall_clock_is_sanctioned() {
        let src = "fn bench() { let start = Instant::now(); }\n";
        assert!(check_source("vendor/criterion/src/lib.rs", src).is_empty());
        let f = check_source("vendor/crossbeam/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn wall_clock_sanction_list_is_exactly_the_clock_module() {
        // The duration sidecar (profile.rs) and the diff engine
        // (diff.rs) consume timings but must never *capture* them —
        // duration capture lives only behind `cfs_obs::Clock` in
        // clock.rs. A stray `Instant::now` in any other obs module is a
        // finding.
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(check_source("crates/obs/src/clock.rs", src).is_empty());
        for path in [
            "crates/obs/src/profile.rs",
            "crates/obs/src/diff.rs",
            "crates/obs/src/trace.rs",
        ] {
            let f = check_source(path, src);
            assert_eq!(f.len(), 1, "{path} must not be a sanctioned clock home");
            assert_eq!(f[0].rule, "wall-clock", "{path}");
        }
    }

    #[test]
    fn string_contents_never_fire() {
        let f = check_source(
            "crates/core/src/x.rs",
            "fn f() { let _ = \"HashMap Instant::now() .unwrap()\"; }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_module_is_exempt_from_unwrap() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { Some(1).unwrap(); }\n}\n";
        assert!(check_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn documented_expect_is_allowed() {
        let ok = "fn f() { Some(1).expect(\"seeded world always has an AS\"); }\n";
        assert!(check_source("crates/core/src/x.rs", ok).is_empty());
        let bad = "fn f() { Some(1).expect(msg); }\n";
        assert_eq!(check_source("crates/core/src/x.rs", bad).len(), 1);
    }

    #[test]
    fn suppression_requires_justification() {
        let justified =
            "fn f() { Some(1).unwrap() } // cfs-lint: allow(unwrap-in-lib) — demo invariant\n";
        assert!(check_source("crates/core/src/x.rs", justified).is_empty());
        let bare = "fn f() { Some(1).unwrap() } // cfs-lint: allow(unwrap-in-lib)\n";
        let f = check_source("crates/core/src/x.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unjustified-allow");
    }

    #[test]
    fn standalone_directive_covers_next_line() {
        let src = "// cfs-lint: allow(wall-clock) — operator-facing elapsed print\nlet t = Instant::now();\n";
        assert!(check_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        // The doc text *describes* the syntax; it must neither suppress
        // the finding on the next line nor trip unjustified-allow.
        let src = "/// Write `// cfs-lint: allow(wall-clock)` to suppress.\nfn f() { let _ = Instant::now(); }\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn stale_allow_fires_unused_allow() {
        let src =
            "fn f() { let x = 1; } // cfs-lint: allow(wall-clock) — stale: nothing to silence\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unused-allow");
    }

    #[test]
    fn partially_used_allow_flags_only_the_stale_rule() {
        let src = "fn f() { Some(1).unwrap() } // cfs-lint: allow(unwrap-in-lib, wall-clock) — only one applies\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unused-allow");
        assert!(f[0].message.contains("wall-clock"), "{f:?}");
    }

    #[test]
    fn unknown_rule_does_not_double_report_as_unused() {
        let src = "// cfs-lint: allow(no-such-rule) — wrong name on purpose\nfn f() {}\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unjustified-allow");
    }

    #[test]
    fn obs_clock_module_is_the_sanctioned_wall_clock_home() {
        let src = "pub fn origin() { let _ = std::time::Instant::now(); }\n";
        assert!(check_source("crates/obs/src/clock.rs", src).is_empty());
        let f = check_source("crates/obs/src/recorder.rs", src);
        assert_eq!(f.len(), 1, "only clock.rs is sanctioned: {f:?}");
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn raw_sleep_banned_outside_clock_and_bench() {
        let src = "fn f() { std::thread::sleep(d); std::hint::spin_loop(); }\n";
        let f = check_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "raw-sleep"));
        assert!(check_source("crates/obs/src/clock.rs", src).is_empty());
        assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_socket_single_homed_in_svc() {
        // Any file inside crates/svc — server, client, or a future
        // module — may open sockets; everywhere else is a finding, in
        // every target kind (tests and benches drive daemons through
        // the cfs binary or `cfs_svc::Client`, never raw std::net).
        let src = "fn f() { let l = std::net::TcpListener::bind(a); }\n";
        assert!(check_source("crates/svc/src/server.rs", src).is_empty());
        assert!(check_source("crates/svc/src/client.rs", src).is_empty());
        for path in [
            "crates/core/src/x.rs",
            "src/main.rs",
            "tests/service_cli.rs",
            "crates/bench/benches/serve.rs",
        ] {
            let f = check_source(path, src);
            assert_eq!(f.len(), 1, "{path} must not open sockets: {f:?}");
            assert_eq!(f[0].rule, "raw-socket", "{path}");
        }
    }

    #[test]
    fn arc_does_not_trip_rc_rule() {
        let src = "use std::sync::Arc;\nfn f(x: Arc<u32>) -> Arc<u32> { x }\n";
        assert!(check_source("crates/kb/src/x.rs", src).is_empty());
    }
}
