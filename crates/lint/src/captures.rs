//! Closure-capture extraction and the `determinism-race` rule.
//!
//! The engine's parallel stages (observation extraction, remote-verdict
//! prefill, probe fan-out) are scoped-thread maps: each worker closure
//! may only *read* captured state and return its chunk's results; the
//! merge happens on the coordinating thread in submission order. That
//! discipline is what the threads {1,2,8} byte-identity tests check
//! dynamically. This module is the static complement: it finds
//! `.spawn(move |…| { … })` closures, approximates their capture sets
//! (identifiers used minus identifiers bound locally), and flags the
//! three ways workers leak scheduling order into results:
//!
//! 1. **shared mutable captures** — a mutation method or assignment on
//!    a captured identifier (`results.push(..)` from two workers races
//!    on ordering even when it does not race on memory);
//! 2. **non-commutative accumulation** — interior-mutability machinery
//!    (`Mutex`, `RwLock`, `RefCell`, `Cell`, `Atomic*`, `.lock()`,
//!    `.fetch_*`) inside a worker closure: lock acquisition order is
//!    scheduler-dependent, so anything sequenced through it is too;
//! 3. **unordered-container iteration** — `HashMap`/`HashSet` mentions
//!    inside a worker closure; iteration order feeds whatever the
//!    closure returns.
//!
//! The extraction is a line-oriented approximation over masked code (no
//! type information): identifiers bound by `let` patterns, closure
//! parameter lists, and `for` patterns anywhere in the body count as
//! locals; everything else that is used as a plain variable counts as
//! captured. Over-approximating the *local* set makes the rule quieter,
//! which is the right direction — the dynamic byte-identity tests
//! remain the backstop.

use std::collections::BTreeSet;

use crate::resolve::{SourceFile, Workspace};
use crate::rules::{Finding, Target};

/// One `.spawn(move |…| { … })` closure found in a source file.
pub struct SpawnClosure {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 0-based line of the `.spawn(` token.
    pub line: usize,
    /// 0-based first line of the closure body (the line carrying the
    /// opening brace).
    pub body_start: usize,
    /// Column of the opening brace on `body_start` — text before it on
    /// that line (`handles.push(scope.spawn(…` and friends) belongs to
    /// the *coordinator*, not the closure.
    pub body_start_col: usize,
    /// 0-based last line of the closure body (the line carrying the
    /// matching close brace).
    pub body_end: usize,
    /// Column of the matching close brace on `body_end`.
    pub body_end_col: usize,
    /// Approximated capture set: identifiers used but not bound inside.
    pub captures: BTreeSet<String>,
}

/// The part of masked line `ln` that lies inside the closure body,
/// with the char offset it starts at (for column reporting).
fn body_slice<'a>(file: &'a SourceFile, c: &SpawnClosure, ln: usize) -> (usize, &'a str) {
    let line = file.scanned.code[ln].as_str();
    let start = if ln == c.body_start {
        c.body_start_col
    } else {
        0
    };
    let end = if ln == c.body_end {
        (c.body_end_col + 1).min(line.len())
    } else {
        line.len()
    };
    (start, &line[start.min(end)..end])
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while",
];

/// Splits a line into `(start_col, ident)` words.
fn idents(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'_' || bytes[i].is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// Collects identifiers *bound* on one body line: `let` patterns (up to
/// the `=`), closure parameter lists (`|a, (b, c)|`), and `for` patterns
/// (up to the `in`).
fn bound_on_line(line: &str, locals: &mut BTreeSet<String>) {
    let bytes = line.as_bytes();
    for (col, word) in idents(line) {
        let after = &line[col + word.len()..];
        match word {
            "let" => {
                // Bind everything between `let` and the first `=` that
                // is an assignment (not `==`); lowercase idents only —
                // uppercase are enum variants/types in the pattern.
                let upto = find_assign(after).unwrap_or(after.len());
                bind_pattern_idents(&after[..upto], locals);
            }
            "for" => {
                if let Some(in_at) = after.find(" in ") {
                    bind_pattern_idents(&after[..in_at], locals);
                }
            }
            "move" => {
                // `move |a, b|` — parameter list of a nested closure.
                let rest = after.trim_start();
                if let Some(stripped) = rest.strip_prefix('|') {
                    if let Some(close) = stripped.find('|') {
                        bind_pattern_idents(&stripped[..close], locals);
                    }
                }
            }
            _ => {}
        }
    }
    // Closure parameter lists not introduced by `move`: a `|` directly
    // preceded (ignoring spaces) by `(`, `,`, or `=` starts parameters.
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'|' {
            let prev = line[..i].trim_end().as_bytes().last().copied();
            let starts = matches!(prev, Some(b'(') | Some(b',') | Some(b'=') | None);
            // `a || b` / `a | b` have an operand before the pipe.
            if starts && bytes.get(i + 1) != Some(&b'|') {
                if let Some(close) = line[i + 1..].find('|') {
                    bind_pattern_idents(&line[i + 1..i + 1 + close], locals);
                    i += close + 2;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Position of the first top-level assignment `=` in `s` (skipping
/// `==`, `<=`, `>=`, `!=`, and `=>`), or `None`.
fn find_assign(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'=' {
            let next_eq = b.get(i + 1) == Some(&b'=');
            let arrow = b.get(i + 1) == Some(&b'>');
            let prev_cmp = i > 0 && matches!(b[i - 1], b'<' | b'>' | b'!' | b'=');
            if !next_eq && !arrow && !prev_cmp {
                return Some(i);
            }
            if next_eq {
                i += 1;
            }
        }
        i += 1;
    }
    None
}

/// Adds the lowercase identifiers of a binding pattern to `locals`.
fn bind_pattern_idents(pat: &str, locals: &mut BTreeSet<String>) {
    for (_, word) in idents(pat) {
        if KEYWORDS.contains(&word) || word.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        locals.insert(word.to_owned());
    }
}

/// Mutation methods that impose an order on their receiver. Receivers
/// are matched as plain `ident.method(` — a chained `x.y.push(..)`
/// mutates a field of `x`, which the plain-ident form deliberately
/// skips (field mutation through a shared borrow will not compile).
const MUTATION_METHODS: &[&str] = &[
    ".append(",
    ".clear(",
    ".extend(",
    ".insert(",
    ".push(",
    ".push_str(",
    ".remove(",
    ".sort(",
    ".sort_unstable(",
];

const INTERIOR_MUT_TOKENS: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell<",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU32",
    "AtomicBool",
    "AtomicI64",
    ".lock()",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
];

const UNORDERED_TOKENS: &[&str] = &["HashMap", "HashSet"];

/// Finds every `.spawn(move |…|` closure with a braced body in the
/// workspace's library/binary code (masked view).
pub fn find_spawn_closures(ws: &Workspace) -> Vec<SpawnClosure> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !matches!(file.ctx.target, Target::Lib | Target::Bin) {
            continue;
        }
        for (lineno, line) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            let mut from = 0usize;
            while let Some(p) = line[from..].find(".spawn(") {
                let at = from + p;
                from = at + ".spawn(".len();
                if let Some(c) = extract_closure(file, lineno, from) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Parses one closure starting right after `.spawn(`: optional `move`,
/// a `|…|` parameter list, then a braced body (single-expression
/// closures have nothing to race on a following line and are skipped).
fn extract_closure(file: &SourceFile, lineno: usize, after_paren: usize) -> Option<SpawnClosure> {
    let line = &file.scanned.code[lineno];
    let rest = line[after_paren..].trim_start();
    let rest = rest.strip_prefix("move").unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix('|')?;
    let params_end = rest.find('|')?;
    let mut locals = BTreeSet::new();
    bind_pattern_idents(&rest[..params_end], &mut locals);
    let after_params = rest[params_end + 1..].trim_start();

    // Locate the opening brace: same line after the params, or the
    // next non-empty masked line. Its column matters — text before it
    // on the spawn line (`handles.push(scope.spawn(…`) runs on the
    // coordinating thread and must not be analyzed as closure body.
    let (body_start, open_col) = if after_params.starts_with('{') {
        (lineno, line.len() - after_params.len())
    } else if after_params.is_empty() {
        let next = file
            .scanned
            .code
            .iter()
            .enumerate()
            .skip(lineno + 1)
            .find(|(_, l)| !l.trim().is_empty())?;
        let trimmed = next.1.trim_start();
        if !trimmed.starts_with('{') {
            return None;
        }
        (next.0, next.1.len() - trimmed.len())
    } else {
        return None; // expression-bodied closure
    };

    // Brace-match to the body end, recording the close column too.
    let mut depth = 0i32;
    let mut end: Option<(usize, usize)> = None;
    'scan: for ln in body_start..file.scanned.code.len() {
        let from = if ln == body_start { open_col } else { 0 };
        for (col, ch) in file.scanned.code[ln].char_indices() {
            if col < from {
                continue;
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some((ln, col));
                        break 'scan;
                    }
                }
                _ => {}
            }
        }
    }
    let (body_end, body_end_col) = end?; // None: unbalanced — give up

    let mut closure = SpawnClosure {
        path: file.path.clone(),
        line: lineno,
        body_start,
        body_start_col: open_col,
        body_end,
        body_end_col,
        captures: BTreeSet::new(),
    };

    // Pass 1: everything bound anywhere in the body counts as local.
    for ln in body_start..=body_end {
        let (_, text) = body_slice(file, &closure, ln);
        bound_on_line(text, &mut locals);
    }
    // Pass 2: plain variable uses not bound locally are captures.
    let mut captures = BTreeSet::new();
    for ln in body_start..=body_end {
        let (_, l) = body_slice(file, &closure, ln);
        let bytes = l.as_bytes();
        for (col, word) in idents(l) {
            if KEYWORDS.contains(&word)
                || word.starts_with(|c: char| c.is_ascii_uppercase())
                || locals.contains(word)
            {
                continue;
            }
            let before = l[..col].trim_end().as_bytes().last().copied();
            if before == Some(b'.') || l[..col].ends_with("::") {
                continue; // field/method/associated-path segment
            }
            let after = bytes.get(col + word.len()).copied();
            if after == Some(b'(') || after == Some(b'!') {
                continue; // call or macro, handled by the call graph
            }
            if l[col + word.len()..].starts_with("::") {
                continue; // path prefix (module name)
            }
            captures.insert(word.to_owned());
        }
    }
    closure.captures = captures;
    Some(closure)
}

/// Runs the `determinism-race` rule over all spawn closures.
pub fn determinism_race_findings(ws: &Workspace, closures: &[SpawnClosure]) -> Vec<Finding> {
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut findings = Vec::new();
    for c in closures {
        let Some(file) = by_path.get(c.path.as_str()) else {
            continue;
        };
        for ln in c.body_start..=c.body_end {
            let (offset, line) = body_slice(file, c, ln);
            // (1) mutation methods / assignments on captured idents.
            for (col, word) in idents(line) {
                if !c.captures.contains(word) {
                    continue;
                }
                let after = &line[col + word.len()..];
                let method = MUTATION_METHODS
                    .iter()
                    .find(|m| after.starts_with(*m))
                    .map(|m| &m[1..m.len() - 1]);
                let assigned = {
                    let t = after.trim_start();
                    let b = t.as_bytes();
                    match b.first() {
                        Some(b'=') => b.get(1) != Some(&b'=') && b.get(1) != Some(&b'>'),
                        Some(b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^') => {
                            b.get(1) == Some(&b'=')
                        }
                        _ => false,
                    }
                };
                if let Some(m) = method {
                    findings.push(Finding {
                        path: c.path.clone(),
                        line: ln + 1,
                        col: offset + col + 1,
                        rule: "determinism-race",
                        message: format!(
                            "worker closure mutates captured `{word}` via `.{m}(..)`; workers must return their chunk's results and let the coordinator merge in submission order"
                        ),
                    });
                } else if assigned {
                    findings.push(Finding {
                        path: c.path.clone(),
                        line: ln + 1,
                        col: offset + col + 1,
                        rule: "determinism-race",
                        message: format!(
                            "worker closure assigns to captured `{word}`; last-writer-wins depends on scheduling"
                        ),
                    });
                }
            }
            // (2) interior mutability machinery inside the closure.
            for tok in INTERIOR_MUT_TOKENS {
                let guard_prefix = tok.as_bytes()[0] != b'.';
                let mut from = 0usize;
                while let Some(p) = line[from..].find(tok) {
                    let at = from + p;
                    from = at + tok.len();
                    let pre_ok = !guard_prefix || at == 0 || !is_ident(line.as_bytes()[at - 1]);
                    if pre_ok {
                        findings.push(Finding {
                            path: c.path.clone(),
                            line: ln + 1,
                            col: offset + at + 1,
                            rule: "determinism-race",
                            message: format!(
                                "`{}` inside a worker closure sequences results by lock/RMW order, which is scheduler-dependent",
                                tok.trim_end_matches('(').trim_end_matches('<'),
                            ),
                        });
                    }
                }
            }
            // (3) unordered containers inside the closure.
            for tok in UNORDERED_TOKENS {
                let mut from = 0usize;
                while let Some(p) = line[from..].find(tok) {
                    let at = from + p;
                    from = at + tok.len();
                    let pre_ok = at == 0 || !is_ident(line.as_bytes()[at - 1]);
                    let post_ok = !line
                        .as_bytes()
                        .get(at + tok.len())
                        .copied()
                        .is_some_and(is_ident);
                    if pre_ok && post_ok {
                        findings.push(Finding {
                            path: c.path.clone(),
                            line: ln + 1,
                            col: offset + at + 1,
                            rule: "determinism-race",
                            message: format!(
                                "`{tok}` inside a worker closure: unordered iteration feeds the chunk result; use BTreeMap/BTreeSet or sort before returning"
                            ),
                        });
                    }
                }
            }
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(vec![(
            "crates/core/src/stage.rs".to_owned(),
            src.to_owned(),
        )])
    }

    fn race(src: &str) -> Vec<Finding> {
        let w = ws(src);
        let closures = find_spawn_closures(&w);
        determinism_race_findings(&w, &closures)
    }

    #[test]
    fn clean_chunk_map_collect_is_silent() {
        let findings = race(
            "fn stage(chunks: &[&[u32]]) {\n\
             crossbeam::thread::scope(|scope| {\n\
             for chunk in chunks {\n\
             scope.spawn(move |_| {\n\
             let resolver = mk(kb, corrected);\n\
             chunk.iter().map(|t| extract(t, &resolver, rec)).collect::<Vec<_>>()\n\
             });\n\
             }\n\
             }).unwrap();\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn push_on_captured_vec_fires() {
        let findings = race(
            "fn stage() {\n\
             scope.spawn(move |_| {\n\
             for t in chunk {\n\
             results.push(work(t));\n\
             }\n\
             });\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("`results`"));
    }

    #[test]
    fn push_on_local_vec_is_silent() {
        let findings = race(
            "fn stage() {\n\
             scope.spawn(move |_| {\n\
             let mut results = Vec::new();\n\
             for t in chunk {\n\
             results.push(work(t));\n\
             }\n\
             results\n\
             });\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn mutex_and_hashmap_inside_closure_fire() {
        let findings = race(
            "fn stage() {\n\
             scope.spawn(move |_| {\n\
             let guard = shared.lock().unwrap();\n\
             for (k, v) in HashMap::new() {\n\
             use_it(k, v);\n\
             }\n\
             });\n\
             }\n",
        );
        let rules: Vec<&str> = findings
            .iter()
            .map(|f| f.message.split(' ').next().unwrap())
            .collect();
        assert_eq!(findings.len(), 2, "{findings:#?} {rules:?}");
    }

    #[test]
    fn assignment_to_captured_fires_but_comparison_does_not() {
        let findings = race(
            "fn stage() {\n\
             scope.spawn(move |_| {\n\
             if total == 0 { return; }\n\
             total += chunk.len();\n\
             });\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("assigns to captured `total`"));
    }

    #[test]
    fn nested_closure_params_are_locals() {
        let findings = race(
            "fn stage() {\n\
             scope.spawn(move |_| {\n\
             chunk.iter().map(|(ip, ixp)| tester.probe(*ixp, *ip)).collect::<Vec<_>>()\n\
             });\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
