//! The `api-drift` rule: one protocol, one vocabulary, everywhere.
//!
//! `cfs-api/1` is defined once — the `SCHEMA` const and the
//! `parse_request` match arms in `crates/svc/src/proto.rs` — but its
//! vocabulary (op names, delta kinds, error codes, the schema tag
//! itself) is *spoken* in several other places: the CLI's hand-built
//! request lines in `src/main.rs`, the daemon embedder's error replies,
//! and the op/kind/code tables in DESIGN.md §10. Each of those surfaces
//! can silently rot when the authority changes. This module extracts
//! every surface and reports each disagreement as a finding:
//!
//! * an op/kind used in a request literal that `parse_request` does not
//!   accept;
//! * a `cfs-api/N` literal that differs from `SCHEMA`;
//! * an error code produced via `ApiError::new(..)` that DESIGN.md does
//!   not document, and a documented code no code path produces;
//! * a DESIGN.md op/kind table row with no parser arm, and a parser arm
//!   with no table row.
//!
//! Extraction is lexical over the masked scan (string *delimiters*
//! survive masking and strictly alternate, so literal spans are exact),
//! with raw text recovered per char index — masked and raw lines are
//! char-aligned by construction. Files with no `SCHEMA` authority in
//! scope produce no findings: the rule only engages where a protocol is
//! actually defined.

use std::collections::BTreeSet;

use crate::resolve::{SourceFile, Workspace};
use crate::rules::{Finding, Target};

/// Everything the rule extracted, dumpable via `cfs-lint graph --json`.
#[derive(Default)]
pub struct ApiSurface {
    /// The authoritative schema tag (`cfs-api/1`) and where it lives.
    pub schema: Option<(String, String, usize)>,
    /// Op names accepted by the parser's `match op` arms.
    pub ops: BTreeSet<String>,
    /// Delta kinds accepted by the parser's `match kind` arms.
    pub kinds: BTreeSet<String>,
    /// Error codes produced anywhere (first literal arg of
    /// `ApiError::new`), with one producing site each.
    pub codes_used: Vec<(String, String, usize)>,
    /// Ops documented in the DESIGN.md §10 table.
    pub doc_ops: BTreeSet<String>,
    /// Kinds documented in the DESIGN.md §10 table.
    pub doc_kinds: BTreeSet<String>,
    /// Codes documented in the DESIGN.md "typed codes" sentence.
    pub doc_codes: BTreeSet<String>,
}

/// One string literal occurrence in non-test code: `(line, col,
/// unescaped-ish content)` — `\"` sequences are collapsed to `"` so
/// `format!`-built request lines read like the wire form.
fn string_literals(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut in_str = false;
    let mut start: (usize, usize) = (0, 0);
    let mut buf = String::new();
    for (lineno, masked) in file.scanned.code.iter().enumerate() {
        let raw: Vec<char> = file.raw_lines[lineno].chars().collect();
        for (col, ch) in masked.chars().enumerate() {
            if ch == '"' {
                if in_str {
                    out.push((start.0, start.1, std::mem::take(&mut buf)));
                } else {
                    start = (lineno, col);
                }
                in_str = !in_str;
            } else if in_str {
                buf.push(raw.get(col).copied().unwrap_or(' '));
            }
        }
        if in_str {
            buf.push('\n');
        }
    }
    for (_, _, s) in &mut out {
        *s = s.replace("\\\"", "\"");
    }
    out.retain(|(line, _, _)| !file.scanned.in_test[*line]);
    out
}

/// The first string literal at or after `(line, col)` in masked code,
/// skipping only whitespace; `None` when anything else intervenes.
fn literal_right_after(file: &SourceFile, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut lineno = line;
    let mut at = col;
    loop {
        let masked = file.scanned.code.get(lineno)?;
        for (c, ch) in masked.chars().enumerate().skip(at) {
            if ch == '"' {
                return Some((lineno, c));
            }
            if !ch.is_whitespace() {
                return None;
            }
        }
        lineno += 1;
        at = 0;
    }
}

/// Extracts the parser vocabulary of a `match <ident> {` block: the
/// string-literal arm patterns at the block's own depth (nested matches
/// belong to *their* extraction pass, arm bodies are deeper than 1).
fn match_arm_literals(file: &SourceFile, needle: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let lits = string_literals(file);
    for (lineno, masked) in file.scanned.code.iter().enumerate() {
        let Some(p) = masked.find(needle) else {
            continue;
        };
        if file.scanned.in_test[lineno] {
            continue;
        }
        let mut depth = 0i32;
        let mut ln = lineno;
        let mut from = p + needle.len() - 1; // at the `{`
        'block: while let Some(line) = file.scanned.code.get(ln) {
            let chars: Vec<char> = line.chars().collect();
            let mut c = from;
            while c < chars.len() {
                match chars[c] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break 'block;
                        }
                    }
                    _ => {}
                }
                c += 1;
            }
            ln += 1;
            from = 0;
            // Arm lines live at depth 1; a pattern literal precedes `=>`.
            if depth == 1 {
                if let Some(line) = file.scanned.code.get(ln) {
                    if let Some(arrow) = line.find("=>") {
                        for (l, col, content) in &lits {
                            if *l == ln && *col < arrow {
                                out.insert(content.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn is_ident_ch(c: char) -> bool {
    c == '_' || c == '-' || c.is_ascii_alphanumeric()
}

/// `"key":"value"` occurrences inside one literal's content.
fn wire_members<'a>(content: &'a str, key: &str) -> Vec<&'a str> {
    let pat = format!("\"{key}\":\"");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = content[from..].find(&pat) {
        let vstart = from + p + pat.len();
        let vend = content[vstart..]
            .find('"')
            .map_or(content.len(), |q| vstart + q);
        let value = &content[vstart..vend];
        // A `{name}` interpolation is a runtime value, not a hard-coded
        // wire literal — only fixed strings are held against the parser.
        if !value.contains('{') {
            out.push(value);
        }
        from = vend;
    }
    out
}

/// `cfs-api/N` tokens inside one literal's content.
fn schema_tokens(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = content[from..].find("cfs-api/") {
        let start = from + p;
        let mut end = start + "cfs-api/".len();
        let bytes = content.as_bytes();
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end > start + "cfs-api/".len() {
            out.push(content[start..end].to_owned());
        }
        from = end;
    }
    out
}

/// Extracts the full API surface from the workspace.
pub fn extract_surface(ws: &Workspace) -> ApiSurface {
    let mut surface = ApiSurface::default();
    for file in &ws.files {
        if !matches!(file.ctx.target, Target::Lib | Target::Bin) {
            continue;
        }
        for (lineno, masked) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            if surface.schema.is_none() && masked.contains("const SCHEMA: &str") {
                if let Some((l, c)) = masked
                    .find('=')
                    .and_then(|eq| literal_right_after(file, lineno, eq + 1))
                {
                    if let Some((_, _, content)) = string_literals(file)
                        .into_iter()
                        .find(|(ll, cc, _)| (*ll, *cc) == (l, c))
                    {
                        surface.schema = Some((content, file.path.clone(), lineno + 1));
                        surface.ops = match_arm_literals(file, "match op {");
                        surface.kinds = match_arm_literals(file, "match kind {");
                    }
                }
            }
            let mut from = 0usize;
            while let Some(p) = masked[from..].find("ApiError::new(") {
                let after = from + p + "ApiError::new(".len();
                from = after;
                if let Some((l, c)) = literal_right_after(file, lineno, after) {
                    if let Some((_, _, content)) = string_literals(file)
                        .into_iter()
                        .find(|(ll, cc, _)| (*ll, *cc) == (l, c))
                    {
                        surface.codes_used.push((content, file.path.clone(), l + 1));
                    }
                }
            }
        }
    }
    if let Some(design) = &ws.design_md {
        extract_doc_surface(design, &mut surface);
    }
    surface
}

/// Parses the DESIGN.md §10 op table (`| op | fields | … |` header) and
/// the "typed codes:" sentence.
fn extract_doc_surface(design: &str, surface: &mut ApiSurface) {
    let lines: Vec<&str> = design.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let squashed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if squashed.starts_with("|op|fields|") {
            for row in lines.iter().skip(i + 2) {
                let row = row.trim();
                if !row.starts_with('|') {
                    break;
                }
                let cells: Vec<&str> = row.trim_matches('|').split('|').collect();
                if cells.is_empty() {
                    continue;
                }
                let op: String = cells[0].chars().filter(|c| is_ident_ch(*c)).collect();
                if !op.is_empty() {
                    surface.doc_ops.insert(op);
                }
                if let Some(fields) = cells.get(1) {
                    // Table rows write the discriminator unquoted-key
                    // style: `kind:"campaign"`.
                    let fields = fields.replace('`', "");
                    let mut from = 0usize;
                    while let Some(p) = fields[from..].find("kind:\"") {
                        let vstart = from + p + "kind:\"".len();
                        let vend = fields[vstart..]
                            .find('"')
                            .map_or(fields.len(), |q| vstart + q);
                        surface.doc_kinds.insert(fields[vstart..vend].to_owned());
                        from = vend;
                    }
                }
            }
        }
        if let Some(p) = line.find("typed codes:") {
            // Backticked codes follow, possibly wrapping lines, ending
            // at the sentence's period.
            let mut text = line[p..].to_owned();
            for cont in lines.iter().skip(i + 1) {
                if text.contains(". ") || text.trim_end().ends_with('.') {
                    break;
                }
                text.push(' ');
                text.push_str(cont);
            }
            let mut rest = text.as_str();
            while let Some(b1) = rest.find('`') {
                let Some(b2) = rest[b1 + 1..].find('`') else {
                    break;
                };
                let code = &rest[b1 + 1..b1 + 1 + b2];
                if code.chars().all(|c| c == '_' || c.is_ascii_lowercase()) && !code.is_empty() {
                    surface.doc_codes.insert(code.to_owned());
                }
                rest = &rest[b1 + b2 + 2..];
            }
        }
    }
}

fn design_line(design: &str, needle: &str) -> usize {
    design
        .lines()
        .position(|l| l.contains(needle))
        .map_or(1, |i| i + 1)
}

/// Runs the `api-drift` rule: extract the surface, compare every pair
/// of surfaces that must agree, one finding per disagreement.
pub fn api_drift_findings(ws: &Workspace, surface: &ApiSurface) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some((schema, auth_path, auth_line)) = &surface.schema else {
        return findings; // no protocol defined in this workspace
    };

    // 1. Request literals must use accepted ops/kinds and the exact
    //    schema tag.
    for file in &ws.files {
        if !matches!(file.ctx.target, Target::Lib | Target::Bin) {
            continue;
        }
        for (line, col, content) in string_literals(file) {
            for tok in schema_tokens(&content) {
                if tok != *schema {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: line + 1,
                        col: col + 1,
                        rule: "api-drift",
                        message: format!(
                            "literal mentions {tok:?} but the authority ({auth_path}:{auth_line}) defines {schema:?}"
                        ),
                    });
                }
            }
            if file.path == *auth_path {
                continue; // the parser's own arm literals are the authority
            }
            for op in wire_members(&content, "op") {
                if !surface.ops.contains(op) {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: line + 1,
                        col: col + 1,
                        rule: "api-drift",
                        message: format!(
                            "request literal uses op {op:?}, which `parse_request` does not accept (ops: {:?})",
                            surface.ops
                        ),
                    });
                }
            }
            for kind in wire_members(&content, "kind") {
                if !surface.kinds.contains(kind) {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: line + 1,
                        col: col + 1,
                        rule: "api-drift",
                        message: format!(
                            "request literal uses delta kind {kind:?}, which `parse_request` does not accept (kinds: {:?})",
                            surface.kinds
                        ),
                    });
                }
            }
        }
    }

    // 2. DESIGN.md §10 must document exactly the parser's vocabulary
    //    and the produced error codes. No DESIGN.md in the workspace →
    //    nothing to hold the code against.
    let Some(design) = &ws.design_md else {
        findings.sort();
        return findings;
    };
    let table_line = design_line(design, "| op | fields |");
    for op in &surface.ops {
        if !surface.doc_ops.contains(op) {
            findings.push(Finding {
                path: "DESIGN.md".into(),
                line: table_line,
                col: 1,
                rule: "api-drift",
                message: format!(
                    "op {op:?} is accepted by `parse_request` but missing from the §10 op table"
                ),
            });
        }
    }
    for op in &surface.doc_ops {
        if !surface.ops.contains(op) {
            findings.push(Finding {
                path: "DESIGN.md".into(),
                line: table_line,
                col: 1,
                rule: "api-drift",
                message: format!("§10 documents op {op:?}, which `parse_request` does not accept"),
            });
        }
    }
    for kind in &surface.kinds {
        if !surface.doc_kinds.contains(kind) {
            findings.push(Finding {
                path: "DESIGN.md".into(),
                line: table_line,
                col: 1,
                rule: "api-drift",
                message: format!("delta kind {kind:?} is accepted by `parse_request` but missing from the §10 op table"),
            });
        }
    }
    for kind in &surface.doc_kinds {
        if !surface.kinds.contains(kind) {
            findings.push(Finding {
                path: "DESIGN.md".into(),
                line: table_line,
                col: 1,
                rule: "api-drift",
                message: format!(
                    "§10 documents delta kind {kind:?}, which `parse_request` does not accept"
                ),
            });
        }
    }
    let codes_line = design_line(design, "typed codes:");
    let used: BTreeSet<&str> = surface
        .codes_used
        .iter()
        .map(|(c, _, _)| c.as_str())
        .collect();
    for (code, path, line) in &surface.codes_used {
        if !surface.doc_codes.contains(code) {
            findings.push(Finding {
                path: path.clone(),
                line: *line,
                col: 1,
                rule: "api-drift",
                message: format!(
                    "error code {code:?} is produced here but not documented in DESIGN.md §10's typed-codes list"
                ),
            });
        }
    }
    for code in &surface.doc_codes {
        if !used.contains(code.as_str()) {
            findings.push(Finding {
                path: "DESIGN.md".into(),
                line: codes_line,
                col: 1,
                rule: "api-drift",
                message: format!(
                    "DESIGN.md documents error code {code:?}, but no `ApiError::new` site produces it"
                ),
            });
        }
    }
    if !design.contains(schema.as_str()) {
        findings.push(Finding {
            path: "DESIGN.md".into(),
            line: table_line,
            col: 1,
            rule: "api-drift",
            message: format!("DESIGN.md never mentions the schema tag {schema:?}"),
        });
    }
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = r#"pub const SCHEMA: &str = "cfs-api/1";
pub fn parse_request(line: &str) -> Result<Request, ApiError> {
    match op {
        "status" => Ok(Request::Status),
        "delta" => {
            match kind {
                "kb-flip" => Ok(Request::Flip),
                other => Err(ApiError::new("bad_delta", format!("unknown delta kind {other:?}"))),
            }
        }
        other => Err(ApiError::new("unknown_op", format!("unknown op {other:?}"))),
    }
}
"#;

    const DESIGN_OK: &str = "\
## §10\n\n| op | fields | ok-reply carries |\n|---|---|---|\n\
| `status` | — | `state` |\n| `delta` | `kind:\"kb-flip\"` | `epoch` |\n\n\
typed codes: `bad_delta`, `unknown_op`. The schema is `cfs-api/1`.\n";

    fn ws(files: Vec<(&str, &str)>, design: Option<&str>) -> Workspace {
        let mut sources: Vec<(String, String)> = files
            .into_iter()
            .map(|(p, s)| (p.to_owned(), s.to_owned()))
            .collect();
        if let Some(d) = design {
            sources.push(("DESIGN.md".to_owned(), d.to_owned()));
        }
        Workspace::from_sources(sources)
    }

    #[test]
    fn agreeing_surfaces_are_silent() {
        let w = ws(vec![("crates/svc/src/proto.rs", PROTO)], Some(DESIGN_OK));
        let s = extract_surface(&w);
        assert_eq!(s.schema.as_ref().unwrap().0, "cfs-api/1");
        assert_eq!(s.ops.iter().collect::<Vec<_>>(), ["delta", "status"]);
        assert_eq!(s.kinds.iter().collect::<Vec<_>>(), ["kb-flip"]);
        let findings = api_drift_findings(&w, &s);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn unknown_op_in_request_literal_fires() {
        let w = ws(
            vec![
                ("crates/svc/src/proto.rs", PROTO),
                (
                    "src/main.rs",
                    "fn q() -> String { format!(\"{{\\\"schema\\\":\\\"{}\\\",\\\"op\\\":\\\"vanish\\\"}}\", SCHEMA) }\n",
                ),
            ],
            Some(DESIGN_OK),
        );
        let s = extract_surface(&w);
        let findings = api_drift_findings(&w, &s);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("\"vanish\""));
    }

    #[test]
    fn stale_schema_literal_fires() {
        let w = ws(
            vec![
                ("crates/svc/src/proto.rs", PROTO),
                (
                    "crates/svc/src/client.rs",
                    "pub fn hello() -> &'static str { \"{\\\"schema\\\":\\\"cfs-api/2\\\",\\\"op\\\":\\\"status\\\"}\" }\n",
                ),
            ],
            Some(DESIGN_OK),
        );
        let findings = api_drift_findings(&w, &extract_surface(&w));
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("cfs-api/2"));
    }

    #[test]
    fn doc_table_drift_fires_both_directions() {
        let drifted = "\
## §10\n\n| op | fields | ok-reply carries |\n|---|---|---|\n\
| `status` | — | `state` |\n| `reload` | — | `state` |\n\n\
typed codes: `bad_delta`, `unknown_op`, `ghost_code`. Schema `cfs-api/1`.\n";
        let w = ws(vec![("crates/svc/src/proto.rs", PROTO)], Some(drifted));
        let findings = api_drift_findings(&w, &extract_surface(&w));
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("\"delta\"") && m.contains("missing")),
            "{msgs:#?}"
        );
        assert!(msgs.iter().any(|m| m.contains("\"reload\"")), "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains("\"kb-flip\"")), "{msgs:#?}");
        assert!(
            msgs.iter().any(|m| m.contains("\"ghost_code\"")),
            "{msgs:#?}"
        );
    }

    #[test]
    fn no_authority_means_no_findings() {
        let w = ws(vec![("crates/core/src/lib.rs", "pub fn noop() {}\n")], None);
        let findings = api_drift_findings(&w, &extract_surface(&w));
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_literals_are_exempt() {
        let proto_with_tests = format!(
            "{PROTO}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ let _ = \"{{\\\"schema\\\":\\\"cfs-api/2\\\",\\\"op\\\":\\\"zap\\\"}}\"; }}\n}}\n"
        );
        let w = ws(
            vec![("crates/svc/src/proto.rs", proto_with_tests.as_str())],
            Some(DESIGN_OK),
        );
        let findings = api_drift_findings(&w, &extract_surface(&w));
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
