//! The workspace model and per-crate symbol table the semantic rules
//! build on.
//!
//! This is deliberately *not* a Rust front end. On top of the masking
//! lexer ([`crate::lexer::scan`]) it recovers just enough structure for
//! the cross-file rules of DESIGN.md §6:
//!
//! - which crate and target every file belongs to ([`crate::rules::classify`]),
//! - every `fn` item per crate, with its source extent (brace-matched
//!   over masked code, so braces inside strings and comments never
//!   confuse the walk),
//! - the `use` imports of each file, so the `graph --json` dump can
//!   show where an identifier was expected to come from.
//!
//! Resolution is name-based and intra-crate: a call `foo(...)` or
//! `x.foo(...)` resolves to *every* `fn foo` in the same crate. That
//! over-approximates the call graph — exactly the right direction for
//! the panic-reachability rule, which must never report "unreachable"
//! for a path that exists.

use std::collections::BTreeMap;

use crate::lexer::{scan, ScannedFile};
use crate::rules::{classify, FileCtx, Target};

/// One workspace source file, loaded and scanned once.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Raw source text.
    pub raw: String,
    /// Masked lines, comments, `#[cfg(test)]` marks.
    pub scanned: ScannedFile,
    /// Crate / target classification.
    pub ctx: FileCtx,
    /// Raw lines (char-aligned with `scanned.code` — the lexer masks
    /// one char to one char).
    pub raw_lines: Vec<String>,
}

/// The loaded workspace: every lintable `.rs` file plus the design
/// document the api-drift rule reads.
pub struct Workspace {
    /// Scanned sources, sorted by path.
    pub files: Vec<SourceFile>,
    /// `DESIGN.md` contents when present (api-drift's doc surface).
    pub design_md: Option<String>,
}

impl Workspace {
    /// Builds a workspace from `(path, source)` pairs. Pairs whose path
    /// does not classify (non-`.rs`, unknown layout) are kept out of
    /// `files`; a pair named `DESIGN.md` becomes the doc surface.
    pub fn from_sources(sources: Vec<(String, String)>) -> Self {
        let mut files = Vec::new();
        let mut design_md = None;
        for (path, raw) in sources {
            if path == "DESIGN.md" {
                design_md = Some(raw);
                continue;
            }
            let Some(ctx) = classify(&path) else { continue };
            let scanned = scan(&raw);
            let raw_lines: Vec<String> = raw.split('\n').map(str::to_owned).collect();
            files.push(SourceFile {
                path,
                raw,
                scanned,
                ctx,
                raw_lines,
            });
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Self { files, design_md }
    }
}

/// One `fn` item: where it is and what it spans.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// File the definition lives in.
    pub path: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based first body line (the line holding the opening `{`).
    pub body_start: usize,
    /// 0-based last body line (the line holding the matching `}`).
    pub body_end: usize,
    /// Whether the definition sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// The symbol table of one crate: every `fn`, grouped by name, plus the
/// per-file import map.
#[derive(Default)]
pub struct CrateSymbols {
    /// `fn` items by name. A name maps to every definition with that
    /// name in the crate (methods on different types share a bucket —
    /// resolution over-approximates).
    pub fns: BTreeMap<String, Vec<FnDef>>,
    /// Per file: imported alias → full `use` path.
    pub imports: BTreeMap<String, BTreeMap<String, String>>,
}

/// Symbol tables for every crate in the workspace, keyed by the short
/// crate name from [`classify`] (`core`, `svc`, …, `cfs` for the root).
#[derive(Default)]
pub struct SymbolTable {
    /// Crate name → its symbols.
    pub crates: BTreeMap<String, CrateSymbols>,
}

/// True when byte `b` can be part of an identifier.
fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Extracts the identifier starting at byte `at` in `line`.
fn ident_at(line: &str, at: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = at;
    while end < bytes.len() && is_ident(bytes[end]) {
        end += 1;
    }
    &line[at..end]
}

/// Finds `fn` keywords in a masked line: byte offsets where a word-
/// bounded `fn` is followed by whitespace and an identifier. Skips
/// fn-pointer types (`fn(`) and the `Fn`/`FnMut` traits (capitalized,
/// so the word boundary already excludes them).
fn fn_keyword_offsets(line: &str) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find("fn") {
        let at = from + p;
        from = at + 2;
        let pre_ok = at == 0 || !is_ident(bytes[at - 1]);
        let post = at + 2;
        if !pre_ok || post >= bytes.len() || !bytes[post].is_ascii_whitespace() {
            continue;
        }
        let mut name_at = post;
        while name_at < bytes.len() && bytes[name_at].is_ascii_whitespace() {
            name_at += 1;
        }
        if name_at < bytes.len() && (bytes[name_at] == b'_' || bytes[name_at].is_ascii_alphabetic())
        {
            let name = ident_at(line, name_at).to_owned();
            if !name.is_empty() {
                out.push((at, name));
            }
        }
    }
    out
}

/// Walks one file's masked lines and records every `fn` item with its
/// brace-matched body extent. Trait-method declarations (`fn f(...);`)
/// are recorded with an empty extent (`body_start > body_end`).
pub fn collect_fns(file: &SourceFile) -> Vec<FnDef> {
    let code = &file.scanned.code;
    let mut out = Vec::new();
    // Pending signatures waiting for their opening `{`.
    let mut pending: Vec<(String, usize)> = Vec::new();
    // Open bodies: (index into `out`, depth at which the body opened).
    let mut open: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;

    for (lineno, line) in code.iter().enumerate() {
        let mut col = 0usize;
        let bytes = line.as_bytes();
        let fn_offsets = fn_keyword_offsets(line);
        let mut fn_iter = fn_offsets.iter().peekable();
        while col < bytes.len() {
            if let Some(&&(at, ref name)) = fn_iter.peek() {
                if at == col {
                    pending.push((name.clone(), lineno));
                    fn_iter.next();
                }
            }
            match bytes[col] {
                b'{' => {
                    if let Some((name, sig_line)) = pending.pop() {
                        // Only the *innermost* pending signature binds to
                        // this brace; any outer pendings stay queued.
                        out.push(FnDef {
                            name,
                            path: file.path.clone(),
                            line: sig_line,
                            body_start: lineno,
                            body_end: lineno, // patched on close
                            in_test: file.scanned.in_test[sig_line],
                        });
                        open.push((out.len() - 1, depth));
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(&(idx, d)) = open.last() {
                        if d == depth {
                            out[idx].body_end = lineno;
                            open.pop();
                        } else {
                            break;
                        }
                    }
                }
                b';' => {
                    // A signature that meets `;` before `{` is a
                    // bodyless declaration (trait method, extern).
                    if let Some((name, sig_line)) = pending.pop() {
                        out.push(FnDef {
                            name,
                            path: file.path.clone(),
                            line: sig_line,
                            body_start: usize::MAX,
                            body_end: 0,
                            in_test: file.scanned.in_test[sig_line],
                        });
                    }
                }
                _ => {}
            }
            col += 1;
        }
    }
    // Unclosed bodies (truncated file): extend to EOF.
    for (idx, _) in open {
        out[idx].body_end = code.len().saturating_sub(1);
    }
    out
}

/// Parses the `use` imports of one file from its masked lines:
/// `use a::b::c;` maps `c → a::b::c`, `use a::b as x;` maps
/// `x → a::b`, and grouped imports `use a::{b, c};` map each member.
pub fn collect_imports(file: &SourceFile) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut buf = String::new();
    let mut in_use = false;
    for line in &file.scanned.code {
        let trimmed = line.trim();
        if !in_use {
            let Some(rest) = trimmed.strip_prefix("use ") else {
                continue;
            };
            buf.clear();
            buf.push_str(rest);
            in_use = true;
        } else {
            buf.push_str(trimmed);
        }
        if in_use && buf.contains(';') {
            let stmt = buf[..buf.find(';').expect("checked contains above")].to_owned();
            record_use(&stmt, &mut out);
            in_use = false;
        }
    }
    out
}

/// Records one `use` statement body (without `use` / `;`).
fn record_use(stmt: &str, out: &mut BTreeMap<String, String>) {
    let stmt = stmt.trim().trim_start_matches("pub ").trim();
    if let Some(open) = stmt.find('{') {
        let prefix = stmt[..open].trim_end_matches(':').trim_end_matches(':');
        let inner = stmt[open + 1..].trim_end_matches('}');
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() || part.contains('{') {
                continue; // nested groups are rare; skip quietly
            }
            record_leaf(&format!("{prefix}::{part}"), out);
        }
    } else {
        record_leaf(stmt, out);
    }
}

/// Records one leaf path, honoring `as` renames and skipping globs.
fn record_leaf(path: &str, out: &mut BTreeMap<String, String>) {
    let path = path.trim();
    if path.ends_with("::*") || path.is_empty() {
        return;
    }
    if let Some((full, alias)) = path.split_once(" as ") {
        out.insert(alias.trim().to_owned(), full.trim().to_owned());
        return;
    }
    if let Some(last) = path.rsplit("::").next() {
        let last = last.trim();
        if !last.is_empty() && last != "self" {
            out.insert(last.to_owned(), path.to_owned());
        }
    }
}

/// Builds the per-crate symbol tables for the whole workspace. Only
/// `Lib` and `Bin` targets contribute — tests, examples, and benches
/// are outside the reachability contract.
pub fn build_symbols(ws: &Workspace) -> SymbolTable {
    let mut table = SymbolTable::default();
    for file in &ws.files {
        if !matches!(file.ctx.target, Target::Lib | Target::Bin) {
            continue;
        }
        let entry = table.crates.entry(file.ctx.crate_name.clone()).or_default();
        for def in collect_fns(file) {
            entry.fns.entry(def.name.clone()).or_default().push(def);
        }
        let imports = collect_imports(file);
        if !imports.is_empty() {
            entry.imports.insert(file.path.clone(), imports);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        let ws = Workspace::from_sources(vec![(path.to_owned(), src.to_owned())]);
        ws.files.into_iter().next().expect("path classifies")
    }

    #[test]
    fn fn_extents_are_brace_matched() {
        let src = "fn a() {\n    if x { y(); }\n}\nfn b() { c() }\n";
        let defs = collect_fns(&file("crates/core/src/x.rs", src));
        assert_eq!(defs.len(), 2);
        assert_eq!(
            (defs[0].name.as_str(), defs[0].line, defs[0].body_end),
            ("a", 0, 2)
        );
        assert_eq!(
            (defs[1].name.as_str(), defs[1].line, defs[1].body_end),
            ("b", 3, 3)
        );
    }

    #[test]
    fn nested_fns_and_impl_methods_are_separate_symbols() {
        let src = "impl T {\n    fn m(&self) {\n        fn inner() {}\n    }\n}\n";
        let defs = collect_fns(&file("crates/core/src/x.rs", src));
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["m", "inner"]);
        assert_eq!(defs[0].body_end, 3, "m spans past inner");
    }

    #[test]
    fn braces_in_strings_do_not_confuse_extents() {
        let src = "fn a() {\n    let s = \"}}}{{{\";\n}\nfn b() {}\n";
        let defs = collect_fns(&file("crates/core/src/x.rs", src));
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].body_end, 2);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n";
        let defs = collect_fns(&file("crates/core/src/x.rs", src));
        assert_eq!(defs.len(), 2);
        assert!(defs[0].body_start > defs[0].body_end, "decl is bodyless");
        assert_eq!(defs[1].body_end, 2);
    }

    #[test]
    fn imports_resolve_groups_and_renames() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\nuse crate::lexer::scan as scan_src;\nuse std::io;\n";
        let imports = collect_imports(&file("crates/core/src/x.rs", src));
        assert_eq!(
            imports.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(
            imports.get("scan_src").map(String::as_str),
            Some("crate::lexer::scan")
        );
        assert_eq!(imports.get("io").map(String::as_str), Some("std::io"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn a(cb: fn() -> u32) {}\n";
        let defs = collect_fns(&file("crates/core/src/x.rs", src));
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "a");
    }
}
