//! `cfs-lint fix` — the autofixer for the mechanical rules.
//!
//! Only fixes whose rewrite is provably behavior-preserving at the
//! lexical level are automated:
//!
//! * **`unused-allow`**: the directive suppresses nothing, so deleting
//!   the stale rule (or the whole directive once its list is empty)
//!   cannot change what the linter accepts.
//! * **`unwrap-in-lib` (bare `.unwrap()`)**: rewritten to
//!   `.expect("…")` with a placeholder literal message — the panic
//!   semantics are identical, the rule is satisfied, and the literal
//!   text tells a reviewer the invariant still needs a real sentence.
//!
//! Everything else (panic paths reachable from the daemon, API drift,
//! race-shaped closures) needs a human redesign and is deliberately
//! *not* fixable.
//!
//! The fixer is planned off the same findings the checker reports, so
//! it is idempotent by construction: after one application the findings
//! it keys on are gone, the second plan is empty, and a second run is a
//! byte-level no-op (CI runs `cfs-lint fix --check` to hold that line).

use std::fs;
use std::io;
use std::path::Path;

use crate::check_workspace;
use crate::rules::Finding;

/// The placeholder message the fixer writes; grep for it to find
/// invariants that still need documenting.
pub const EXPECT_PLACEHOLDER: &str = "cfs-lint fix: document this invariant";

/// What one planned fix does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixKind {
    /// Rewrite a bare `.unwrap()` into `.expect(EXPECT_PLACEHOLDER)`.
    ReplaceUnwrap,
    /// Remove one stale rule from an `allow(...)` directive (and the
    /// whole directive once no rules remain).
    RemoveAllowRule {
        /// The rule named by the stale `unused-allow` finding.
        rule: String,
    },
}

/// One mechanical edit the fixer intends to make.
#[derive(Clone, Debug)]
pub struct PlannedFix {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (for `ReplaceUnwrap`, the `.` of `.unwrap()`).
    pub col: usize,
    /// The edit.
    pub kind: FixKind,
}

impl PlannedFix {
    /// One human line for `fix --check` output.
    pub fn describe(&self) -> String {
        match &self.kind {
            FixKind::ReplaceUnwrap => format!(
                "{}:{}:{}: rewrite bare .unwrap() -> .expect({EXPECT_PLACEHOLDER:?})",
                self.path, self.line, self.col
            ),
            FixKind::RemoveAllowRule { rule } => {
                format!("{}:{}: remove stale allow({rule})", self.path, self.line)
            }
        }
    }
}

/// Plans the mechanical fixes for the workspace's current findings.
pub fn plan_fixes(root: &Path) -> io::Result<Vec<PlannedFix>> {
    Ok(plan_from_findings(&check_workspace(root)?))
}

/// The findings → fixes projection (separated for tests).
pub fn plan_from_findings(findings: &[Finding]) -> Vec<PlannedFix> {
    let mut out = Vec::new();
    for f in findings {
        match f.rule {
            "unwrap-in-lib" if f.message.starts_with("bare `.unwrap()`") => {
                out.push(PlannedFix {
                    path: f.path.clone(),
                    line: f.line,
                    col: f.col,
                    kind: FixKind::ReplaceUnwrap,
                });
            }
            "unused-allow" => {
                // Message shape: "allow(<rule>) suppresses nothing …".
                let Some(rest) = f.message.strip_prefix("allow(") else {
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    continue;
                };
                out.push(PlannedFix {
                    path: f.path.clone(),
                    line: f.line,
                    col: f.col,
                    kind: FixKind::RemoveAllowRule {
                        rule: rest[..close].to_owned(),
                    },
                });
            }
            _ => {}
        }
    }
    out
}

/// Rewrites a bare `.unwrap()` at 0-based column `col` of `line`.
/// Columns come from the masked scan, which is char-aligned with the
/// raw line, so `col` is a *char* offset — mapped to a byte offset
/// here before slicing. Returns `None` when the text there is not
/// `.unwrap()` (stale plan).
fn fix_line_unwrap(line: &str, col: usize) -> Option<String> {
    let needle = ".unwrap()";
    let byte = if col == 0 {
        0
    } else {
        line.char_indices().nth(col).map(|(b, _)| b)?
    };
    if !line[byte..].starts_with(needle) {
        return None;
    }
    Some(format!(
        "{}.expect(\"{EXPECT_PLACEHOLDER}\"){}",
        &line[..byte],
        &line[byte + needle.len()..]
    ))
}

/// Removes `rule` from the `// cfs-lint: allow(...)` directive on
/// `line`. Returns `None` when no such directive/rule is present,
/// `Some(None)` when the whole line should be deleted, and
/// `Some(Some(new))` otherwise.
fn remove_allow_rule(line: &str, rule: &str) -> Option<Option<String>> {
    let marker = line.find("// cfs-lint:")?;
    let after = &line[marker..];
    let open = after.find("allow(")?;
    let list_start = marker + open + "allow(".len();
    let close = line[list_start..].find(')')? + list_start;
    let rules: Vec<&str> = line[list_start..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.contains(&rule) {
        return None;
    }
    let kept: Vec<&str> = rules.into_iter().filter(|r| *r != rule).collect();
    if kept.is_empty() {
        // Drop the whole directive comment; delete the line when
        // nothing but the comment lived on it.
        let head = line[..marker].trim_end();
        if head.is_empty() {
            return Some(None);
        }
        return Some(Some(head.to_owned()));
    }
    Some(Some(format!(
        "{}{}{}",
        &line[..list_start],
        kept.join(", "),
        &line[close..]
    )))
}

/// Applies planned fixes to the files under `root`, bottom-up and
/// right-to-left within each file so earlier edits never shift later
/// coordinates. Returns the number of files rewritten.
pub fn apply_fixes(root: &Path, fixes: &[PlannedFix]) -> io::Result<usize> {
    let mut by_path: std::collections::BTreeMap<&str, Vec<&PlannedFix>> =
        std::collections::BTreeMap::new();
    for f in fixes {
        by_path.entry(f.path.as_str()).or_default().push(f);
    }
    let mut changed = 0usize;
    for (path, mut file_fixes) in by_path {
        let full = root.join(path);
        let original = fs::read_to_string(&full)?;
        let mut lines: Vec<String> = original.split('\n').map(str::to_owned).collect();
        file_fixes.sort_by_key(|f| std::cmp::Reverse((f.line, f.col)));
        for fix in file_fixes {
            let Some(line) = lines.get(fix.line - 1) else {
                continue;
            };
            match &fix.kind {
                FixKind::ReplaceUnwrap => {
                    if let Some(new) = fix_line_unwrap(line, fix.col - 1) {
                        lines[fix.line - 1] = new;
                    }
                }
                FixKind::RemoveAllowRule { rule } => match remove_allow_rule(line, rule) {
                    Some(None) => {
                        lines.remove(fix.line - 1);
                    }
                    Some(Some(new)) => lines[fix.line - 1] = new,
                    None => {}
                },
            }
        }
        let rewritten = lines.join("\n");
        if rewritten != original {
            fs::write(&full, rewritten)?;
            changed += 1;
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_source;

    #[test]
    fn unwrap_rewrite_is_exact_and_satisfies_the_rule() {
        let line = "    let x = map.get(&k).unwrap();";
        let col = line.find(".unwrap()").unwrap();
        let fixed = fix_line_unwrap(line, col).unwrap();
        assert_eq!(
            fixed,
            format!("    let x = map.get(&k).expect(\"{EXPECT_PLACEHOLDER}\");")
        );
        let findings = check_source("crates/core/src/x.rs", &format!("fn f() {{\n{fixed}\n}}\n"));
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn stale_coordinates_do_not_corrupt_the_line() {
        assert!(fix_line_unwrap("let x = 1;", 3).is_none());
    }

    #[test]
    fn removing_one_rule_keeps_the_rest_of_the_directive() {
        let line = "x(); // cfs-lint: allow(unwrap-in-lib, wall-clock) — both claimed";
        let fixed = remove_allow_rule(line, "wall-clock").unwrap().unwrap();
        assert_eq!(
            fixed,
            "x(); // cfs-lint: allow(unwrap-in-lib) — both claimed"
        );
    }

    #[test]
    fn removing_the_last_rule_drops_the_directive_or_line() {
        let trailing = "x(); // cfs-lint: allow(wall-clock) — stale";
        assert_eq!(
            remove_allow_rule(trailing, "wall-clock").unwrap().unwrap(),
            "x();"
        );
        let standalone = "// cfs-lint: allow(wall-clock) — stale";
        assert_eq!(remove_allow_rule(standalone, "wall-clock").unwrap(), None);
    }

    #[test]
    fn plan_covers_exactly_the_mechanical_findings() {
        let src =
            "fn f() { a.unwrap(); }\n// cfs-lint: allow(wall-clock) — nothing here\nfn g() {}\n";
        let findings = check_source("crates/core/src/x.rs", src);
        let plan = plan_from_findings(&findings);
        assert_eq!(plan.len(), 2, "{plan:#?}");
        assert!(plan
            .iter()
            .any(|p| matches!(p.kind, FixKind::ReplaceUnwrap)));
        assert!(plan
            .iter()
            .any(|p| matches!(&p.kind, FixKind::RemoveAllowRule { rule } if rule == "wall-clock")));
    }

    #[test]
    fn non_mechanical_findings_are_not_planned() {
        let src = "fn f() { let t = Instant::now(); let m: HashMap<u32, u32>; }\n";
        let findings = check_source("crates/core/src/x.rs", src);
        assert!(!findings.is_empty());
        assert!(plan_from_findings(&findings).is_empty());
    }
}
