//! The `cfs-lint` command line.
//!
//! ```text
//! cargo run -p cfs-lint -- check [--json] [--root <dir>]
//! cargo run -p cfs-lint -- fix [--check] [--root <dir>]
//! cargo run -p cfs-lint -- graph [--json] [--root <dir>]
//! cargo run -p cfs-lint -- rules
//! ```
//!
//! Exit codes are part of the contract (CI keys off them):
//! `0` clean, `1` findings (for `fix --check`: would change files),
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfs-lint <check [--json] [--root <dir>] | fix [--check] [--root <dir>] | graph [--json] [--root <dir>] | rules>"
    );
    ExitCode::from(2)
}

/// Parses the shared `[--json|--check] [--root <dir>]` tail and
/// resolves the workspace root. `Err` carries the exit code.
fn parse_common(args: &[String], flag: Option<&str>) -> Result<(bool, PathBuf), ExitCode> {
    let mut flag_set = false;
    let mut root: Option<PathBuf> = None;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            f if Some(f) == flag => flag_set = true,
            "--root" => match rest.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| {
                eprintln!("cfs-lint: cannot determine working directory: {e}");
                ExitCode::from(2)
            })?;
            match cfs_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cfs-lint: no workspace root found above {}", cwd.display());
                    return Err(ExitCode::from(2));
                }
            }
        }
    };
    Ok((flag_set, root))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for rule in cfs_lint::RULES {
                println!("{:<22} {}", rule.name, rule.summary);
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let (json, root) = match parse_common(&args[1..], Some("--json")) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let files = match cfs_lint::collect_files(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cfs-lint: walking {} failed: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let findings = match cfs_lint::check_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cfs-lint: linting {} failed: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if json {
                println!("{}", cfs_lint::render_json(&findings));
            } else {
                print!("{}", cfs_lint::render_human(&findings, files.len()));
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "fix" => {
            let (check_only, root) = match parse_common(&args[1..], Some("--check")) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let plan = match cfs_lint::plan_fixes(&root) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!(
                        "cfs-lint: planning fixes for {} failed: {e}",
                        root.display()
                    );
                    return ExitCode::from(2);
                }
            };
            if plan.is_empty() {
                println!("cfs-lint fix: nothing to fix");
                return ExitCode::SUCCESS;
            }
            for fix in &plan {
                println!("{}", fix.describe());
            }
            if check_only {
                eprintln!(
                    "cfs-lint fix --check: {} fix(es) pending; run `cfs-lint fix` to apply",
                    plan.len()
                );
                return ExitCode::FAILURE;
            }
            match cfs_lint::apply_fixes(&root, &plan) {
                Ok(changed) => {
                    println!("cfs-lint fix: rewrote {changed} file(s)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cfs-lint: applying fixes failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "graph" => {
            let (json, root) = match parse_common(&args[1..], Some("--json")) {
                Ok(v) => v,
                Err(code) => return code,
            };
            let ws = match cfs_lint::load_workspace(&root) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("cfs-lint: loading {} failed: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let dump = cfs_lint::render_graph_json(&ws);
            if json {
                println!("{dump}");
            } else {
                // The human view is the same document, one top-level
                // member per line — still deterministic, just skimmable.
                println!("{}", dump.replace(",\"", ",\n\""));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
