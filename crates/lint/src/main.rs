//! The `cfs-lint` command line.
//!
//! ```text
//! cargo run -p cfs-lint -- check [--json] [--root <dir>]
//! cargo run -p cfs-lint -- rules
//! ```
//!
//! Exit codes are part of the contract (CI keys off them):
//! `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cfs-lint <check [--json] [--root <dir>] | rules>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for rule in cfs_lint::RULES {
                println!("{:<22} {}", rule.name, rule.summary);
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match rest.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let root = match root {
                Some(r) => r,
                None => {
                    let cwd = match std::env::current_dir() {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("cfs-lint: cannot determine working directory: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    match cfs_lint::find_workspace_root(&cwd) {
                        Some(r) => r,
                        None => {
                            eprintln!("cfs-lint: no workspace root found above {}", cwd.display());
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            let files = match cfs_lint::collect_files(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cfs-lint: walking {} failed: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let findings = match cfs_lint::check_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cfs-lint: linting {} failed: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if json {
                println!("{}", cfs_lint::render_json(&findings));
            } else {
                print!("{}", cfs_lint::render_human(&findings, files.len()));
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
