//! Intra-crate call-graph approximation and the `panic-reachability`
//! rule.
//!
//! The daemon contract (DESIGN.md §10) is that `cfsd` never dies on
//! untrusted `cfs-api/1` input. The lexical `unwrap-in-lib` rule freezes
//! the panic-site *inventory*; this module adds the *reachability* half:
//! starting from the request-loop roots ([`PANIC_ROOTS`]), every
//! function a request can reach transitively must be free of panic
//! sites — `panic!`-family macros, bare `.unwrap()`, *any* `.expect(`
//! (a documented invariant is still a dead daemon when it is wrong
//! about hostile input), `assert!`-family macros, and non-range
//! indexing (`xs[i]` panics, `xs.get(i)` does not).
//!
//! Resolution is name-based within one crate (see [`crate::resolve`]):
//! a call edge exists from `f` to every same-crate `fn` sharing the
//! callee's name. That over-approximates reachability, which is the
//! sound direction for this rule. Cross-crate edges are out of scope —
//! the engine behind `apply_delta` has its own `unwrap-in-lib`
//! freeze — and `#[cfg(test)]` code neither roots nor sinks the walk.

use std::collections::{BTreeMap, BTreeSet};

use crate::resolve::{SourceFile, SymbolTable, Workspace};
use crate::rules::{Finding, Target};

/// The request-loop entry points the reachability walk starts from,
/// as `(crate, function)` pairs: the `cfsd` accept/dispatch loop in
/// `crates/svc` and the request dispatcher in the `cfs` binary.
pub const PANIC_ROOTS: &[(&str, &str)] = &[
    ("svc", "serve"),
    ("svc", "serve_connection"),
    ("svc", "parse_request"),
    ("cfs", "dispatch"),
];

/// One panic site inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 0-based line.
    pub line: usize,
    /// 0-based char column.
    pub col: usize,
    /// What panics there (`panic!`, `.unwrap()`, `index`, …).
    pub what: &'static str,
}

/// The call graph of one crate: per function name, the set of callee
/// names it mentions (union over same-name definitions).
#[derive(Default)]
pub struct CrateCallGraph {
    /// Caller name → callee names.
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Function name → panic sites in any same-name definition outside
    /// `#[cfg(test)]` code, with the defining path attached.
    pub panic_sites: BTreeMap<String, Vec<(String, PanicSite)>>,
}

/// Call graphs for every crate with symbols.
#[derive(Default)]
pub struct CallGraph {
    /// Crate name → its graph.
    pub crates: BTreeMap<String, CrateCallGraph>,
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Collects callee names mentioned on one masked line: identifiers
/// directly followed by `(` (direct calls, method calls, associated
/// calls alike) and identifiers followed by `!` + `(`/`[` are macro
/// invocations, which are *not* function calls and are skipped here.
pub fn callees_on_line(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !(bytes[i] == b'_' || bytes[i].is_ascii_alphabetic()) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        // Generic turbofish between name and `(`: `parse::<f64>()`.
        let mut j = i;
        if bytes.get(j) == Some(&b':')
            && bytes.get(j + 1) == Some(&b':')
            && bytes.get(j + 2) == Some(&b'<')
        {
            let mut depth = 0i32;
            while j < bytes.len() {
                match bytes[j] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if bytes.get(j) == Some(&b'(') {
            let name = &line[start..i];
            let keyword = matches!(
                name,
                "if" | "while" | "for" | "match" | "return" | "fn" | "loop" | "move" | "in"
            );
            if !keyword && !name.starts_with(|c: char| c.is_ascii_uppercase()) {
                out.push(name.to_owned());
            }
        }
        if bytes.get(i) == Some(&b'!') {
            // macro — skip the bang so `vec!(..)` is not a call to `vec`
            i += 1;
        }
    }
    out
}

/// Scans one masked line for panic sites. `raw` is the char-aligned raw
/// line (unused today, kept for message context growth).
pub fn panic_sites_on_line(line: &str) -> Vec<PanicSite> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for needle in [
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ] {
        let mut from = 0usize;
        while let Some(p) = line[from..].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let pre_ok = at == 0 || !is_ident(bytes[at - 1]);
            // `debug_assert!` is stripped in release; its prefix would
            // otherwise satisfy the `assert!` word boundary check.
            let debug = needle.starts_with("assert") && at >= 6 && line[..at].ends_with("debug_");
            if pre_ok && !debug {
                out.push(PanicSite {
                    line: 0,
                    col: at,
                    what: match needle {
                        "panic!" => "panic!",
                        "unreachable!" => "unreachable!",
                        "todo!" => "todo!",
                        "unimplemented!" => "unimplemented!",
                        _ => "assert!-family macro",
                    },
                });
            }
        }
    }
    for (needle, what) in [
        (".unwrap()", "bare `.unwrap()`"),
        (".expect(", "`.expect(...)`"),
    ] {
        let mut from = 0usize;
        while let Some(p) = line[from..].find(needle) {
            let at = from + p;
            from = at + needle.len();
            // `.expect(` must not also match `.expect_err(` etc. — the
            // needle ends at `(` so longer method names cannot match.
            out.push(PanicSite {
                line: 0,
                col: at,
                what,
            });
        }
    }
    // Non-range indexing: `xs[i]` panics out of bounds. An index whose
    // bracket content contains `..` is a range slice and is skipped
    // (ranges panic too, but every parser in this workspace slices with
    // cursor invariants; flagging them would drown the signal).
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'['
            && i > 0
            && (is_ident(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']')
        {
            // attribute `#[...]` and macro `vec![...]` forms never get
            // here: `#` and `!` are not identifier bytes.
            let mut depth = 1i32;
            let mut j = i + 1;
            let mut has_range = false;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    b'.' if bytes.get(j + 1) == Some(&b'.') => has_range = true,
                    _ => {}
                }
                j += 1;
            }
            if !has_range {
                out.push(PanicSite {
                    line: 0,
                    col: i,
                    what: "non-range indexing",
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out.sort_by_key(|s| s.col);
    out
}

/// Builds the per-crate call graphs over the symbol table.
pub fn build_callgraph(ws: &Workspace, symbols: &SymbolTable) -> CallGraph {
    let mut graph = CallGraph::default();
    let by_path: BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    for (crate_name, syms) in &symbols.crates {
        let entry = graph.crates.entry(crate_name.clone()).or_default();
        for defs in syms.fns.values() {
            for def in defs {
                if def.body_start > def.body_end {
                    continue; // bodyless declaration
                }
                let Some(file) = by_path.get(def.path.as_str()) else {
                    continue;
                };
                let callers = entry.calls.entry(def.name.clone()).or_default();
                for lineno in def.body_start..=def.body_end {
                    let line = &file.scanned.code[lineno];
                    for callee in callees_on_line(line) {
                        if callee != def.name && syms.fns.contains_key(&callee) {
                            callers.insert(callee);
                        }
                    }
                    if !def.in_test && !file.scanned.in_test[lineno] {
                        for mut site in panic_sites_on_line(line) {
                            site.line = lineno;
                            entry
                                .panic_sites
                                .entry(def.name.clone())
                                .or_default()
                                .push((def.path.clone(), site));
                        }
                    }
                }
            }
        }
    }
    graph
}

/// The set of function names reachable from `roots` in one crate.
pub fn reachable(graph: &CrateCallGraph, roots: &[&str]) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<String> = roots
        .iter()
        .filter(|r| graph.calls.contains_key(**r) || graph.panic_sites.contains_key(**r))
        .map(|r| (*r).to_owned())
        .collect();
    while let Some(name) = stack.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(callees) = graph.calls.get(&name) {
            for callee in callees {
                if !seen.contains(callee) {
                    stack.push(callee.clone());
                }
            }
        }
    }
    seen
}

/// Runs the `panic-reachability` rule over the workspace: for each
/// crate with declared roots, walk the call graph and report every
/// panic site in a reachable, non-test function. Bench/test/example
/// targets never carry symbols, so they cannot fire.
pub fn panic_reachability_findings(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots_by_crate: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (krate, root) in PANIC_ROOTS {
        roots_by_crate.entry(krate).or_default().push(root);
    }
    // Vendor files never participate (no symbols): target gate below is
    // belt and braces for future classify extensions.
    let _ = ws
        .files
        .iter()
        .filter(|f| matches!(f.ctx.target, Target::Lib | Target::Bin))
        .count();
    for (krate, roots) in &roots_by_crate {
        let Some(cg) = graph.crates.get(*krate) else {
            continue;
        };
        let live = reachable(cg, roots);
        for name in &live {
            let Some(sites) = cg.panic_sites.get(name) else {
                continue;
            };
            for (path, site) in sites {
                findings.push(Finding {
                    path: path.clone(),
                    line: site.line + 1,
                    col: site.col + 1,
                    rule: "panic-reachability",
                    message: format!(
                        "{} in `{name}`, reachable from the cfsd request loop (root set: {}); the daemon must answer a typed cfs-api/1 error instead of dying",
                        site.what,
                        roots.join(", "),
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::build_symbols;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn callees_ignore_macros_keywords_and_types() {
        let got = callees_on_line("if check(x) { vec![frob(y)]; Foo::new(); bar!(baz); }");
        assert_eq!(got, ["check", "frob", "new"]);
    }

    #[test]
    fn turbofish_calls_resolve() {
        assert_eq!(callees_on_line("raw.parse::<f64>().ok()"), ["parse", "ok"]);
    }

    #[test]
    fn panic_sites_cover_the_catalog() {
        let sites = panic_sites_on_line("xs[i] = a.unwrap() + b.expect(msg); panic!(\"x\")");
        let whats: Vec<&str> = sites.iter().map(|s| s.what).collect();
        assert!(whats.contains(&"non-range indexing"));
        assert!(whats.contains(&"bare `.unwrap()`"));
        assert!(whats.contains(&"`.expect(...)`"));
        assert!(whats.contains(&"panic!"));
    }

    #[test]
    fn ranges_attributes_and_unwrap_or_do_not_fire() {
        assert!(panic_sites_on_line("let a = &xs[1..n];").is_empty());
        assert!(panic_sites_on_line("#[derive(Debug)]").is_empty());
        assert!(panic_sites_on_line("x.unwrap_or(0); y.unwrap_or_default();").is_empty());
        assert!(panic_sites_on_line("debug_assert!(x > 0);").is_empty());
        assert!(panic_sites_on_line("let t: [u8; 4] = make();").is_empty());
    }

    #[test]
    fn reachability_walks_transitively_and_skips_unlinked_fns() {
        let w = ws(&[(
            "crates/svc/src/server.rs",
            "fn serve_connection() { step(); }\nfn step() { deep(); }\nfn deep() { x.unwrap(); }\nfn dead() { y.unwrap(); }\n",
        )]);
        let symbols = build_symbols(&w);
        let graph = build_callgraph(&w, &symbols);
        let findings = panic_reachability_findings(&w, &graph);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 3, "only the reachable unwrap fires");
    }

    #[test]
    fn test_code_neither_roots_nor_sinks() {
        let w = ws(&[(
            "crates/svc/src/server.rs",
            "fn serve_connection() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    fn serve_connection() { oops.unwrap(); }\n}\n",
        )]);
        let symbols = build_symbols(&w);
        let graph = build_callgraph(&w, &symbols);
        assert!(panic_reachability_findings(&w, &graph).is_empty());
    }
}
