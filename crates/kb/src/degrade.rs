//! The knowledge-plane degrade pass: applies a `cfs-chaos` fault plan to
//! a [`PublicSources`] bundle *before* assembly, modelling the ways real
//! public databases rot — stale snapshots with lagged IXP member lists,
//! facilities that vanished from the feed, and volunteer records
//! rewritten into self-contradiction.
//!
//! Degradation happens at the sources layer on purpose: the assembly
//! pipeline and the search both consume the damaged data through their
//! ordinary interfaces and never learn it was perturbed. Every decision
//! is a pure function of the plan seed and record identity, so the same
//! plan always produces the same degraded snapshot.
//!
//! Under `mid-kb-refresh`, each source record additionally carries a
//! seeded *fetch epoch* (`FaultPlan::kb_fetch_epoch`): the IXP website
//! and PeeringDB views of the same membership roll their staleness dice
//! in possibly different epochs, so the two sources can disagree about
//! a member — a torn snapshot rather than uniform rot. With no refresh
//! window every epoch is 0 and this module behaves exactly as before.

use std::collections::BTreeSet;

use cfs_chaos::{FaultPlan, KB_SOURCE_IXP_SITE, KB_SOURCE_PDB_FAC, KB_SOURCE_PDB_NET};
use cfs_types::FacilityId;

use crate::sources::PublicSources;

/// Returns a degraded copy of `src` per `plan`. An all-off plan returns
/// an identical copy.
pub fn degrade_sources(src: &PublicSources, plan: &FaultPlan) -> PublicSources {
    let mut out = src.clone();
    if plan.is_off() {
        return out;
    }

    // ---- deleted facilities: the record vanished from the snapshot, and
    // with it every reference the other sources held. ----
    let doomed: BTreeSet<FacilityId> = out
        .pdb_facilities
        .iter()
        .map(|r| r.facility)
        .filter(|f| {
            let fac = u64::from(f.raw());
            let epoch = plan.kb_fetch_epoch(KB_SOURCE_PDB_FAC, fac);
            plan.delete_kb_facility_at(fac, epoch)
        })
        .collect();
    if !doomed.is_empty() {
        out.pdb_facilities.retain(|r| !doomed.contains(&r.facility));
        for rec in out.pdb_networks.values_mut() {
            rec.facilities.retain(|f| !doomed.contains(f));
        }
        for rec in out.pdb_ixps.values_mut() {
            rec.facilities.retain(|f| !doomed.contains(f));
        }
        for site in out.ixp_sites.values_mut() {
            site.facilities.retain(|f| !doomed.contains(f));
            for m in &mut site.members {
                if m.facility.is_some_and(|f| doomed.contains(&f)) {
                    m.facility = None;
                }
            }
        }
        for page in out.noc_pages.values_mut() {
            page.facilities.retain(|f| !doomed.contains(f));
        }
    }

    // ---- lagged member lists: one staleness decision per (ixp, member)
    // *per fetch epoch*. With a coherent snapshot (no refresh window)
    // both sources share epoch 0, so the website row, the PDB
    // membership, and the netixlan ports lag together as a unit. Under
    // mid-kb-refresh the site listing and the PDB record may have been
    // fetched on opposite sides of the flip, and their decisions
    // decouple — the sources then disagree about the member. ----
    for (ixp, site) in out.ixp_sites.iter_mut() {
        let ixp_key = u64::from(ixp.raw());
        let epoch = plan.kb_fetch_epoch(KB_SOURCE_IXP_SITE, ixp_key);
        site.members
            .retain(|m| !plan.drop_kb_member_at(ixp_key, u64::from(m.asn.raw()), epoch));
    }
    for rec in out.pdb_networks.values_mut() {
        let asn_key = u64::from(rec.asn.raw());
        let epoch = plan.kb_fetch_epoch(KB_SOURCE_PDB_NET, asn_key);
        rec.ixps
            .retain(|ixp| !plan.drop_kb_member_at(u64::from(ixp.raw()), asn_key, epoch));
        rec.fabric_ips
            .retain(|(ixp, _)| !plan.drop_kb_member_at(u64::from(ixp.raw()), asn_key, epoch));
    }

    // ---- conflicting network records: rewrite alternating facility
    // entries with plausible-but-wrong picks from the (surviving)
    // facility table, the way volunteer records contradict NOC pages.
    // The same records also get alternating IXP memberships rewritten
    // to other (surviving) exchanges, so the volunteer view contradicts
    // the website member directories — the cross-source disagreement
    // the reconciler classifies as contested. ----
    let pool: Vec<FacilityId> = out.pdb_facilities.iter().map(|r| r.facility).collect();
    let ixp_pool: Vec<cfs_types::IxpId> = out.pdb_ixps.keys().copied().collect();
    for rec in out.pdb_networks.values_mut() {
        let asn_key = u64::from(rec.asn.raw());
        let epoch = plan.kb_fetch_epoch(KB_SOURCE_PDB_NET, asn_key);
        if pool.is_empty() || !plan.conflict_kb_network_at(asn_key, epoch) {
            continue;
        }
        for (slot, f) in rec.facilities.iter_mut().enumerate().skip(1).step_by(2) {
            if let Some(i) = plan.conflict_pick_at(asn_key, slot as u64, pool.len(), epoch) {
                *f = pool[i];
            }
        }
        let mut seen = BTreeSet::new();
        rec.facilities.retain(|f| seen.insert(*f));
        if !ixp_pool.is_empty() {
            // Slot keys offset past the facility slots so the two
            // rewrite streams draw independent picks.
            for (slot, x) in rec.ixps.iter_mut().enumerate().skip(1).step_by(2) {
                if let Some(i) =
                    plan.conflict_pick_at(asn_key, 0x1_0000 + slot as u64, ixp_pool.len(), epoch)
                {
                    *x = ixp_pool[i];
                }
            }
            let mut seen = BTreeSet::new();
            rec.ixps.retain(|x| seen.insert(*x));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::KbConfig;
    use cfs_chaos::FaultProfile;
    use cfs_topology::{Topology, TopologyConfig};

    fn sources() -> PublicSources {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        PublicSources::derive(&topo, &KbConfig::default())
    }

    #[test]
    fn off_plan_is_identity() {
        let src = sources();
        let out = degrade_sources(&src, &FaultPlan::new(1, FaultProfile::off()));
        assert_eq!(out.pdb_facilities.len(), src.pdb_facilities.len());
        assert_eq!(out.pdb_networks.len(), src.pdb_networks.len());
        for (a, b) in out.pdb_networks.values().zip(src.pdb_networks.values()) {
            assert_eq!(a.facilities, b.facilities);
            assert_eq!(a.fabric_ips, b.fabric_ips);
        }
    }

    #[test]
    fn degradation_is_deterministic() {
        let src = sources();
        let plan = FaultPlan::new(7, FaultProfile::stale_kb());
        let a = degrade_sources(&src, &plan);
        let b = degrade_sources(&src, &plan);
        assert_eq!(a.pdb_facilities.len(), b.pdb_facilities.len());
        for (x, y) in a.pdb_networks.values().zip(b.pdb_networks.values()) {
            assert_eq!(x.facilities, y.facilities);
            assert_eq!(x.ixps, y.ixps);
        }
        for (x, y) in a.ixp_sites.values().zip(b.ixp_sites.values()) {
            assert_eq!(x.members.len(), y.members.len());
        }
    }

    #[test]
    fn stale_kb_actually_loses_rows() {
        let src = sources();
        let plan = FaultPlan::new(3, FaultProfile::stale_kb());
        let out = degrade_sources(&src, &plan);
        let before: usize = src.ixp_sites.values().map(|s| s.members.len()).sum();
        let after: usize = out.ixp_sites.values().map(|s| s.members.len()).sum();
        assert!(after < before, "member lag dropped nothing ({before})");
    }

    #[test]
    fn deleted_facilities_leave_no_dangling_references() {
        let src = sources();
        let plan = FaultPlan::new(
            5,
            FaultProfile {
                kb_facility_loss_pm: 300,
                ..FaultProfile::off()
            },
        );
        let out = degrade_sources(&src, &plan);
        assert!(out.pdb_facilities.len() < src.pdb_facilities.len());
        let alive: BTreeSet<FacilityId> = out.pdb_facilities.iter().map(|r| r.facility).collect();
        for rec in out.pdb_networks.values() {
            assert!(rec.facilities.iter().all(|f| alive.contains(f)));
        }
        for site in out.ixp_sites.values() {
            assert!(site.facilities.iter().all(|f| alive.contains(f)));
        }
        for page in out.noc_pages.values() {
            assert!(page.facilities.iter().all(|f| alive.contains(f)));
        }
    }

    /// The (ixp, asn) memberships asserted by *both* the IXP website and
    /// PeeringDB in `src`, and whether each source still asserts them in
    /// `out`: `(site_kept, pdb_kept)` per pair. Networks hit by the
    /// conflict-rewrite are skipped — that dial *manufactures*
    /// cross-source disagreement by design; these tests are about the
    /// staleness machinery.
    fn membership_views(
        src: &PublicSources,
        out: &PublicSources,
        plan: &FaultPlan,
    ) -> Vec<(bool, bool)> {
        let mut views = Vec::new();
        for (ixp, site) in &src.ixp_sites {
            for m in &site.members {
                let Some(rec) = src.pdb_networks.get(&m.asn) else {
                    continue;
                };
                if !rec.ixps.contains(ixp) {
                    continue;
                }
                let asn_key = u64::from(m.asn.raw());
                let epoch = plan.kb_fetch_epoch(KB_SOURCE_PDB_NET, asn_key);
                if plan.conflict_kb_network_at(asn_key, epoch) {
                    continue;
                }
                let site_kept = out
                    .ixp_sites
                    .get(ixp)
                    .is_some_and(|s| s.members.iter().any(|x| x.asn == m.asn));
                let pdb_kept = out
                    .pdb_networks
                    .get(&m.asn)
                    .is_some_and(|r| r.ixps.contains(ixp));
                views.push((site_kept, pdb_kept));
            }
        }
        views
    }

    #[test]
    fn stale_kb_lags_both_sources_in_lockstep() {
        let src = sources();
        for seed in [3, 7, 11, 42] {
            let plan = FaultPlan::new(seed, FaultProfile::stale_kb());
            let out = degrade_sources(&src, &plan);
            for (site_kept, pdb_kept) in membership_views(&src, &out, &plan) {
                assert_eq!(
                    site_kept, pdb_kept,
                    "coherent snapshot: sources must agree (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn mid_kb_refresh_tears_sources_apart() {
        let src = sources();
        let torn = [3u64, 7, 11, 42].iter().any(|&seed| {
            let plan = FaultPlan::new(seed, FaultProfile::mid_kb_refresh());
            let out = degrade_sources(&src, &plan);
            membership_views(&src, &out, &plan)
                .iter()
                .any(|(site, pdb)| site != pdb)
        });
        assert!(
            torn,
            "mid-kb-refresh never decoupled the website from PeeringDB"
        );
    }

    #[test]
    fn mid_kb_refresh_degradation_is_deterministic() {
        let src = sources();
        let plan = FaultPlan::new(13, FaultProfile::mid_kb_refresh());
        let a = degrade_sources(&src, &plan);
        let b = degrade_sources(&src, &plan);
        assert_eq!(a.pdb_facilities.len(), b.pdb_facilities.len());
        for (x, y) in a.pdb_networks.values().zip(b.pdb_networks.values()) {
            assert_eq!(x.facilities, y.facilities);
            assert_eq!(x.ixps, y.ixps);
            assert_eq!(x.fabric_ips, y.fabric_ips);
        }
        for (x, y) in a.ixp_sites.values().zip(b.ixp_sites.values()) {
            assert_eq!(x.members.len(), y.members.len());
        }
    }

    #[test]
    fn conflict_rewrites_manufacture_contested_claims() {
        let src = sources();
        let clean_contested = crate::reconcile(&src).quality().contested;
        let plan = FaultPlan::new(9, FaultProfile::conflict());
        let out = degrade_sources(&src, &plan);
        let q = crate::reconcile(&out).quality();
        assert!(
            q.contested > clean_contested,
            "conflict dial manufactured no contested claims ({} vs {clean_contested})",
            q.contested
        );
    }

    #[test]
    fn conflicts_rewrite_some_records_without_duplicates() {
        let src = sources();
        let plan = FaultPlan::new(
            11,
            FaultProfile {
                kb_conflict_pm: 500,
                ..FaultProfile::off()
            },
        );
        let out = degrade_sources(&src, &plan);
        let mut rewritten = 0;
        for (asn, rec) in &out.pdb_networks {
            let mut seen = BTreeSet::new();
            assert!(
                rec.facilities.iter().all(|f| seen.insert(*f)),
                "duplicate facility in conflicted record"
            );
            if rec.facilities != src.pdb_networks[asn].facilities {
                rewritten += 1;
            }
        }
        assert!(rewritten > 0, "conflict knob rewrote nothing");
    }
}
