//! The knowledge-plane degrade pass: applies a `cfs-chaos` fault plan to
//! a [`PublicSources`] bundle *before* assembly, modelling the ways real
//! public databases rot — stale snapshots with lagged IXP member lists,
//! facilities that vanished from the feed, and volunteer records
//! rewritten into self-contradiction.
//!
//! Degradation happens at the sources layer on purpose: the assembly
//! pipeline and the search both consume the damaged data through their
//! ordinary interfaces and never learn it was perturbed. Every decision
//! is a pure function of the plan seed and record identity, so the same
//! plan always produces the same degraded snapshot.

use std::collections::BTreeSet;

use cfs_chaos::FaultPlan;
use cfs_types::FacilityId;

use crate::sources::PublicSources;

/// Returns a degraded copy of `src` per `plan`. An all-off plan returns
/// an identical copy.
pub fn degrade_sources(src: &PublicSources, plan: &FaultPlan) -> PublicSources {
    let mut out = src.clone();
    if plan.is_off() {
        return out;
    }

    // ---- deleted facilities: the record vanished from the snapshot, and
    // with it every reference the other sources held. ----
    let doomed: BTreeSet<FacilityId> = out
        .pdb_facilities
        .iter()
        .map(|r| r.facility)
        .filter(|f| plan.delete_kb_facility(u64::from(f.raw())))
        .collect();
    if !doomed.is_empty() {
        out.pdb_facilities.retain(|r| !doomed.contains(&r.facility));
        for rec in out.pdb_networks.values_mut() {
            rec.facilities.retain(|f| !doomed.contains(f));
        }
        for rec in out.pdb_ixps.values_mut() {
            rec.facilities.retain(|f| !doomed.contains(f));
        }
        for site in out.ixp_sites.values_mut() {
            site.facilities.retain(|f| !doomed.contains(f));
            for m in &mut site.members {
                if m.facility.is_some_and(|f| doomed.contains(&f)) {
                    m.facility = None;
                }
            }
        }
        for page in out.noc_pages.values_mut() {
            page.facilities.retain(|f| !doomed.contains(f));
        }
    }

    // ---- lagged member lists: one staleness decision per (ixp, member)
    // drops the website row, the PDB membership, and the netixlan ports
    // together — a snapshot lags as a unit. ----
    for (ixp, site) in out.ixp_sites.iter_mut() {
        let ixp_key = u64::from(ixp.raw());
        site.members
            .retain(|m| !plan.drop_kb_member(ixp_key, u64::from(m.asn.raw())));
    }
    for rec in out.pdb_networks.values_mut() {
        let asn_key = u64::from(rec.asn.raw());
        rec.ixps
            .retain(|ixp| !plan.drop_kb_member(u64::from(ixp.raw()), asn_key));
        rec.fabric_ips
            .retain(|(ixp, _)| !plan.drop_kb_member(u64::from(ixp.raw()), asn_key));
    }

    // ---- conflicting network records: rewrite alternating facility
    // entries with plausible-but-wrong picks from the (surviving)
    // facility table, the way volunteer records contradict NOC pages. ----
    let pool: Vec<FacilityId> = out.pdb_facilities.iter().map(|r| r.facility).collect();
    for rec in out.pdb_networks.values_mut() {
        let asn_key = u64::from(rec.asn.raw());
        if pool.is_empty() || !plan.conflict_kb_network(asn_key) {
            continue;
        }
        for (slot, f) in rec.facilities.iter_mut().enumerate().skip(1).step_by(2) {
            if let Some(i) = plan.conflict_pick(asn_key, slot as u64, pool.len()) {
                *f = pool[i];
            }
        }
        let mut seen = BTreeSet::new();
        rec.facilities.retain(|f| seen.insert(*f));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::KbConfig;
    use cfs_chaos::FaultProfile;
    use cfs_topology::{Topology, TopologyConfig};

    fn sources() -> PublicSources {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        PublicSources::derive(&topo, &KbConfig::default())
    }

    #[test]
    fn off_plan_is_identity() {
        let src = sources();
        let out = degrade_sources(&src, &FaultPlan::new(1, FaultProfile::off()));
        assert_eq!(out.pdb_facilities.len(), src.pdb_facilities.len());
        assert_eq!(out.pdb_networks.len(), src.pdb_networks.len());
        for (a, b) in out.pdb_networks.values().zip(src.pdb_networks.values()) {
            assert_eq!(a.facilities, b.facilities);
            assert_eq!(a.fabric_ips, b.fabric_ips);
        }
    }

    #[test]
    fn degradation_is_deterministic() {
        let src = sources();
        let plan = FaultPlan::new(7, FaultProfile::stale_kb());
        let a = degrade_sources(&src, &plan);
        let b = degrade_sources(&src, &plan);
        assert_eq!(a.pdb_facilities.len(), b.pdb_facilities.len());
        for (x, y) in a.pdb_networks.values().zip(b.pdb_networks.values()) {
            assert_eq!(x.facilities, y.facilities);
            assert_eq!(x.ixps, y.ixps);
        }
        for (x, y) in a.ixp_sites.values().zip(b.ixp_sites.values()) {
            assert_eq!(x.members.len(), y.members.len());
        }
    }

    #[test]
    fn stale_kb_actually_loses_rows() {
        let src = sources();
        let plan = FaultPlan::new(3, FaultProfile::stale_kb());
        let out = degrade_sources(&src, &plan);
        let before: usize = src.ixp_sites.values().map(|s| s.members.len()).sum();
        let after: usize = out.ixp_sites.values().map(|s| s.members.len()).sum();
        assert!(after < before, "member lag dropped nothing ({before})");
    }

    #[test]
    fn deleted_facilities_leave_no_dangling_references() {
        let src = sources();
        let plan = FaultPlan::new(
            5,
            FaultProfile {
                kb_facility_loss_pm: 300,
                ..FaultProfile::off()
            },
        );
        let out = degrade_sources(&src, &plan);
        assert!(out.pdb_facilities.len() < src.pdb_facilities.len());
        let alive: BTreeSet<FacilityId> = out.pdb_facilities.iter().map(|r| r.facility).collect();
        for rec in out.pdb_networks.values() {
            assert!(rec.facilities.iter().all(|f| alive.contains(f)));
        }
        for site in out.ixp_sites.values() {
            assert!(site.facilities.iter().all(|f| alive.contains(f)));
        }
        for page in out.noc_pages.values() {
            assert!(page.facilities.iter().all(|f| alive.contains(f)));
        }
    }

    #[test]
    fn conflicts_rewrite_some_records_without_duplicates() {
        let src = sources();
        let plan = FaultPlan::new(
            11,
            FaultProfile {
                kb_conflict_pm: 500,
                ..FaultProfile::off()
            },
        );
        let out = degrade_sources(&src, &plan);
        let mut rewritten = 0;
        for (asn, rec) in &out.pdb_networks {
            let mut seen = BTreeSet::new();
            assert!(
                rec.facilities.iter().all(|f| seen.insert(*f)),
                "duplicate facility in conflicted record"
            );
            if rec.facilities != src.pdb_networks[asn].facilities {
                rewritten += 1;
            }
        }
        assert!(rewritten > 0, "conflict knob rewrote nothing");
    }
}
