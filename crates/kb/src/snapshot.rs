//! JSON snapshots of the public sources.
//!
//! Real studies work from dated dumps ("we compiled a list of 1,694
//! facilities … for April 2015"); this module gives the derived public
//! view the same property. A [`PublicSources`] bundle can be saved as a
//! human-editable JSON document and loaded back — so a degraded,
//! hand-corrected, or externally produced view (a real PeeringDB dump,
//! massaged into this schema) can drive the pipeline instead of the
//! generated one.

use std::path::Path;

use cfs_types::{Error, Result};

use crate::sources::PublicSources;

impl PublicSources {
    /// Serializes the bundle to pretty-printed JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::invalid(format!("snapshot serialize: {e}")))
    }

    /// Parses a bundle from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::invalid(format!("snapshot parse: {e}")))
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::KnowledgeBase;
    use crate::sources::KbConfig;
    use cfs_topology::{Topology, TopologyConfig};

    fn sources() -> (Topology, PublicSources) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let src = PublicSources::derive(
            &topo,
            &KbConfig {
                noc_pages: 10,
                ..Default::default()
            },
        );
        (topo, src)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (_, src) = sources();
        let json = src.to_json().unwrap();
        let back = PublicSources::from_json(&json).unwrap();

        assert_eq!(src.pdb_facilities.len(), back.pdb_facilities.len());
        assert_eq!(src.pdb_networks.len(), back.pdb_networks.len());
        for (a, b) in src.pdb_networks.values().zip(back.pdb_networks.values()) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.facilities, b.facilities);
            assert_eq!(a.ixps, b.ixps);
            assert_eq!(a.fabric_ips, b.fabric_ips);
        }
        assert_eq!(src.pdb_ixps.len(), back.pdb_ixps.len());
        assert_eq!(src.ixp_sites.len(), back.ixp_sites.len());
        assert_eq!(src.noc_pages.len(), back.noc_pages.len());
        assert_eq!(src.pch_list, back.pch_list);
        assert_eq!(src.consortium_list, back.consortium_list);
    }

    #[test]
    fn reloaded_snapshot_assembles_identically() {
        let (topo, src) = sources();
        let json = src.to_json().unwrap();
        let back = PublicSources::from_json(&json).unwrap();

        let kb_a = KnowledgeBase::assemble(&src, &topo.world);
        let kb_b = KnowledgeBase::assemble(&back, &topo.world);
        for asn in topo.ases.keys() {
            assert_eq!(kb_a.facilities_of_as(*asn), kb_b.facilities_of_as(*asn));
            assert_eq!(kb_a.ixps_of_as(*asn), kb_b.ixps_of_as(*asn));
        }
        assert_eq!(kb_a.active_ixps(), kb_b.active_ixps());
        assert_eq!(kb_a.facility_count(), kb_b.facility_count());
    }

    #[test]
    fn save_and_load_via_file() {
        let (_, src) = sources();
        let dir = std::env::temp_dir().join("cfs-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sources.json");
        src.save(&path).unwrap();
        let back = PublicSources::load(&path).unwrap();
        assert_eq!(src.pdb_networks.len(), back.pdb_networks.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_rejected_cleanly() {
        assert!(PublicSources::from_json("{").is_err());
        assert!(PublicSources::from_json("{\"pdb_facilities\": 5}").is_err());
        assert!(PublicSources::load("/nonexistent/path.json").is_err());
    }

    #[test]
    fn snapshot_is_editable_json() {
        // The schema must be plain data a human can patch: check that a
        // facility row looks like named fields with a string city.
        let (_, src) = sources();
        let json = src.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let first = &value["pdb_facilities"][0];
        assert!(first["facility"].is_number());
        assert!(first["name"].is_string());
        assert!(first["city_raw"].is_string());
    }
}
