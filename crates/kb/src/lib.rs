//! # cfs-kb
//!
//! The *public* knowledge about the peering ecosystem — everything the
//! paper's authors could look up without measuring: a PeeringDB-like
//! volunteer database, operators' NOC web pages, IXP websites, and
//! PCH/consortium exchange lists (§3.1).
//!
//! Each source is **derived from the ground truth with realistic damage**:
//! volunteer records miss AS-to-facility links, some IXP records omit
//! their partner facilities (the paper's JPNAP example), city names come
//! in inconsistent spellings, and defunct exchanges linger in the lists.
//! The assembly pipeline then rebuilds a usable picture exactly the way
//! §3.1 describes: normalize city/country names, merge metros, require
//! multi-source confirmation for IXP prefixes (≥3 sources) and members
//! (≥2 sources), and filter inactive exchanges.
//!
//! The resulting [`KnowledgeBase`] is the only facility information the
//! CFS algorithm ever sees; ground truth stays behind the measurement
//! interfaces.
//!
//! Assembly is **conflict-aware**: before merging, every claim the
//! sources make is reconciled as a cross-source vote with trust priors
//! (see [`reconcile`]), and each merged record carries a [`Provenance`]
//! verdict. Contested claims stay in the merge for coverage, but the
//! search refuses to pin a facility on them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod assemble;
mod degrade;
mod reconcile;
mod snapshot;
mod sources;

pub use assemble::KnowledgeBase;
pub use degrade::degrade_sources;
pub use reconcile::{
    pairwise_diff, reconcile, ConflictClass, DiffRow, KbQuality, Provenance, Reconciliation,
    SourceId, SourceQuality, CONTESTED_BELOW_PM,
};
pub use sources::{
    IxpSiteRecord, KbConfig, NocPage, PdbFacilityRecord, PdbIxpRecord, PdbNetworkRecord,
    PublicSources, SiteMemberRecord,
};
