//! The individual public data sources, generated from ground truth with
//! realistic incompleteness.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_net::Ipv4Prefix;
use cfs_topology::Topology;
use cfs_types::{Asn, FacilityId, IxpId};

/// Knobs for deriving the public sources.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KbConfig {
    /// RNG seed for the damage model.
    pub seed: u64,
    /// Fraction of networks whose PeeringDB record is fully maintained.
    pub pdb_well_maintained: f64,
    /// Fraction of networks missing from PeeringDB entirely.
    pub pdb_absent: f64,
    /// Number of networks whose NOC page we transcribe (the paper checked
    /// 152 ASes).
    pub noc_pages: usize,
    /// Fraction of IXPs with a usable website (facility + member lists).
    pub ixp_site_coverage: f64,
    /// Number of large exchanges publishing *detailed* member data —
    /// interface-to-facility mappings and remote/local annotation, like
    /// AMS-IX / France-IX in §6.
    pub detailed_ixp_sites: usize,
    /// Probability that a PeeringDB IXP record omits its facility
    /// partnerships (the JPNAP Tokyo I case of §3.1.2).
    pub pdb_ixp_missing_facilities: f64,
    /// Probability a facility's PeeringDB city field uses a non-canonical
    /// spelling.
    pub messy_city_fraction: f64,
}

impl Default for KbConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0331,
            pdb_well_maintained: 0.7,
            pdb_absent: 0.03,
            noc_pages: 152,
            ixp_site_coverage: 0.75,
            detailed_ixp_sites: 5,
            pdb_ixp_missing_facilities: 0.10,
            messy_city_fraction: 0.20,
        }
    }
}

/// A facility row as PeeringDB publishes it: identity plus *raw* location
/// strings that still need the §3.1.1 normalization.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PdbFacilityRecord {
    /// The facility (identity is resolvable across sources by name).
    pub facility: FacilityId,
    /// Display name.
    pub name: String,
    /// Raw city string, possibly non-canonical ("Frankfurt am Main").
    pub city_raw: String,
    /// Raw country string, possibly a full name ("Germany").
    pub country_raw: String,
}

/// A network (AS) record in the volunteer database.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PdbNetworkRecord {
    /// The network.
    pub asn: Asn,
    /// Facilities the volunteer listed (a subset of the truth).
    pub facilities: Vec<FacilityId>,
    /// IXPs the network reports membership at.
    pub ixps: Vec<IxpId>,
    /// netixlan-style port records: the fabric address the network holds
    /// at each listed exchange (volunteers usually fill these in, since
    /// peers need them to configure sessions).
    pub fabric_ips: Vec<(IxpId, Ipv4Addr)>,
}

/// An exchange record in the volunteer database.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PdbIxpRecord {
    /// The exchange.
    pub ixp: IxpId,
    /// Peering-LAN prefixes as reported.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Partner facilities as reported (sometimes empty — JPNAP case).
    pub facilities: Vec<FacilityId>,
}

/// One member row on an IXP website.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SiteMemberRecord {
    /// Member network.
    pub asn: Asn,
    /// Fabric address of the member port.
    pub fabric_ip: Ipv4Addr,
    /// Facility of the member port — only on *detailed* sites.
    pub facility: Option<FacilityId>,
    /// Remote/local annotation — only on detailed sites.
    pub remote: Option<bool>,
}

/// An IXP website: facility list plus member directory.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IxpSiteRecord {
    /// The exchange.
    pub ixp: IxpId,
    /// Peering-LAN prefixes.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Partner facilities (websites keep these current — §3.1.2 found the
    /// missing JPNAP facilities there).
    pub facilities: Vec<FacilityId>,
    /// Member directory.
    pub members: Vec<SiteMemberRecord>,
    /// Whether this is one of the detailed (AMS-IX-like) sites.
    pub detailed: bool,
}

/// A network operator's NOC page: the facility list operators publish to
/// attract peers (§3.1.1, Figure 2).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct NocPage {
    /// The network.
    pub asn: Asn,
    /// Facilities as documented by the operator (essentially complete).
    pub facilities: Vec<FacilityId>,
}

/// All public sources, bundled.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PublicSources {
    /// The configuration that derived this bundle.
    pub config: KbConfig,
    /// PeeringDB facility table (near complete: the paper found PDB "was
    /// not missing the records of the facilities, only their association
    /// with the IXPs").
    pub pdb_facilities: Vec<PdbFacilityRecord>,
    /// PeeringDB network records.
    pub pdb_networks: BTreeMap<Asn, PdbNetworkRecord>,
    /// PeeringDB exchange records.
    pub pdb_ixps: BTreeMap<IxpId, PdbIxpRecord>,
    /// IXP websites, where available.
    pub ixp_sites: BTreeMap<IxpId, IxpSiteRecord>,
    /// NOC pages for the transcribed subset of networks.
    pub noc_pages: BTreeMap<Asn, NocPage>,
    /// PCH's exchange list: (ixp, prefixes, active?).
    pub pch_list: Vec<(IxpId, Vec<Ipv4Prefix>, bool)>,
    /// Consortium (Euro-IX-like) lists: ixp → prefixes.
    pub consortium_list: Vec<(IxpId, Vec<Ipv4Prefix>)>,
}

impl PublicSources {
    /// Derives the public view of a topology.
    pub fn derive(topo: &Topology, cfg: &KbConfig) -> Self {
        let mut rng = ChaCha20Rng::seed_from_u64(cfg.seed);

        // ---- PeeringDB facility table ----
        let pdb_facilities = topo
            .facilities
            .iter()
            .map(|(id, f)| {
                let city = topo.world.city(f.city);
                let (city_raw, country_raw) = if rng.random_bool(cfg.messy_city_fraction) {
                    messy_spelling(&city.name, &city.country, &mut rng)
                } else {
                    (city.name.clone(), city.country.clone())
                };
                PdbFacilityRecord {
                    facility: id,
                    name: f.name.clone(),
                    city_raw,
                    country_raw,
                }
            })
            .collect();

        // ---- PeeringDB network records (volunteer quality model) ----
        let mut pdb_networks = BTreeMap::new();
        for node in topo.ases.values() {
            // Volunteer quality is bimodal: most records are kept
            // current, the rest rot badly — real neglect is bursty
            // (Figure 2: 61 of 152 ASes carried *all* 1,424 missing
            // links), not a uniform per-link lottery.
            let quality: f64 = if rng.random_bool(cfg.pdb_absent) {
                continue; // no record at all
            } else if rng.random_bool(cfg.pdb_well_maintained) {
                1.0
            } else if rng.random_bool(0.45) {
                0.8 + rng.random::<f64>() * 0.18
            } else {
                0.05 + rng.random::<f64>() * 0.4
            };
            let mut facilities: Vec<FacilityId> = node
                .facilities
                .iter()
                .copied()
                .filter(|_| rng.random_bool(quality))
                .collect();
            // Whoever bothered to create the record listed at least the
            // headquarters site (the paper found only 4 of 152 records
            // with zero facilities).
            if facilities.is_empty() {
                if let Some(first) = node.facilities.first() {
                    if rng.random_bool(0.9) {
                        facilities.push(*first);
                    }
                }
            }
            let ixps: Vec<IxpId> = node
                .ixps
                .iter()
                .copied()
                .filter(|_| rng.random_bool(quality.max(0.6)))
                .collect();
            // netixlan rows for the listed memberships (mostly present).
            let mut fabric_ips: Vec<(IxpId, Ipv4Addr)> = Vec::new();
            for ixp in &ixps {
                for m in topo.ixps[*ixp].members_of(node.asn) {
                    if rng.random_bool((quality * 0.9).max(0.5)) {
                        fabric_ips.push((*ixp, m.fabric_ip));
                    }
                }
            }
            pdb_networks.insert(
                node.asn,
                PdbNetworkRecord {
                    asn: node.asn,
                    facilities,
                    ixps,
                    fabric_ips,
                },
            );
        }

        // ---- PeeringDB exchange records ----
        let mut pdb_ixps = BTreeMap::new();
        for (id, ixp) in topo.ixps.iter() {
            let facilities = if rng.random_bool(cfg.pdb_ixp_missing_facilities) {
                Vec::new() // the JPNAP case
            } else {
                ixp.facilities.clone()
            };
            pdb_ixps.insert(
                id,
                PdbIxpRecord {
                    ixp: id,
                    prefixes: vec![ixp.peering_lan],
                    facilities,
                },
            );
        }

        // ---- IXP websites ----
        let mut by_size: Vec<IxpId> = topo.ixps.iter().map(|(id, _)| id).collect();
        by_size.sort_by_key(|id| std::cmp::Reverse(topo.ixps[*id].members.len()));
        let detailed: std::collections::BTreeSet<IxpId> = by_size
            .iter()
            .copied()
            .take(cfg.detailed_ixp_sites)
            .collect();

        let mut ixp_sites = BTreeMap::new();
        for (id, ixp) in topo.ixps.iter() {
            if !ixp.active {
                continue; // dead exchanges have dead websites
            }
            let is_detailed = detailed.contains(&id);
            if !is_detailed && !rng.random_bool(cfg.ixp_site_coverage) {
                continue;
            }
            let members = ixp
                .members
                .iter()
                .map(|m| SiteMemberRecord {
                    asn: m.asn,
                    fabric_ip: m.fabric_ip,
                    facility: if is_detailed {
                        // The member's port facility: the access switch's
                        // location (for remote members, the reseller port).
                        Some(topo.switches[m.access_switch].facility)
                    } else {
                        None
                    },
                    remote: is_detailed.then_some(m.remote_via.is_some()),
                })
                .collect();
            ixp_sites.insert(
                id,
                IxpSiteRecord {
                    ixp: id,
                    prefixes: vec![ixp.peering_lan],
                    facilities: ixp.facilities.clone(),
                    members,
                    detailed: is_detailed,
                },
            );
        }

        // ---- NOC pages: biased toward networks with poor PDB records,
        // matching how the paper chose which sites to transcribe ----
        let mut noc_candidates: Vec<(f64, Asn)> = topo
            .ases
            .values()
            // The paper's 152 were "ASes with PeeringDB records" whose
            // scope looked off; transcription requires a record to
            // compare against.
            .filter(|n| n.facilities.len() >= 2 && pdb_networks.contains_key(&n.asn))
            .map(|n| {
                let pdb_count = pdb_networks
                    .get(&n.asn)
                    .map(|r| r.facilities.len())
                    .unwrap_or(0);
                let coverage = pdb_count as f64 / n.facilities.len() as f64;
                // Deficient records go first, but plenty of ordinary ones
                // get checked too (global networks were audited regardless
                // of apparent quality).
                (coverage + rng.random::<f64>() * 0.8, n.asn)
            })
            .collect();
        // total_cmp: the score mixes a ratio with seeded noise and can
        // never be NaN, but partial_cmp().unwrap() would turn a future
        // arithmetic slip into a panic deep inside KB assembly.
        noc_candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut noc_pages = BTreeMap::new();
        for (_, asn) in noc_candidates.into_iter().take(cfg.noc_pages) {
            let truth = &topo.ases[&asn].facilities;
            // NOC pages are essentially complete (the operator knows its
            // own sites); allow one lag.
            let facilities: Vec<FacilityId> = truth
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.98))
                .collect();
            noc_pages.insert(asn, NocPage { asn, facilities });
        }

        // ---- PCH and consortium exchange lists ----
        let mut pch_list = Vec::new();
        let mut consortium_list = Vec::new();
        for (id, ixp) in topo.ixps.iter() {
            // PCH tracks nearly everything and annotates liveness.
            if rng.random_bool(0.95) {
                pch_list.push((id, vec![ixp.peering_lan], ixp.active));
            }
            // Consortium databases cover most of the world's exchanges.
            if rng.random_bool(0.8) {
                consortium_list.push((id, vec![ixp.peering_lan]));
            }
        }

        Self {
            config: cfg.clone(),
            pdb_facilities,
            pdb_networks,
            pdb_ixps,
            ixp_sites,
            noc_pages,
            pch_list,
            consortium_list,
        }
    }
}

/// Produces a plausible non-canonical spelling for a city/country pair.
fn messy_spelling(city: &str, country: &str, rng: &mut ChaCha20Rng) -> (String, String) {
    let variants: &[(&str, &str)] = &[
        ("frankfurt", "Frankfurt am Main"),
        ("new york", "New York City"),
        ("dusseldorf", "Duesseldorf"),
        ("cologne", "Koeln"),
        ("munich", "Muenchen"),
        ("vienna", "Wien"),
        ("prague", "Praha"),
        ("milan", "Milano"),
        ("moscow", "Moskva"),
        ("kiev", "Kyiv"),
        ("st petersburg", "Saint Petersburg"),
        ("washington", "Washington, D.C."),
        ("the hague", "Den Haag"),
        ("brussels", "Bruxelles"),
        ("warsaw", "Warszawa"),
        ("lisbon", "Lisboa"),
        ("geneva", "Geneve"),
    ];
    let city_raw = variants
        .iter()
        .find(|(canon, _)| *canon == city)
        .map(|(_, messy)| (*messy).to_string())
        .unwrap_or_else(|| {
            // Generic damage: title case (normalization folds it back).
            let mut s = String::with_capacity(city.len());
            let mut upper = true;
            for ch in city.chars() {
                if upper && ch.is_ascii_alphabetic() {
                    s.push(ch.to_ascii_uppercase());
                    upper = false;
                } else {
                    s.push(ch);
                    if ch == ' ' {
                        upper = true;
                    }
                }
            }
            s
        });
    let country_raw = match country_full_name(country) {
        Some(full) if rng.random_bool(0.5) => full.to_string(),
        _ => country.to_string(),
    };
    (city_raw, country_raw)
}

fn country_full_name(iso: &str) -> Option<&'static str> {
    Some(match iso {
        "US" => "United States",
        "GB" => "United Kingdom",
        "DE" => "Germany",
        "NL" => "The Netherlands",
        "FR" => "France",
        "RU" => "Russian Federation",
        "JP" => "Japan",
        "BR" => "Brazil",
        "AU" => "Australia",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;

    fn sources() -> (Topology, PublicSources) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let cfg = KbConfig {
            noc_pages: 20,
            ..KbConfig::default()
        };
        let src = PublicSources::derive(&topo, &cfg);
        (topo, src)
    }

    #[test]
    fn facility_table_is_complete() {
        let (topo, src) = sources();
        assert_eq!(src.pdb_facilities.len(), topo.facilities.len());
    }

    #[test]
    fn some_networks_are_missing_and_some_incomplete() {
        // Larger world: with ~200 ASes the 3% absence rate is virtually
        // guaranteed to hit someone.
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let src = PublicSources::derive(&topo, &KbConfig::default());
        assert!(
            src.pdb_networks.len() < topo.ases.len(),
            "nobody missing from PDB"
        );
        let incomplete = src
            .pdb_networks
            .values()
            .filter(|r| r.facilities.len() < topo.ases[&r.asn].facilities.len())
            .count();
        assert!(incomplete > 0, "no volunteer damage at all");
    }

    #[test]
    fn noc_pages_are_nearly_complete() {
        let (topo, src) = sources();
        assert!(!src.noc_pages.is_empty());
        let (mut listed, mut truth_total) = (0usize, 0usize);
        for page in src.noc_pages.values() {
            let truth = &topo.ases[&page.asn].facilities;
            listed += page.facilities.len();
            truth_total += truth.len();
            for f in &page.facilities {
                assert!(truth.contains(f), "NOC page invents a facility");
            }
        }
        assert!(
            listed * 100 >= truth_total * 93,
            "{listed}/{truth_total} listed"
        );
    }

    #[test]
    fn noc_pages_prefer_poorly_maintained_networks() {
        let (topo, src) = sources();
        // Average PDB coverage of NOC-page ASes should be below the
        // overall average — we transcribed the deficient ones.
        let coverage = |asn: &Asn| {
            let truth = topo.ases[asn].facilities.len().max(1);
            let pdb = src
                .pdb_networks
                .get(asn)
                .map(|r| r.facilities.len())
                .unwrap_or(0);
            pdb as f64 / truth as f64
        };
        let noc_avg: f64 =
            src.noc_pages.keys().map(coverage).sum::<f64>() / src.noc_pages.len() as f64;
        let all_avg: f64 = topo.ases.keys().map(coverage).sum::<f64>() / topo.ases.len() as f64;
        assert!(noc_avg <= all_avg + 0.05, "noc {noc_avg} vs all {all_avg}");
    }

    #[test]
    fn detailed_sites_expose_port_facilities() {
        let (_, src) = sources();
        let detailed: Vec<_> = src.ixp_sites.values().filter(|s| s.detailed).collect();
        assert_eq!(
            detailed.len(),
            src.config.detailed_ixp_sites.min(detailed.len())
        );
        assert!(!detailed.is_empty());
        for site in detailed {
            for m in &site.members {
                assert!(m.facility.is_some());
                assert!(m.remote.is_some());
            }
        }
    }

    #[test]
    fn ordinary_sites_hide_port_details() {
        let (_, src) = sources();
        for site in src.ixp_sites.values().filter(|s| !s.detailed) {
            for m in &site.members {
                assert!(m.facility.is_none());
                assert!(m.remote.is_none());
            }
        }
    }

    #[test]
    fn inactive_ixps_have_no_site_and_pch_knows() {
        let (topo, src) = sources();
        for (id, ixp) in topo.ixps.iter() {
            if !ixp.active {
                assert!(!src.ixp_sites.contains_key(&id));
                if let Some((_, _, active)) = src.pch_list.iter().find(|(x, _, _)| *x == id) {
                    assert!(!active);
                }
            }
        }
    }

    #[test]
    fn messy_city_names_normalize_back() {
        let (topo, src) = sources();
        let world = &topo.world;
        let mut messy_seen = 0;
        for rec in &src.pdb_facilities {
            let truth_city = topo.facilities[rec.facility].city;
            if rec.city_raw != world.city(truth_city).name {
                messy_seen += 1;
            }
            let resolved = world.find_city(&rec.city_raw, &rec.country_raw);
            assert_eq!(
                resolved,
                Some(truth_city),
                "normalization failed for {:?}/{:?}",
                rec.city_raw,
                rec.country_raw
            );
        }
        assert!(messy_seen > 0, "no messy spellings generated");
    }

    #[test]
    fn derivation_is_deterministic() {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let a = PublicSources::derive(&topo, &KbConfig::default());
        let b = PublicSources::derive(&topo, &KbConfig::default());
        assert_eq!(a.pdb_networks.len(), b.pdb_networks.len());
        for (x, y) in a.pdb_networks.values().zip(b.pdb_networks.values()) {
            assert_eq!(x.facilities, y.facilities);
        }
    }
}
